//! Seeded-corruption fixtures: one per check family.
//!
//! Each fixture builds a *valid* artifact, applies a single targeted
//! corruption, and runs the matching verification pass. A healthy
//! verifier reports at least the fixture's registry code; the `verify`
//! binary's `--fixture NAME` mode exits non-zero exactly when that
//! happens, which is how CI proves the checks can actually fail.

use crate::diag::Report;
use crate::exec::{check_histogram_mapping, check_tile_partition_buckets};
use crate::lint::lint_source;
use crate::model::{check_model, chunk_bits};
use crate::sparse::check_pattern_layer;
use crate::trace::{check_prometheus, check_trace};
use rtoss_core::dfs::group_layers;
use rtoss_core::pattern::{canonical_set, Pattern};
use rtoss_core::prune1x1::prune_1x1_weights;
use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_nn::layers::Conv2d;
use rtoss_nn::Graph;
use rtoss_serve::LatencyHistogram;
use rtoss_sparse::{PatternCompressedConv, PatternGroup};
use rtoss_tensor::{init, Tensor};
use std::collections::BTreeSet;

/// Fixture names accepted by [`run`], in registry order.
pub const NAMES: &[&str] = &[
    "mask",
    "group",
    "roundtrip",
    "format",
    "tiles",
    "histogram",
    "lint",
    "trace-nesting",
    "trace-order",
    "trace-orphan",
    "prom",
    "plan-schedule",
    "plan-arena",
    "plan-fused",
    "plan-level-dep",
    "plan-level-alias",
    "fleet-ring",
    "fleet-tier",
    "fleet-quota",
    "plan-hb",
    "pool-order",
    "lint-lock-order",
    "lint-relaxed-store",
    "lint-lock-across-submit",
    "series-window",
    "series-conserve",
    "slo-hysteresis",
    "flight-dump",
    "kernel-pack",
    "kernel-choice",
    "kernel-equiv",
];

/// Runs the named fixture, returning its report (`None` for an unknown
/// name).
pub fn run(name: &str) -> Option<Report> {
    match name {
        "mask" => Some(mask_fixture()),
        "group" => Some(group_fixture()),
        "roundtrip" => Some(roundtrip_fixture()),
        "format" => Some(format_fixture()),
        "tiles" => Some(tiles_fixture()),
        "histogram" => Some(histogram_fixture()),
        "lint" => Some(lint_fixture()),
        "trace-nesting" => Some(trace_nesting_fixture()),
        "trace-order" => Some(trace_order_fixture()),
        "trace-orphan" => Some(trace_orphan_fixture()),
        "prom" => Some(prom_fixture()),
        "plan-schedule" => Some(plan_schedule_fixture()),
        "plan-arena" => Some(plan_arena_fixture()),
        "plan-fused" => Some(plan_fused_fixture()),
        "plan-level-dep" => Some(plan_level_dep_fixture()),
        "plan-level-alias" => Some(plan_level_alias_fixture()),
        "fleet-ring" => Some(fleet_ring_fixture()),
        "fleet-tier" => Some(fleet_tier_fixture()),
        "fleet-quota" => Some(fleet_quota_fixture()),
        "plan-hb" => Some(plan_hb_fixture()),
        "pool-order" => Some(pool_order_fixture()),
        "lint-lock-order" => Some(lint_lock_order_fixture()),
        "lint-relaxed-store" => Some(lint_relaxed_store_fixture()),
        "lint-lock-across-submit" => Some(lint_lock_across_submit_fixture()),
        "series-window" => Some(series_window_fixture()),
        "series-conserve" => Some(series_conserve_fixture()),
        "slo-hysteresis" => Some(slo_hysteresis_fixture()),
        "flight-dump" => Some(flight_dump_fixture()),
        "kernel-pack" => Some(kernel_pack_fixture()),
        "kernel-choice" => Some(kernel_choice_fixture()),
        "kernel-equiv" => Some(kernel_equiv_fixture()),
        _ => None,
    }
}

/// The registry code each fixture is guaranteed to trigger.
pub fn expected_code(name: &str) -> Option<&'static str> {
    match name {
        "mask" => Some("RV002"),
        "group" => Some("RV004"),
        "roundtrip" => Some("RV005"),
        "format" => Some("RV010"),
        "tiles" => Some("RV020"),
        "histogram" => Some("RV021"),
        "lint" => Some("RV030"),
        "trace-nesting" => Some("RV040"),
        "trace-order" => Some("RV041"),
        "trace-orphan" => Some("RV042"),
        "prom" => Some("RV043"),
        "plan-schedule" => Some("RV050"),
        "plan-arena" => Some("RV051"),
        "plan-fused" => Some("RV052"),
        "plan-level-dep" => Some("RV054"),
        "plan-level-alias" => Some("RV054"),
        "fleet-ring" => Some("RV060"),
        "fleet-tier" => Some("RV061"),
        "fleet-quota" => Some("RV062"),
        "plan-hb" => Some("RV070"),
        "pool-order" => Some("RV070"),
        "lint-lock-order" => Some("RV071"),
        "lint-relaxed-store" => Some("RV072"),
        "lint-lock-across-submit" => Some("RV073"),
        "series-window" => Some("RV080"),
        "series-conserve" => Some("RV081"),
        "slo-hysteresis" => Some("RV082"),
        "flight-dump" => Some("RV083"),
        "kernel-pack" => Some("RV090"),
        "kernel-choice" => Some("RV091"),
        "kernel-equiv" => Some("RV092"),
        _ => None,
    }
}

/// Mask legality: one kernel keeps two opposite corners (disconnected,
/// RV002), another keeps six weights (illegal entry count, RV001).
pub fn mask_fixture() -> Report {
    let w = Tensor::full(&[2, 1, 3, 3], 0.5);
    let mut g = Graph::new();
    let x = g.add_input("x");
    let c = g
        .add_layer("bad_conv", Box::new(Conv2d::from_weight(w, 1, 1)), x)
        .expect("valid node");
    g.set_outputs(vec![c]).expect("valid output");
    let mut mask = vec![0.0f32; 18];
    mask[0] = 1.0; // (0,0)
    mask[8] = 1.0; // (2,2): 4-disconnected from (0,0)
    for slot in mask[9..15].iter_mut() {
        *slot = 1.0; // kernel 1 keeps 6 > 5 weights
    }
    let conv = g.conv_mut(c).expect("conv node");
    conv.weight_mut()
        .set_mask(Tensor::from_vec(mask, &[2, 1, 3, 3]).expect("mask shape"))
        .expect("mask matches weight");
    conv.weight_mut().apply_mask();
    check_model(&g, &[1, 1, 8, 8])
}

/// DFS-group consistency: a child kernel is re-masked with a connected
/// pattern its parent never selected (RV004).
pub fn group_fixture() -> Report {
    let mut m = rtoss_models::yolov5s_twin(8, 2, 0x5EED).expect("twin builds");
    RTossPruner::new(EntryPattern::Three)
        .prune_graph(&mut m.graph)
        .expect("twin prunes");
    let groups = group_layers(&m.graph);
    let mut target = None;
    'outer: for group in groups.groups() {
        let Some(pc) = m.graph.conv(group.parent) else {
            continue;
        };
        if pc.kernel_size() != 3 {
            continue;
        }
        let Some(pmask) = pc.weight().mask() else {
            continue;
        };
        let parent_bits: BTreeSet<u16> = pmask.as_slice().chunks_exact(9).map(chunk_bits).collect();
        if parent_bits.is_empty() {
            continue;
        }
        for &child in &group.children {
            let masked = m
                .graph
                .conv(child)
                .is_some_and(|cc| cc.weight().mask().is_some());
            if masked {
                target = Some((parent_bits, child));
                break 'outer;
            }
        }
    }
    let (parent_bits, child) = target.expect("twin has a masked 3x3 group with a child");
    let rogue = (0u16..512)
        .find(|&b| {
            b.count_ones() == 3
                && Pattern::from_bits(b)
                    .map(|p| p.is_connected())
                    .unwrap_or(false)
                && !parent_bits.contains(&b)
        })
        .expect("a connected 3-entry pattern outside the parent's set exists");
    let param = m
        .graph
        .conv_mut(child)
        .expect("child is a conv")
        .weight_mut();
    let mut mask = param.mask().expect("child is masked").clone();
    for (i, slot) in mask.as_mut_slice()[..9].iter_mut().enumerate() {
        *slot = if rogue & (1 << i) != 0 { 1.0 } else { 0.0 };
    }
    for (i, wv) in param.value.as_mut_slice()[..9].iter_mut().enumerate() {
        *wv = if rogue & (1 << i) != 0 { 0.25 } else { 0.0 };
    }
    param.set_mask(mask).expect("same shape");
    check_model(&m.graph, &[1, 3, 64, 64])
}

/// 1×1 round-trip: the tail weight Algorithm 3 must prune is
/// resurrected (RV005).
pub fn roundtrip_fixture() -> Report {
    // 5×2 = 10 weights: one full 9-chunk plus a 1-weight tail.
    let mut w = init::uniform(&mut init::rng(5), &[5, 2, 1, 1], -1.0, 1.0);
    let set = canonical_set(2).expect("canonical 2-entry set");
    let out = prune_1x1_weights(&mut w, &set).expect("1x1 prune");
    let mut g = Graph::new();
    let x = g.add_input("x");
    let c = g
        .add_layer("bad_1x1", Box::new(Conv2d::from_weight(w, 1, 0)), x)
        .expect("valid node");
    g.set_outputs(vec![c]).expect("valid output");
    let param = g.conv_mut(c).expect("conv node").weight_mut();
    let mut mask = out.mask;
    mask.as_mut_slice()[9] = 1.0;
    param.value.as_mut_slice()[9] = 0.75;
    param.set_mask(mask).expect("same shape");
    check_model(&g, &[1, 2, 8, 8])
}

/// Sparse format: unsorted offsets, duplicate kernel, stored zero, and
/// a value-count mismatch in one hand-assembled layer (RV010–RV012).
pub fn format_fixture() -> Report {
    let layer = PatternCompressedConv::from_parts(
        6,
        2,
        3,
        1,
        1,
        vec![
            PatternGroup {
                offsets: vec![(1, 1), (0, 0), (3, 0)], // unsorted + out of bounds
                kernels: vec![
                    (0, 0, vec![1.0, 2.0, 3.0]),
                    (0, 0, vec![4.0, 0.0, 6.0]), // duplicate kernel + stored zero
                ],
            },
            PatternGroup {
                offsets: vec![(2, 2)],
                kernels: vec![(5, 0, vec![7.0, 8.0])], // two values for one offset
            },
        ],
    );
    let mut report = Report::new();
    report.extend(check_pattern_layer("fixture layer", &layer));
    report
}

/// Tile partition: one tile dealt to two buckets, another to none
/// (RV020).
pub fn tiles_fixture() -> Report {
    let buckets = vec![vec![0, 1, 2], vec![2, 4, 5], vec![7]];
    let mut report = Report::new();
    report.extend(check_tile_partition_buckets(
        "fixture partition (6 tiles)",
        6,
        &buckets,
    ));
    report
}

/// Histogram geometry: the pre-fix bucket mapping that dropped
/// exact-boundary samples one bucket too high (RV021).
pub fn histogram_fixture() -> Report {
    let broken = |ns: f64| {
        if ns <= 250.0 {
            return 0;
        }
        let steps = ((ns / 250.0).log2() / 0.5).floor() as usize;
        (steps + 1).min(LatencyHistogram::NUM_BUCKETS - 1)
    };
    let mut report = Report::new();
    report.extend(check_histogram_mapping(
        "fixture histogram",
        LatencyHistogram::NUM_BUCKETS,
        LatencyHistogram::bucket_upper_ns,
        broken,
    ));
    report
}

/// Source lint: a hot-path snippet that unwraps a queue pop (RV030).
pub fn lint_fixture() -> Report {
    let src = "pub fn drain(q: &Queue) -> Request {\n    q.pop().unwrap()\n}\n";
    let mut report = Report::new();
    report.extend(lint_source("fixtures/hot_path.rs", src));
    report
}

/// Builds a span event for the trace fixtures.
fn fixture_span(name: &'static str, tid: u64, ts_ns: u64, dur_ns: u64) -> rtoss_obs::TraceEvent {
    rtoss_obs::TraceEvent {
        name: name.into(),
        kind: rtoss_obs::EventKind::Span,
        tid,
        ts_ns,
        dur_ns,
        args: Vec::new(),
    }
}

/// Trace nesting: two sync spans on one thread partially overlap —
/// neither nests in nor stays disjoint from the other (RV040).
pub fn trace_nesting_fixture() -> Report {
    let trace = rtoss_obs::Trace {
        events: vec![
            fixture_span("batch_assembly", 1, 0, 100),
            fixture_span("execute", 1, 50, 100),
        ],
        dropped: 0,
    };
    check_trace("fixture trace (partial overlap)", &trace)
}

/// Trace order: a thread's buffer holds a span ending *before* its
/// predecessor's end, impossible for recorded-at-close spans (RV041).
pub fn trace_order_fixture() -> Report {
    let trace = rtoss_obs::Trace {
        events: vec![
            fixture_span("execute", 1, 0, 200),
            fixture_span("layer:stem", 1, 10, 40),
        ],
        dropped: 0,
    };
    check_trace("fixture trace (out-of-order ends)", &trace)
}

/// Trace completeness: an `execute` span with no `layer:*` child — the
/// per-layer instrumentation went missing (RV042).
pub fn trace_orphan_fixture() -> Report {
    let trace = rtoss_obs::Trace {
        events: vec![fixture_span("execute", 1, 0, 100)],
        dropped: 0,
    };
    check_trace("fixture trace (hollow execute)", &trace)
}

/// Prometheus exposition: a histogram whose cumulative bucket counts
/// decrease and whose `+Inf` bucket disagrees with `_count` (RV043).
pub fn prom_fixture() -> Report {
    let text = "\
# HELP rtoss_execute_seconds Latency of the execute serving phase
# TYPE rtoss_execute_seconds histogram
rtoss_execute_seconds_bucket{le=\"0.1\"} 5
rtoss_execute_seconds_bucket{le=\"0.2\"} 3
rtoss_execute_seconds_bucket{le=\"+Inf\"} 7
rtoss_execute_seconds_sum 1.25
rtoss_execute_seconds_count 9
";
    check_prometheus("fixture exposition", text)
}

/// A small but structurally interesting engine for the plan fixtures:
/// a fused conv→BN→SiLU stem feeding a diamond (two branches joined by
/// an add), so the compiled plan has fusion, slot reuse, and liveness.
fn plan_fixture_engine() -> rtoss_sparse::SparseModel {
    use rtoss_nn::layers::{Activation, ActivationKind, BatchNorm2d};
    let mut g = Graph::new();
    let x = g.add_input("x");
    let stem = g
        .add_layer("stem", Box::new(Conv2d::new(3, 4, 3, 1, 1, 0xA0)), x)
        .expect("valid node");
    let bn = g
        .add_layer("stem_bn", Box::new(BatchNorm2d::new(4)), stem)
        .expect("valid node");
    let act = g
        .add_layer(
            "stem_act",
            Box::new(Activation::new(ActivationKind::Silu)),
            bn,
        )
        .expect("valid node");
    let left = g
        .add_layer("left", Box::new(Conv2d::new(4, 4, 3, 1, 1, 0xA1)), act)
        .expect("valid node");
    let right = g
        .add_layer("right", Box::new(Conv2d::new(4, 4, 3, 1, 1, 0xA2)), act)
        .expect("valid node");
    let join = g.add_add("join", left, right).expect("valid node");
    g.set_outputs(vec![join]).expect("valid output");
    rtoss_sparse::SparseModel::compile(&g).expect("engine compiles")
}

/// Plan schedule: an early step is rewired to read a step that has not
/// executed yet — a forward operand reference (RV050).
pub fn plan_schedule_fixture() -> Report {
    let engine = plan_fixture_engine();
    let mut summary = engine
        .plan_summary(&[1, 3, 8, 8])
        .expect("plan compiles for the fixture engine");
    let last = summary.steps.len() - 1;
    summary.steps[0].inputs = vec![Some(last)];
    let mut report = Report::new();
    report.extend(crate::plan::check_plan_schedule(
        "fixture plan (forward operand)",
        &summary,
    ));
    report
}

/// Plan arena: the left branch is rewired to write into the stem's
/// slot while the stem is still live (the right branch reads it a step
/// later) — overlapping lifetimes a run would corrupt (RV051).
pub fn plan_arena_fixture() -> Report {
    let engine = plan_fixture_engine();
    let mut summary = engine
        .plan_summary(&[1, 3, 8, 8])
        .expect("plan compiles for the fixture engine");
    summary.steps[1].out_slot = summary.steps[0].out_slot;
    let mut report = Report::new();
    report.extend(crate::plan::check_plan_arena(
        "fixture plan (overlapping slot lifetimes)",
        &summary,
    ));
    report
}

/// Fused bit-identity: one output element of the planned forward pass
/// is flipped by a single bit — RV052 must notice, because "close" is
/// not the contract (RV052).
pub fn plan_fused_fixture() -> Report {
    let engine = plan_fixture_engine();
    let probe = init::uniform(&mut init::rng(0xA3), &[1, 3, 8, 8], 0.0, 1.0);
    let interpreted = engine
        .forward_interpreted_with(&probe, &rtoss_sparse::ExecConfig::serial())
        .expect("interpreter runs");
    let mut planned = interpreted.clone();
    let mut data = planned[0].as_slice().to_vec();
    data[0] = f32::from_bits(data[0].to_bits() ^ 1);
    planned[0] = Tensor::from_vec(data, interpreted[0].shape()).expect("same shape");
    let mut report = Report::new();
    report.extend(crate::plan::check_outputs_bit_identical(
        "fixture plan (single-ulp drift)",
        &planned,
        &interpreted,
    ));
    report
}

/// Level dependencies: a branch conv is pulled down into its
/// producer's dependency level, so the parallel executor would start
/// it while the stem is still being written (RV054).
pub fn plan_level_dep_fixture() -> Report {
    let engine = plan_fixture_engine();
    let mut summary = engine
        .plan_summary(&[1, 3, 8, 8])
        .expect("plan compiles for the fixture engine");
    let (i, j) = summary
        .steps
        .iter()
        .enumerate()
        .find_map(|(i, st)| st.inputs.iter().flatten().next().map(|j| (i, *j)))
        .expect("fixture engine has step-to-step deps");
    summary.steps[i].level = summary.steps[j].level;
    let mut report = Report::new();
    report.extend(crate::plan::check_plan_levels(
        "fixture plan (dep-violating level)",
        &summary,
    ));
    report
}

/// Concurrently-live slot alias: in `x → a → b` / `x → c` (both `b`
/// and `c` retained), `c` is rewired to write `a`'s slot. The serial
/// index rule is satisfied — `a`'s last use (step 1) precedes `c`
/// (step 2) — but `c` sits in level 0 while `b` consumes `a` in level
/// 1, so a parallel run could overwrite `a` mid-read. Exactly the
/// aliasing only the level rule can see (RV054).
pub fn plan_level_alias_fixture() -> Report {
    let mut g = Graph::new();
    let x = g.add_input("x");
    let a = g
        .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 0xB0)), x)
        .expect("valid node");
    let b = g
        .add_layer("b", Box::new(Conv2d::new(4, 4, 3, 1, 1, 0xB1)), a)
        .expect("valid node");
    let c = g
        .add_layer("c", Box::new(Conv2d::new(3, 4, 3, 1, 1, 0xB2)), x)
        .expect("valid node");
    g.set_outputs(vec![b, c]).expect("valid outputs");
    let engine = rtoss_sparse::SparseModel::compile(&g).expect("engine compiles");
    let mut summary = engine
        .plan_summary(&[1, 3, 8, 8])
        .expect("plan compiles for the fixture engine");
    summary.steps[2].out_slot = summary.steps[0].out_slot;
    // The serial arena rule does not object to this rewrite: a's last
    // use (index 1) is strictly before c (index 2).
    let serial_overlaps = crate::plan::check_plan_arena("fixture plan", &summary)
        .iter()
        .filter(|d| d.message.contains("lifetimes overlap"))
        .count();
    debug_assert_eq!(serial_overlaps, 0, "RV051 index rule should accept this");
    let mut report = Report::new();
    report.extend(crate::plan::check_plan_levels(
        "fixture plan (concurrently-live slot alias)",
        &summary,
    ));
    report
}

/// Dropped dependency edge: in `x → a → b`, step `b`'s operand edge to
/// `a` is erased and `b` relevelled to 0. The corrupted summary is
/// *self-consistent* — every RV05x rule still holds, because RV054's
/// window rule can only constrain edges that are still present — but
/// the model says the edge must exist, so the happens-before edge
/// reconstruction notices the read that lost its ordering (RV070).
pub fn plan_hb_fixture() -> Report {
    let mut g = Graph::new();
    let x = g.add_input("x");
    let a = g
        .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 0xC0)), x)
        .expect("valid node");
    let b = g
        .add_layer("b", Box::new(Conv2d::new(4, 4, 3, 1, 1, 0xC1)), a)
        .expect("valid node");
    g.set_outputs(vec![b]).expect("valid output");
    let engine = rtoss_sparse::SparseModel::compile(&g).expect("engine compiles");
    let deps = crate::concurrency::ModelDeps::of(&engine);
    let mut summary = engine
        .plan_summary(&[1, 3, 8, 8])
        .expect("plan compiles for the fixture engine");
    summary.steps[1].inputs = vec![None];
    summary.steps[1].level = 0;
    // The RV05x family is blind to a dropped edge: the summary is
    // still topological, the slots are still disjoint, and the level
    // rule has no edge left to check.
    debug_assert!(
        crate::plan::check_plan_schedule("fixture plan", &summary).is_empty()
            && crate::plan::check_plan_levels("fixture plan", &summary).is_empty(),
        "RV05x should accept the self-consistent corruption"
    );
    let mut report = Report::new();
    report.extend(crate::concurrency::check_plan_hb(
        "fixture plan (dropped dependency edge)",
        &deps,
        &summary,
        &[2],
    ));
    report
}

/// Cross-lane slot collision: two steps of one dependency level — the
/// exact pair `run_with_pool` fans into concurrent caller/worker lanes
/// at width 2 — are rewired to write the same arena slot. The pairwise
/// happens-before pass reports the unordered write/write conflict and
/// the shadow replay reports the first unordered write (RV070).
pub fn pool_order_fixture() -> Report {
    let mut g = Graph::new();
    let x = g.add_input("x");
    let s = g
        .add_layer("stem", Box::new(Conv2d::new(3, 4, 3, 1, 1, 0xC2)), x)
        .expect("valid node");
    let a = g
        .add_layer("a", Box::new(Conv2d::new(4, 4, 3, 1, 1, 0xC3)), s)
        .expect("valid node");
    let b = g
        .add_layer("b", Box::new(Conv2d::new(4, 4, 3, 1, 1, 0xC4)), a)
        .expect("valid node");
    let c = g
        .add_layer("c", Box::new(Conv2d::new(4, 4, 3, 1, 1, 0xC5)), s)
        .expect("valid node");
    g.set_outputs(vec![b, c]).expect("valid outputs");
    let engine = rtoss_sparse::SparseModel::compile(&g).expect("engine compiles");
    let deps = crate::concurrency::ModelDeps::of(&engine);
    let mut summary = engine
        .plan_summary(&[1, 3, 8, 8])
        .expect("plan compiles for the fixture engine");
    let groups = summary.level_groups();
    let level = groups
        .iter()
        .find(|g| g.len() >= 2)
        .expect("fixture engine has a parallel level");
    let (p, q) = (level[0], level[1]);
    summary.steps[q].out_slot = summary.steps[p].out_slot;
    let loc = "fixture plan (cross-lane slot collision)";
    let mut report = Report::new();
    report.extend(crate::concurrency::check_plan_hb(
        loc,
        &deps,
        &summary,
        &[2],
    ));
    report.extend(crate::concurrency::shadow_replay(loc, &summary, 2));
    report
}

/// Lock-order consistency: two functions acquire the same two mutexes
/// in opposite orders — the classic ABBA deadlock shape (RV071).
pub fn lint_lock_order_fixture() -> Report {
    let src = "\
fn ab(s: &S) {
    let a = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let b = s.b.lock().unwrap_or_else(|e| e.into_inner());
    use_both(a, b);
}
fn ba(s: &S) {
    let b = s.b.lock().unwrap_or_else(|e| e.into_inner());
    let a = s.a.lock().unwrap_or_else(|e| e.into_inner());
    use_both(a, b);
}
";
    let mut report = Report::new();
    report.extend(lint_source("fixtures/lock_order.rs", src));
    report
}

/// Relaxed publication: a readiness flag is stored with
/// `Ordering::Relaxed`, so a reader observing `true` has no ordering
/// guarantee on the data published before the store (RV072).
pub fn lint_relaxed_store_fixture() -> Report {
    let src = "\
fn publish(s: &S) {
    s.results = compute();
    s.ready.store(true, Ordering::Relaxed);
}
";
    let mut report = Report::new();
    report.extend(lint_source("fixtures/relaxed_store.rs", src));
    report
}

/// Lock held across pool hand-off: a mutex guard stays live across
/// `pool.submit(…)` and `batch.wait()`, so pool tasks needing the same
/// lock would deadlock against the waiting caller (RV073).
pub fn lint_lock_across_submit_fixture() -> Report {
    let src = "\
fn flush(s: &S, pool: &WorkerPool) {
    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());
    let batch = pool.submit(make_tasks(&q));
    batch.wait();
}
";
    let mut report = Report::new();
    report.extend(lint_source("fixtures/lock_across_submit.rs", src));
    report
}

/// Routing ring: one replica is built with zero virtual nodes, so no
/// key can ever reach it (RV060).
pub fn fleet_ring_fixture() -> Report {
    let ring = rtoss_fleet::HashRing::with_vnode_counts(&[32, 0, 32, 32]);
    crate::fleet::check_hash_ring(&ring, 2000)
}

/// Degradation controller: the hysteresis band is inverted — the
/// upgrade threshold sits *above* the downgrade threshold, so the
/// controller would oscillate on every tick (RV061).
pub fn fleet_tier_fixture() -> Report {
    let cfg = rtoss_fleet::TierControllerConfig {
        upgrade_below: 0.9,
        downgrade_above: 0.2,
        ..rtoss_fleet::TierControllerConfig::default()
    };
    crate::fleet::check_tier_controller(cfg, 3)
}

/// Tenant quota ledger: a snapshot where two offered requests vanished
/// without being admitted, throttled, or shed (RV062).
pub fn fleet_quota_fixture() -> Report {
    use rtoss_fleet::{FleetSnapshot, TenantSnapshot};
    let snapshot = FleetSnapshot {
        tenants: vec![TenantSnapshot {
            id: "cam-fleet".into(),
            class: "gold".into(),
            offered: 10,
            admitted: 5, // 5 + 2 + 1 == 8 != 10: two requests leaked
            throttled: 2,
            shed: 1,
        }],
        replicas: Vec::new(),
        routed_affinity: 5,
        routed_spill: 0,
        tier_upgrades: 0,
        tier_downgrades: 0,
        hot_swaps: 0,
    };
    crate::fleet::check_fleet_ledger(&snapshot)
}

/// A hand-built, fully consistent telemetry snapshot: one tenant that
/// fired and resolved an admission alert, one healthy replica. The
/// telemetry fixtures each corrupt one invariant of this base.
pub(crate) fn telemetry_fixture_base() -> rtoss_fleet::TelemetrySnapshot {
    use rtoss_fleet::{
        AdmissionTotals, AdmissionWindow, AlertRecord, BurnPoint, GaugeWindow, PolicySnapshot,
        ReplicaTelemetrySnapshot, TelemetrySnapshot, TenantTelemetrySnapshot,
    };
    const MS: u64 = 1_000_000;
    let policy = PolicySnapshot {
        objective: 0.95,
        short_range_ns: 50 * MS,
        long_range_ns: 200 * MS,
        fire_burn: 2.0,
        resolve_burn: 0.5,
        min_total: 5,
    };
    TelemetrySnapshot {
        window_ns: 10 * MS,
        windows: 64,
        admission_policy: policy,
        deadline_policy: PolicySnapshot {
            objective: 0.9,
            ..policy
        },
        tenants: vec![TenantTelemetrySnapshot {
            id: "bulk-co".into(),
            class: "bulk".into(),
            windows: vec![
                AdmissionWindow {
                    start_ns: 0,
                    offered: 10,
                    admitted: 6,
                    throttled: 2,
                    shed: 2,
                },
                AdmissionWindow {
                    start_ns: 10 * MS,
                    offered: 8,
                    admitted: 8,
                    throttled: 0,
                    shed: 0,
                },
            ],
            totals: AdmissionTotals {
                offered: 18,
                admitted: 14,
                throttled: 2,
                shed: 2,
            },
            evicted: AdmissionTotals {
                offered: 0,
                admitted: 0,
                throttled: 0,
                shed: 0,
            },
            late: 0,
            burns: vec![
                BurnPoint {
                    ts_ns: 5 * MS,
                    short: 3.0,
                    long: 2.5,
                },
                BurnPoint {
                    ts_ns: 15 * MS,
                    short: 0.2,
                    long: 1.0,
                },
            ],
            firing: false,
        }],
        replicas: vec![ReplicaTelemetrySnapshot {
            replica: 0,
            queue_frac: vec![GaugeWindow {
                start_ns: 0,
                count: 2,
                last: 0.5,
                min: 0.1,
                max: 0.6,
            }],
            tier: vec![GaugeWindow {
                start_ns: 0,
                count: 2,
                last: 1.0,
                min: 0.0,
                max: 1.0,
            }],
            burns: vec![BurnPoint {
                ts_ns: 5 * MS,
                short: 0.0,
                long: 0.0,
            }],
            firing: false,
        }],
        alerts: vec![
            AlertRecord {
                rule: "admission".into(),
                subject: "bulk-co".into(),
                state: "firing".into(),
                ts_ns: 5 * MS,
                burn_short: 3.0,
                burn_long: 2.5,
            },
            AlertRecord {
                rule: "admission".into(),
                subject: "bulk-co".into(),
                state: "resolved".into(),
                ts_ns: 15 * MS,
                burn_short: 0.2,
                burn_long: 1.0,
            },
        ],
        dump_count: 1,
        dumps_suppressed: 0,
    }
}

/// A valid flight dump rendered by a real recorder: tick span, breach
/// alert, burn sample, with the trigger inside the covered window.
pub(crate) fn flight_fixture_dump() -> String {
    use rtoss_obs::{AlertEvent, AlertKind, FlightRecorder};
    let r = FlightRecorder::new(16);
    r.span("telemetry_tick", 1_000, 500);
    r.alert(&AlertEvent {
        rule: "admission".into(),
        subject: "bulk-co".into(),
        kind: AlertKind::Firing,
        ts_ns: 2_000,
        burn_short: 3.0,
        burn_long: 2.5,
    });
    r.sample("tenant/bulk-co/burn_short", 3_000, 3.0);
    r.dump("slo-breach", 2_000)
}

/// Window geometry: one admission window's start is knocked off the
/// storage-window alignment grid (RV080).
pub fn series_window_fixture() -> Report {
    let mut snap = telemetry_fixture_base();
    snap.tenants[0].windows[1].start_ns += 3;
    crate::telemetry::check_telemetry_windows(&snap)
}

/// Per-window conservation: one admitted request is double-counted, so
/// `offered != admitted + throttled + shed` in that window (RV081).
pub fn series_conserve_fixture() -> Report {
    let mut snap = telemetry_fixture_base();
    snap.tenants[0].windows[0].admitted += 1;
    crate::telemetry::check_telemetry_conservation(&snap, None)
}

/// Alert hysteresis: the resolve transition claims a short burn still
/// above the resolve threshold — a transition the monitor's hysteresis
/// band can never emit (RV082).
pub fn slo_hysteresis_fixture() -> Report {
    let mut snap = telemetry_fixture_base();
    snap.alerts[1].burn_short = 1.5;
    snap.tenants[0].burns[1].short = 1.5;
    crate::telemetry::check_alert_log(&snap)
}

/// Flight dump: the trigger timestamp is rewritten to sit outside the
/// `[first_ts_ns, last_ts_ns]` window the dump claims to cover (RV083).
pub fn flight_dump_fixture() -> Report {
    let dump = flight_fixture_dump().replace("\"trigger_ts_ns\":2000", "\"trigger_ts_ns\":99000");
    crate::telemetry::check_flight_dump("fixture dump (trigger outside window)", &dump)
}

/// A pruned 3x3 layer for the kernel-family fixtures: real pattern
/// groups, a non-trivial pack, every format derivable.
fn kernel_fixture_layer() -> PatternCompressedConv {
    let mut w = init::uniform(&mut init::rng(0x90), &[6, 4, 3, 3], -1.0, 1.0);
    let set = canonical_set(3).expect("canonical 3-entry set");
    rtoss_core::prune3x3::prune_3x3_weights(&mut w, &set).expect("prunes");
    PatternCompressedConv::from_dense(&w, 1, 1).expect("compresses")
}

/// Pack reconstruction: one packed value gets a single-ulp flip, so the
/// kernel-major pack no longer rebuilds the layer's dense weights
/// (RV090).
pub fn kernel_pack_fixture() -> Report {
    let mut layer = kernel_fixture_layer();
    let vals = layer.pack_mut().values_mut();
    vals[0] = f32::from_bits(vals[0].to_bits() ^ 1);
    let mut report = Report::new();
    report.extend(crate::kernels::check_pattern_pack(
        "fixture layer (flipped pack value)",
        &layer,
    ));
    report
}

/// Autotune choice legality: a conv step's recorded measurements say
/// `dense` is fastest, but the step claims to run `coo` — the tuner is
/// ignoring its own evidence (RV091).
pub fn kernel_choice_fixture() -> Report {
    let engine = plan_fixture_engine();
    let mut summary = engine
        .plan_summary(&[1, 3, 8, 8])
        .expect("plan compiles for the fixture engine");
    let conv = summary
        .steps
        .iter_mut()
        .find(|st| st.kind == "conv")
        .expect("fixture engine has conv steps");
    conv.format = "coo";
    conv.autotune_ns = vec![("pattern", 300), ("coo", 200), ("dense", 100)];
    let mut report = Report::new();
    report.extend(crate::kernels::check_format_choices(
        "fixture plan (evidence-ignoring choice)",
        &summary,
    ));
    report
}

/// Cross-format equivalence: the pattern pack's first value is changed,
/// so the pattern-tiled executor no longer agrees with the scalar
/// reference, COO, or dense paths built from the intact group
/// structures (RV092).
pub fn kernel_equiv_fixture() -> Report {
    let mut layer = kernel_fixture_layer();
    layer.pack_mut().values_mut()[0] += 0.5;
    let mut report = Report::new();
    report.extend(crate::kernels::check_layer_format_equivalence(
        "fixture layer (corrupted pack vs intact groups)",
        &layer,
        &[1, 4, 10, 10],
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_triggers_its_registry_code() {
        for &name in NAMES {
            let report = run(name).expect("known fixture");
            let code = expected_code(name).expect("known fixture");
            assert!(
                report.has_code(code),
                "fixture {name} did not trigger {code}:\n{}",
                report.render()
            );
            assert!(report.has_errors(), "fixture {name} produced no errors");
        }
    }

    #[test]
    fn unknown_fixture_is_none() {
        assert!(run("nope").is_none());
        assert!(expected_code("nope").is_none());
    }
}
