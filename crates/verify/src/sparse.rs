//! Sparse-format checks over compiled artifacts (RV010–RV014).
//!
//! The cheap O(nnz) structural rules live next to the formats
//! themselves ([`PatternCompressedConv::validate`],
//! [`UnstructuredSparseConv::validate`]) so the executors can assert
//! them in debug builds; this module lifts those findings into
//! [`Diagnostic`]s and adds the expensive cross-checks a pre-flight
//! pass can afford: reconstructing the dense tensor and proving the
//! stored-weight bookkeeping against it (RV012/RV014).

use crate::diag::{Diagnostic, Report};
use rtoss_sparse::{PatternCompressedConv, SparseModel, UnstructuredSparseConv};

/// Wraps a format-level violation into a diagnostic.
fn lift(location: &str, v: &rtoss_sparse::FormatViolation) -> Diagnostic {
    Diagnostic::error(v.code, location, v.message.clone())
}

/// Checks one pattern-compressed layer: structural rules, then — if
/// those pass — dense reconstruction against the nnz bookkeeping.
pub fn check_pattern_layer(location: &str, layer: &PatternCompressedConv) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = layer.validate().iter().map(|v| lift(location, v)).collect();
    if !out.is_empty() {
        // Reconstruction on a structurally broken layer could index out
        // of bounds; the structural findings already block execution.
        return out;
    }
    let dense = layer.to_dense();
    let nnz = dense.as_slice().iter().filter(|&&v| v != 0.0).count();
    if nnz != layer.stored_weights() {
        out.push(Diagnostic::error(
            "RV014",
            location,
            format!(
                "dense reconstruction has {nnz} non-zeros but the layer claims to \
                 store {} weights",
                layer.stored_weights()
            ),
        ));
    }
    let expected = layer.out_channels() * layer.in_channels() * layer.kernel_size().pow(2);
    if dense.numel() != expected {
        out.push(Diagnostic::error(
            "RV014",
            location,
            format!(
                "dense reconstruction has {} elements, geometry implies {expected}",
                dense.numel()
            ),
        ));
    }
    out
}

/// Checks one unstructured (COO) layer the same way.
pub fn check_unstructured_layer(location: &str, layer: &UnstructuredSparseConv) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = layer.validate().iter().map(|v| lift(location, v)).collect();
    if !out.is_empty() {
        return out;
    }
    let dense = layer.to_dense();
    let nnz = dense.as_slice().iter().filter(|&&v| v != 0.0).count();
    if nnz != layer.entries().len() {
        out.push(Diagnostic::error(
            "RV014",
            location,
            format!(
                "dense reconstruction has {nnz} non-zeros but the COO layer stores \
                 {} entries",
                layer.entries().len()
            ),
        ));
    }
    out
}

/// Runs the sparse checks over every conv layer of a compiled engine,
/// including the engine-level stored-weight roll-up.
pub fn check_sparse_model(model: &SparseModel) -> Report {
    let mut report = Report::new();
    // Engine-level pass (cheap structural rules + nnz roll-up).
    report.extend(model.verify().iter().map(|v| lift("sparse engine", v)));
    // Deep per-layer reconstruction.
    for (node, layer) in model.conv_layers() {
        let loc = format!("sparse conv node {node}");
        for d in check_pattern_layer(&loc, layer) {
            if d.code == "RV014" {
                // Structural findings were already lifted by verify();
                // only the reconstruction findings are new here.
                report.push(d);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::pattern::canonical_set;
    use rtoss_core::prune3x3::prune_3x3_weights;
    use rtoss_tensor::{init, Tensor};

    fn pruned_weight() -> Tensor {
        let mut w = init::uniform(&mut init::rng(3), &[4, 4, 3, 3], -1.0, 1.0);
        let set = canonical_set(3).unwrap();
        prune_3x3_weights(&mut w, &set).unwrap();
        w
    }

    #[test]
    fn clean_layers_produce_no_findings() {
        let w = pruned_weight();
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        assert!(check_pattern_layer("l0", &pc).is_empty());
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        assert!(check_unstructured_layer("l0", &un).is_empty());
    }

    #[test]
    fn compiled_twin_engine_is_clean() {
        let mut m = rtoss_models::yolov5s_twin(4, 2, 11).unwrap();
        rtoss_core::Pruner::prune_graph(
            &rtoss_core::RTossPruner::new(rtoss_core::EntryPattern::Two),
            &mut m.graph,
        )
        .unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap();
        let report = check_sparse_model(&engine);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn corrupted_offsets_surface_as_rv010() {
        let pc = PatternCompressedConv::from_parts(
            2,
            2,
            3,
            1,
            1,
            vec![rtoss_sparse::PatternGroup {
                offsets: vec![(1, 1), (0, 0)], // unsorted
                kernels: vec![(0, 0, vec![1.0, 2.0])],
            }],
        );
        let ds = check_pattern_layer("bad", &pc);
        assert!(ds.iter().any(|d| d.code == "RV010"), "{ds:?}");
    }
}
