//! Model/IR checks: pattern-mask legality, DFS-group consistency,
//! 1×1 round-trip residue, and whole-graph shape inference.
//!
//! These passes prove that a pruned [`Graph`] actually satisfies the
//! invariants the paper's three algorithms promise:
//!
//! - **Algorithm 2** (3×3 pattern pruning): every kernel's surviving
//!   mask is a legal pattern — 2 to 5 entries ([`RV001`]), 4-adjacent
//!   connected ([`RV002`]) — and entry counts are uniform per layer.
//! - **Algorithm 1** (DFS grouping): the layer groups partition the
//!   conv layers exactly ([`RV003`]) and every child's pattern set is a
//!   subset of its parent's ([`RV004`]).
//! - **Algorithm 3** (1×1 transform): the flattened 1×1 weight's tail
//!   (`numel % 9` trailing weights) is pruned to zero ([`RV005`]), and
//!   the full 9-chunks obey the 3×3 pattern rules.
//! - Shape inference over the whole graph succeeds ([`RV006`]), so
//!   every executor sees consistent activation shapes.
//! - Masks and weights agree: the mask has the weight's shape and no
//!   weight survives where its mask is zero ([`RV007`]).
//!
//! [`RV001`]: crate#registry
//! [`RV002`]: crate#registry
//! [`RV003`]: crate#registry
//! [`RV004`]: crate#registry
//! [`RV005`]: crate#registry
//! [`RV006`]: crate#registry
//! [`RV007`]: crate#registry

use crate::diag::{Diagnostic, Report};
use rtoss_core::dfs::group_layers;
use rtoss_core::pattern::Pattern;
use rtoss_nn::layers::Conv2d;
use rtoss_nn::{Graph, NodeId};
use std::collections::BTreeSet;

/// Legal pattern entry counts: EntryPattern::{Two..Five}.
const MIN_ENTRIES: u32 = 2;
const MAX_ENTRIES: u32 = 5;

/// Converts one 9-element mask chunk to a `Pattern` bitmask
/// (bit `3*row + col`, matching `rtoss_core::pattern`).
pub(crate) fn chunk_bits(chunk: &[f32]) -> u16 {
    let mut bits = 0u16;
    for (i, &m) in chunk.iter().enumerate() {
        if m != 0.0 {
            bits |= 1 << i;
        }
    }
    bits
}

/// The distinct pattern bitmasks a masked conv layer uses, reading the
/// mask in 9-weight chunks (kernels for 3×3 layers, Algorithm 3 chunks
/// for 1×1 layers). Returns `None` for unmasked or other-kernel layers.
fn layer_pattern_bits(conv: &Conv2d) -> Option<BTreeSet<u16>> {
    let mask = conv.weight().mask()?;
    if !matches!(conv.kernel_size(), 1 | 3) {
        return None;
    }
    let mut set = BTreeSet::new();
    for chunk in mask.as_slice().chunks_exact(9) {
        set.insert(chunk_bits(chunk));
    }
    Some(set)
}

/// Checks mask/weight agreement for one conv node (RV007) and the
/// per-chunk pattern legality rules (RV001/RV002/RV005).
fn check_conv_masks(name: &str, conv: &Conv2d, report: &mut Report) {
    let param = conv.weight();
    let Some(mask) = param.mask() else {
        return; // dense layer (protected, stem, or non-prunable kernel)
    };
    let loc = format!("conv {name}");
    if mask.shape() != param.value.shape() {
        report.push(Diagnostic::error(
            "RV007",
            loc,
            format!(
                "mask shape {:?} does not match weight shape {:?}",
                mask.shape(),
                param.value.shape()
            ),
        ));
        return; // chunk-level checks would misalign
    }
    let w = param.value.as_slice();
    let m = mask.as_slice();
    for (i, (&wv, &mv)) in w.iter().zip(m.iter()).enumerate() {
        if mv == 0.0 && wv != 0.0 {
            report.push(Diagnostic::error(
                "RV007",
                loc.clone(),
                format!("weight {i} is {wv} but its mask entry is 0 (mask/weight desync)"),
            ));
        }
    }

    match conv.kernel_size() {
        3 => check_pattern_chunks(&loc, m, "kernel", report),
        1 => {
            // Algorithm 3: full 9-chunks behave like 3×3 kernels; the
            // tail (numel % 9 trailing weights) must be pruned away.
            let full = (m.len() / 9) * 9;
            check_pattern_chunks(&loc, &m[..full], "chunk", report);
            for (j, (&mv, &wv)) in m[full..].iter().zip(w[full..].iter()).enumerate() {
                if mv != 0.0 || wv != 0.0 {
                    report.push(Diagnostic::error(
                        "RV005",
                        loc.clone(),
                        format!(
                            "1x1 tail weight {} (mask {mv}, value {wv}) survives; \
                             Algorithm 3 prunes the {} trailing weights past the last \
                             full 9-chunk",
                            full + j,
                            m.len() - full
                        ),
                    ));
                }
            }
        }
        _ => {}
    }
}

/// RV001/RV002 over a run of 9-weight mask chunks.
fn check_pattern_chunks(loc: &str, mask: &[f32], unit: &str, report: &mut Report) {
    let mut counts: BTreeSet<u32> = BTreeSet::new();
    for (idx, chunk) in mask.chunks_exact(9).enumerate() {
        let bits = chunk_bits(chunk);
        let entries = bits.count_ones();
        if !(MIN_ENTRIES..=MAX_ENTRIES).contains(&entries) {
            report.push(Diagnostic::error(
                "RV001",
                loc.to_string(),
                format!(
                    "{unit} {idx} keeps {entries} weights; patterns must keep \
                     {MIN_ENTRIES}..={MAX_ENTRIES}"
                ),
            ));
            continue; // connectivity is meaningless for illegal counts
        }
        counts.insert(entries);
        match Pattern::from_bits(bits) {
            Ok(p) if !p.is_connected() => report.push(Diagnostic::error(
                "RV002",
                loc.to_string(),
                format!("{unit} {idx} pattern {bits:#011b} is not 4-adjacent connected"),
            )),
            Ok(_) => {}
            Err(e) => report.push(Diagnostic::error(
                "RV002",
                loc.to_string(),
                format!("{unit} {idx} bitmask {bits:#x} is not a valid pattern: {e}"),
            )),
        }
    }
    if counts.len() > 1 {
        report.push(Diagnostic::error(
            "RV001",
            loc.to_string(),
            format!(
                "mixed entry counts {counts:?} in one layer; a pattern set has a \
                 single entry count"
            ),
        ));
    }
}

/// Checks Algorithm 1's output: groups partition the convs (RV003) and
/// children use a subset of the parent's patterns (RV004).
fn check_groups(graph: &Graph, report: &mut Report) {
    let groups = group_layers(graph);
    let convs: BTreeSet<NodeId> = graph.conv_ids().into_iter().collect();
    let mut covered: BTreeSet<NodeId> = BTreeSet::new();
    for (gi, group) in groups.groups().iter().enumerate() {
        for id in group.members() {
            if !convs.contains(&id) {
                report.push(Diagnostic::error(
                    "RV003",
                    format!("group {gi}"),
                    format!("member node {id} is not a convolution"),
                ));
            }
            if !covered.insert(id) {
                report.push(Diagnostic::error(
                    "RV003",
                    format!("group {gi}"),
                    format!("node {id} appears in more than one group"),
                ));
            }
        }
    }
    for &id in convs.difference(&covered) {
        report.push(Diagnostic::error(
            "RV003",
            format!("node {id} ({})", graph.node(id).name),
            "prunable conv belongs to no layer group".to_string(),
        ));
    }

    for (gi, group) in groups.groups().iter().enumerate() {
        let Some(parent_conv) = graph.conv(group.parent) else {
            continue; // already reported as RV003
        };
        let Some(parent_bits) = layer_pattern_bits(parent_conv) else {
            continue; // dense parent: children select from the full set
        };
        if parent_bits.is_empty() {
            // A 1×1 parent smaller than one 9-chunk has no pattern
            // choices to share; children fall back to the full set.
            continue;
        }
        for &child in &group.children {
            let Some(child_bits) = graph.conv(child).and_then(layer_pattern_bits) else {
                continue;
            };
            for bits in child_bits.difference(&parent_bits) {
                report.push(Diagnostic::error(
                    "RV004",
                    format!(
                        "group {gi}, child node {child} ({})",
                        graph.node(child).name
                    ),
                    format!(
                        "child uses pattern {bits:#011b} that its parent node {} never \
                         selected; Algorithm 1 children share the parent's patterns",
                        group.parent
                    ),
                ));
            }
        }
    }
}

/// Runs every model/IR pass over a pruned graph.
///
/// `input_shape` is the NCHW shape the model serves (e.g.
/// `[1, 3, 64, 64]` for the scaled twins); shape inference walks the
/// whole graph from it and any arity/shape conflict is RV006.
pub fn check_model(graph: &Graph, input_shape: &[usize]) -> Report {
    let mut report = Report::new();
    if let Err(e) = graph.infer_shapes(input_shape) {
        report.push(Diagnostic::error(
            "RV006",
            format!("graph (input {input_shape:?})"),
            format!("shape inference failed: {e}"),
        ));
    }
    for id in graph.conv_ids() {
        if let Some(conv) = graph.conv(id) {
            check_conv_masks(&graph.node(id).name, conv, &mut report);
        }
    }
    check_groups(graph, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::{EntryPattern, Pruner, RTossPruner};

    #[test]
    fn clean_pruned_twin_has_no_findings() {
        let mut m = rtoss_models::yolov5s_twin(8, 2, 7).unwrap();
        RTossPruner::new(EntryPattern::Three)
            .prune_graph(&mut m.graph)
            .unwrap();
        let report = check_model(&m.graph, &[1, 3, 64, 64]);
        assert!(
            !report.has_errors(),
            "expected clean report, got:\n{}",
            report.render()
        );
    }

    #[test]
    fn desynced_weight_is_rv007() {
        let mut m = rtoss_models::yolov5s_twin(4, 2, 9).unwrap();
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .unwrap();
        // Resurrect one pruned weight without touching its mask.
        let id = *m
            .graph
            .conv_ids()
            .iter()
            .find(|&&id| {
                m.graph
                    .conv(id)
                    .is_some_and(|c| c.kernel_size() == 3 && c.weight().mask().is_some())
            })
            .unwrap();
        let conv = m.graph.conv_mut(id).unwrap();
        let zero_at = conv
            .weight()
            .mask()
            .unwrap()
            .as_slice()
            .iter()
            .position(|&v| v == 0.0)
            .unwrap();
        conv.weight_mut().value.as_mut_slice()[zero_at] = 0.5;
        let report = check_model(&m.graph, &[1, 3, 64, 64]);
        assert!(report.has_code("RV007"), "{}", report.render());
    }

    #[test]
    fn bad_input_shape_is_rv006() {
        let mut m = rtoss_models::yolov5s_twin(4, 2, 9).unwrap();
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .unwrap();
        let report = check_model(&m.graph, &[1, 4, 64, 64]);
        assert!(report.has_code("RV006"), "{}", report.render());
    }
}
