//! Trace and exposition well-formedness checks (RV040–RV044).
//!
//! The observability layer promises structural invariants the runtime
//! emission code is carefully ordered to maintain; these passes prove a
//! given trace or Prometheus exposition actually holds them:
//!
//! - **RV040** — synchronous spans are properly nested per thread:
//!   two spans on one thread either nest or are disjoint, never
//!   partially overlapping. (Async intervals are exempt — queue waits
//!   legitimately overlap.)
//! - **RV041** — per-thread event order is monotone by end timestamp:
//!   spans are recorded at close time, so each thread's buffer must be
//!   sorted by non-decreasing end.
//! - **RV042** — every `execute` span contains at least one
//!   `layer:*` child span on its own thread: a trace whose executes
//!   are hollow means the per-layer instrumentation was lost.
//! - **RV043** — Prometheus text exposition lint: parseable lines,
//!   cumulative histogram buckets with strictly increasing `le`
//!   bounds ending at `+Inf`, and `_sum`/`_count` samples agreeing
//!   with the buckets.
//! - **RV044** — the exposition round-trips against a
//!   [`MetricsSnapshot`]: parsed bucket counts reconstruct the
//!   snapshot's phase histograms exactly.

use crate::diag::{Diagnostic, Report};
use rtoss_obs::prom::{self, PromSample};
use rtoss_obs::{EventKind, Trace, TraceEvent};
use rtoss_serve::MetricsSnapshot;
use serde::Value;
use std::collections::HashMap;

/// Runs RV040–RV042 over a drained trace.
pub fn check_trace(label: &str, trace: &Trace) -> Report {
    let mut report = Report::new();
    let mut by_tid: HashMap<u64, Vec<&TraceEvent>> = HashMap::new();
    for e in &trace.events {
        by_tid.entry(e.tid).or_default().push(e);
    }
    let mut tids: Vec<u64> = by_tid.keys().copied().collect();
    tids.sort_unstable();
    for tid in tids {
        let events = &by_tid[&tid];
        check_end_order(label, tid, events, &mut report);
        let spans: Vec<&TraceEvent> = events
            .iter()
            .copied()
            .filter(|e| e.kind == EventKind::Span)
            .collect();
        check_nesting(label, tid, &spans, &mut report);
        check_execute_children(label, tid, &spans, &mut report);
    }
    report
}

/// RV041: events in buffer order have non-decreasing end timestamps.
fn check_end_order(label: &str, tid: u64, events: &[&TraceEvent], report: &mut Report) {
    let mut last_end = 0u64;
    for (i, e) in events.iter().enumerate() {
        let end = e.ts_ns.saturating_add(e.dur_ns);
        if end < last_end {
            report.push(Diagnostic::error(
                "RV041",
                format!("{label}: tid {tid}, event {i} ({})", e.name),
                format!(
                    "end timestamp {end} ns precedes the previous event's end \
                     {last_end} ns — per-thread buffers must be ordered by close time"
                ),
            ));
        }
        last_end = last_end.max(end);
    }
}

/// Sorts span references for nesting analysis: by start ascending, then
/// duration descending so a parent precedes the children it contains.
fn nesting_order<'t>(spans: &[&'t TraceEvent]) -> Vec<&'t TraceEvent> {
    let mut sorted = spans.to_vec();
    sorted.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then_with(|| b.dur_ns.cmp(&a.dur_ns)));
    sorted
}

/// RV040: spans on one thread nest or are disjoint.
fn check_nesting(label: &str, tid: u64, spans: &[&TraceEvent], report: &mut Report) {
    let mut stack: Vec<(u64, &TraceEvent)> = Vec::new();
    for e in nesting_order(spans) {
        let end = e.ts_ns.saturating_add(e.dur_ns);
        while let Some(&(parent_end, _)) = stack.last() {
            if e.ts_ns >= parent_end {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(parent_end, parent)) = stack.last() {
            if end > parent_end {
                report.push(Diagnostic::error(
                    "RV040",
                    format!("{label}: tid {tid}, span {:?}", e.name.as_ref()),
                    format!(
                        "span [{}..{end}] partially overlaps enclosing span {:?} \
                         [{}..{parent_end}] — sync spans must nest or be disjoint",
                        e.ts_ns,
                        parent.name.as_ref(),
                        parent.ts_ns,
                    ),
                ));
            }
        }
        stack.push((end, e));
    }
}

/// RV042: every `execute` span contains ≥ 1 `layer:*` span.
fn check_execute_children(label: &str, tid: u64, spans: &[&TraceEvent], report: &mut Report) {
    for exec in spans.iter().filter(|e| e.name == "execute") {
        let end = exec.ts_ns.saturating_add(exec.dur_ns);
        let has_layer = spans.iter().any(|e| {
            e.name.starts_with("layer:")
                && e.ts_ns >= exec.ts_ns
                && e.ts_ns.saturating_add(e.dur_ns) <= end
        });
        if !has_layer {
            report.push(Diagnostic::error(
                "RV042",
                format!("{label}: tid {tid}, execute span at {} ns", exec.ts_ns),
                "execute span contains no layer:* child span — per-layer \
                 instrumentation missing from the model pass"
                    .to_string(),
            ));
        }
    }
}

fn value_num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Parses a Chrome trace JSON array (as written by
/// `Trace::to_chrome_json`) back into a [`Trace`] and runs
/// [`check_trace`] on it. Malformed JSON or event objects are RV040
/// errors — a trace that cannot be reconstructed is not well-formed.
pub fn check_trace_json(label: &str, json: &str) -> Report {
    let mut report = Report::new();
    let parsed: Value = match serde_json::from_str(json) {
        Ok(v) => v,
        Err(e) => {
            report.push(Diagnostic::error(
                "RV040",
                label.to_string(),
                format!("trace JSON does not parse: {e}"),
            ));
            return report;
        }
    };
    let Value::Arr(items) = &parsed else {
        report.push(Diagnostic::error(
            "RV040",
            label.to_string(),
            "trace JSON is not an array of events".to_string(),
        ));
        return report;
    };
    let mut trace = Trace::default();
    // Open async begins, keyed by (id, tid), awaiting their end event.
    let mut open_async: HashMap<(String, u64), (String, u64)> = HashMap::new();
    for (i, item) in items.iter().enumerate() {
        let ev = (|| -> Result<Option<TraceEvent>, String> {
            let name = item
                .field("name")
                .and_then(|v| v.as_str())
                .map_err(|e| e.to_string())?
                .to_string();
            let ph = item
                .field("ph")
                .and_then(|v| v.as_str())
                .map_err(|e| e.to_string())?;
            let tid = item
                .field("tid")
                .ok()
                .and_then(value_num)
                .ok_or("missing numeric tid")? as u64;
            let ts_us = item
                .field("ts")
                .ok()
                .and_then(value_num)
                .ok_or("missing numeric ts")?;
            let ts_ns = (ts_us * 1e3).round().max(0.0) as u64;
            match ph {
                "X" => {
                    let dur_us = item
                        .field("dur")
                        .ok()
                        .and_then(value_num)
                        .ok_or("complete event missing numeric dur")?;
                    Ok(Some(TraceEvent {
                        name: name.into(),
                        kind: EventKind::Span,
                        tid,
                        ts_ns,
                        dur_ns: (dur_us * 1e3).round().max(0.0) as u64,
                        args: Vec::new(),
                    }))
                }
                "b" => {
                    let id = item
                        .field("id")
                        .and_then(|v| v.as_str())
                        .map_err(|_| "async begin missing string id")?
                        .to_string();
                    open_async.insert((id, tid), (name, ts_ns));
                    Ok(None)
                }
                "e" => {
                    let id = item
                        .field("id")
                        .and_then(|v| v.as_str())
                        .map_err(|_| "async end missing string id")?
                        .to_string();
                    let (name, begin_ns) = open_async
                        .remove(&(id.clone(), tid))
                        .ok_or_else(|| format!("async end {id:?} has no open begin"))?;
                    let numeric_id =
                        u64::from_str_radix(id.trim_start_matches("0x"), 16).unwrap_or(0);
                    Ok(Some(TraceEvent {
                        name: name.into(),
                        kind: EventKind::Async { id: numeric_id },
                        tid,
                        ts_ns: begin_ns,
                        dur_ns: ts_ns.saturating_sub(begin_ns),
                        args: Vec::new(),
                    }))
                }
                "i" => Ok(Some(TraceEvent {
                    name: name.into(),
                    kind: EventKind::Instant,
                    tid,
                    ts_ns,
                    dur_ns: 0,
                    args: Vec::new(),
                })),
                other => Err(format!("unknown phase {other:?}")),
            }
        })();
        match ev {
            Ok(Some(e)) => trace.events.push(e),
            Ok(None) => {}
            Err(msg) => report.push(Diagnostic::error(
                "RV040",
                format!("{label}: event {i}"),
                msg,
            )),
        }
    }
    for ((id, tid), (name, _)) in &open_async {
        report.push(Diagnostic::error(
            "RV040",
            format!("{label}: tid {tid}"),
            format!("async begin {name:?} (id {id}) never ends"),
        ));
    }
    report.extend(check_trace(label, &trace).diagnostics);
    report
}

/// A histogram family reassembled from parsed samples.
struct BucketFamily<'s> {
    buckets: Vec<&'s PromSample>,
    sum: Option<f64>,
    count: Option<f64>,
}

fn collect_families<'s>(samples: &'s [PromSample]) -> Vec<(String, BucketFamily<'s>)> {
    let mut families: Vec<(String, BucketFamily<'s>)> = Vec::new();
    fn family<'f, 's>(
        families: &'f mut Vec<(String, BucketFamily<'s>)>,
        base: &str,
    ) -> &'f mut BucketFamily<'s> {
        let pos = families
            .iter()
            .position(|(n, _)| n == base)
            .unwrap_or_else(|| {
                families.push((
                    base.to_string(),
                    BucketFamily {
                        buckets: Vec::new(),
                        sum: None,
                        count: None,
                    },
                ));
                families.len() - 1
            });
        &mut families[pos].1
    }
    for s in samples {
        if let Some(base) = s.name.strip_suffix("_bucket") {
            family(&mut families, base).buckets.push(s);
        } else if let Some(base) = s.name.strip_suffix("_sum") {
            family(&mut families, base).sum = Some(s.value);
        } else if let Some(base) = s.name.strip_suffix("_count") {
            family(&mut families, base).count = Some(s.value);
        }
    }
    families.retain(|(_, f)| !f.buckets.is_empty());
    families
}

/// RV043: Prometheus text exposition format lint.
pub fn check_prometheus(label: &str, text: &str) -> Report {
    let mut report = Report::new();
    let samples = match prom::parse(text) {
        Ok(s) => s,
        Err(e) => {
            report.push(Diagnostic::error(
                "RV043",
                label.to_string(),
                format!("exposition does not parse: {e}"),
            ));
            return report;
        }
    };
    for s in &samples {
        if s.value.is_nan() {
            report.push(Diagnostic::error(
                "RV043",
                format!("{label}: {}", s.name),
                "sample value is NaN".to_string(),
            ));
        }
    }
    for (base, fam) in collect_families(&samples) {
        let loc = format!("{label}: {base}");
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = f64::NEG_INFINITY;
        let mut saw_inf = false;
        for b in &fam.buckets {
            let Some(le) = b.label("le") else {
                report.push(Diagnostic::error(
                    "RV043",
                    loc.clone(),
                    "bucket sample without an `le` label".to_string(),
                ));
                continue;
            };
            let le_v = match le {
                "+Inf" => f64::INFINITY,
                s => match s.parse::<f64>() {
                    Ok(v) => v,
                    Err(_) => {
                        report.push(Diagnostic::error(
                            "RV043",
                            loc.clone(),
                            format!("unparseable le bound {le:?}"),
                        ));
                        continue;
                    }
                },
            };
            if le_v <= prev_le {
                report.push(Diagnostic::error(
                    "RV043",
                    loc.clone(),
                    format!("le bounds not strictly increasing at {le:?}"),
                ));
            }
            if b.value < prev_cum {
                report.push(Diagnostic::error(
                    "RV043",
                    loc.clone(),
                    format!(
                        "cumulative bucket count decreases at le={le:?} ({} < {prev_cum})",
                        b.value
                    ),
                ));
            }
            prev_le = le_v;
            prev_cum = prev_cum.max(b.value);
            saw_inf = saw_inf || le_v.is_infinite();
        }
        if !saw_inf {
            report.push(Diagnostic::error(
                "RV043",
                loc.clone(),
                "histogram lacks the terminating le=\"+Inf\" bucket".to_string(),
            ));
        }
        match fam.count {
            None => report.push(Diagnostic::error(
                "RV043",
                loc.clone(),
                "histogram lacks a _count sample".to_string(),
            )),
            Some(count) => {
                if let Some(last) = fam.buckets.last() {
                    if saw_inf && last.value != count {
                        report.push(Diagnostic::error(
                            "RV043",
                            loc.clone(),
                            format!(
                                "le=\"+Inf\" bucket ({}) disagrees with _count ({count})",
                                last.value
                            ),
                        ));
                    }
                }
            }
        }
        if fam.sum.is_none() {
            report.push(Diagnostic::error(
                "RV043",
                loc,
                "histogram lacks a _sum sample".to_string(),
            ));
        }
    }
    report
}

/// RV043 + RV044: lints the exposition, then proves the phase
/// histograms round-trip against `snapshot` bucket by bucket.
pub fn check_prometheus_snapshot(label: &str, text: &str, snapshot: &MetricsSnapshot) -> Report {
    let mut report = check_prometheus(label, text);
    let Ok(samples) = prom::parse(text) else {
        return report; // parse failure already reported as RV043
    };
    for (phase, hist) in snapshot.phase_histograms() {
        let name = format!("rtoss_{phase}_seconds");
        let loc = format!("{label}: {name}");
        let cumulative: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == format!("{name}_bucket"))
            .map(|s| s.value)
            .collect();
        if cumulative.len() != hist.buckets.len() + 1 {
            report.push(Diagnostic::error(
                "RV044",
                loc.clone(),
                format!(
                    "exposition has {} bucket samples but the snapshot has {} buckets (+Inf)",
                    cumulative.len(),
                    hist.buckets.len()
                ),
            ));
            continue;
        }
        let mut prev = 0.0f64;
        for (i, snap_count) in hist.buckets.iter().enumerate() {
            let got = cumulative[i] - prev;
            if got != *snap_count as f64 {
                report.push(Diagnostic::error(
                    "RV044",
                    loc.clone(),
                    format!("bucket {i}: exposition count {got} != snapshot {snap_count}"),
                ));
            }
            prev = cumulative[i];
        }
        let inf = *cumulative.last().expect("length checked above");
        if inf != hist.count as f64 {
            report.push(Diagnostic::error(
                "RV044",
                loc.clone(),
                format!("+Inf bucket {inf} != snapshot count {}", hist.count),
            ));
        }
        let count_sample = samples
            .iter()
            .find(|s| s.name == format!("{name}_count"))
            .map(|s| s.value);
        if count_sample != Some(hist.count as f64) {
            report.push(Diagnostic::error(
                "RV044",
                loc.clone(),
                format!(
                    "_count sample {count_sample:?} != snapshot count {}",
                    hist.count
                ),
            ));
        }
        if let Some(sum) = samples
            .iter()
            .find(|s| s.name == format!("{name}_sum"))
            .map(|s| s.value)
        {
            let want = hist.sum_ns as f64 / 1e9;
            // The sum crosses a decimal formatting round trip; allow
            // one part in 1e12 of slack.
            let tol = want.abs().max(1.0) * 1e-12;
            if (sum - want).abs() > tol {
                report.push(Diagnostic::error(
                    "RV044",
                    loc,
                    format!("_sum {sum} != snapshot sum {want} s"),
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_serve::{LatencyHistogram, ServerMetrics};
    use std::borrow::Cow;
    use std::time::Duration;

    fn span(name: &str, tid: u64, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: Cow::Owned(name.to_string()),
            kind: EventKind::Span,
            tid,
            ts_ns: ts,
            dur_ns: dur,
            args: Vec::new(),
        }
    }

    fn trace(events: Vec<TraceEvent>) -> Trace {
        Trace { events, dropped: 0 }
    }

    #[test]
    fn clean_trace_passes_all_checks() {
        // layer closes first, then execute (recorded-at-close order).
        let t = trace(vec![
            span("layer:a", 1, 10, 30),
            span("layer:b", 1, 50, 40),
            span("execute", 1, 0, 100),
        ]);
        let report = check_trace("clean", &t);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn partial_overlap_is_rv040() {
        let t = trace(vec![span("a", 1, 0, 100), span("b", 1, 50, 100)]);
        let report = check_trace("overlap", &t);
        assert!(report.has_code("RV040"), "{}", report.render());
    }

    #[test]
    fn overlap_on_different_threads_is_fine() {
        let t = trace(vec![span("a", 1, 0, 100), span("b", 2, 50, 100)]);
        assert!(!check_trace("threads", &t).has_errors());
    }

    #[test]
    fn decreasing_end_order_is_rv041() {
        let t = trace(vec![span("late", 1, 0, 200), span("early", 1, 10, 40)]);
        let report = check_trace("order", &t);
        assert!(report.has_code("RV041"), "{}", report.render());
        assert!(!report.has_code("RV040"), "nested spans, only order wrong");
    }

    #[test]
    fn async_events_skip_nesting_but_not_end_order() {
        let mk = |id, ts, dur| TraceEvent {
            name: Cow::Borrowed("queue_wait"),
            kind: EventKind::Async { id },
            tid: 1,
            ts_ns: ts,
            dur_ns: dur,
            args: Vec::new(),
        };
        // Ends 200 then 150: out of buffer order. The intervals also
        // partially overlap, but async events are exempt from RV040.
        let t = trace(vec![mk(1, 0, 200), mk(2, 50, 100)]);
        let report = check_trace("async", &t);
        assert!(report.has_code("RV041"), "{}", report.render());
        assert!(!report.has_code("RV040"), "{}", report.render());
    }

    #[test]
    fn async_partial_overlap_passes_when_ends_ordered() {
        let mk = |id, ts, end| TraceEvent {
            name: Cow::Borrowed("queue_wait"),
            kind: EventKind::Async { id },
            tid: 1,
            ts_ns: ts,
            dur_ns: end - ts,
            args: Vec::new(),
        };
        let t = trace(vec![mk(1, 0, 100), mk(2, 50, 150)]);
        assert!(!check_trace("async", &t).has_errors());
    }

    #[test]
    fn hollow_execute_is_rv042() {
        let t = trace(vec![span("execute", 1, 0, 100)]);
        let report = check_trace("hollow", &t);
        assert!(report.has_code("RV042"), "{}", report.render());
    }

    #[test]
    fn layer_on_other_thread_does_not_satisfy_rv042() {
        let t = trace(vec![span("layer:a", 2, 10, 20), span("execute", 1, 0, 100)]);
        assert!(check_trace("cross", &t).has_code("RV042"));
    }

    #[test]
    fn chrome_json_round_trip_checks_clean() {
        // Buffer order is close order: layer (40), queue wait (80),
        // execute (100).
        let t = trace(vec![
            span("layer:a", 1, 10, 30),
            TraceEvent {
                name: Cow::Borrowed("queue_wait"),
                kind: EventKind::Async { id: 9 },
                tid: 1,
                ts_ns: 0,
                dur_ns: 80,
                args: Vec::new(),
            },
            span("execute", 1, 0, 100),
        ]);
        let json = t.to_chrome_json();
        let report = check_trace_json("chrome", &json);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn malformed_trace_json_is_rv040() {
        assert!(check_trace_json("bad", "{not json").has_code("RV040"));
        assert!(check_trace_json("bad", "{}").has_code("RV040"));
        // An event object without the mandatory fields.
        assert!(check_trace_json("bad", "[{\"name\":\"x\"}]").has_code("RV040"));
    }

    #[test]
    fn real_exposition_passes_rv043_and_rv044() {
        let m = ServerMetrics::new();
        m.queue_wait.record(Duration::from_micros(3));
        m.execute.record(Duration::from_millis(7));
        m.execute.record(Duration::from_millis(9));
        let snap = m.snapshot();
        let text = snap.to_prometheus();
        let report = check_prometheus_snapshot("real", &text, &snap);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn corrupted_bucket_counts_are_rv044() {
        let m = ServerMetrics::new();
        m.execute.record(Duration::from_millis(7));
        let mut snap = m.snapshot();
        let text = snap.to_prometheus();
        // Tamper with the snapshot after rendering.
        let idx = LatencyHistogram::bucket_index(7e6);
        snap.execute_hist.buckets[idx] += 1;
        snap.execute_hist.count += 1;
        let report = check_prometheus_snapshot("tampered", &text, &snap);
        assert!(report.has_code("RV044"), "{}", report.render());
    }

    #[test]
    fn histogram_lint_catches_decreasing_and_mismatched_buckets() {
        let text = "\
# HELP h x
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"0.2\"} 3
h_bucket{le=\"+Inf\"} 7
h_sum 1.0
h_count 9
";
        let report = check_prometheus("lint", text);
        assert!(report.has_code("RV043"), "{}", report.render());
        assert!(
            report.error_count() >= 2,
            "decrease AND +Inf/count mismatch"
        );
    }

    #[test]
    fn missing_inf_bucket_is_rv043() {
        let text = "\
h_bucket{le=\"0.1\"} 5
h_sum 1.0
h_count 5
";
        assert!(check_prometheus("noinf", text).has_code("RV043"));
    }
}
