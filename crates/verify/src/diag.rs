//! Diagnostic types shared by every rtoss-verify pass.
//!
//! A pass reports problems as [`Diagnostic`]s — a severity, a stable
//! `RV0xx` code (see DESIGN.md §9 for the registry), the location of
//! the offending artifact, and a human-readable message. Passes never
//! panic on malformed input; they collect everything they find into a
//! [`Report`] so one run surfaces *all* violations, not just the first.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note; never affects the exit code.
    Info,
    /// Suspicious but not provably wrong; never affects the exit code.
    Warning,
    /// An invariant violation. The artifact must not be executed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding from a verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// Stable registry code, e.g. `"RV002"`.
    pub code: &'static str,
    /// Where the violation lives — a node name, layer index, file:line,
    /// or other artifact coordinate.
    pub location: String,
    /// What is wrong, in one sentence.
    pub message: String,
}

impl Diagnostic {
    /// Builds an error-severity diagnostic.
    pub fn error(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            location: location.into(),
            message: message.into(),
        }
    }

    /// Builds a warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// The collected output of one or more verification passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding from another pass.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Whether a finding with the given registry code is present.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders the report as a machine-readable JSON document with a
    /// stable schema: `{"errors", "warnings", "findings": [{"severity",
    /// "code", "location", "message"}, …]}`. Findings keep pass order.
    /// CI consumes this via `verify --json`.
    pub fn to_json(&self) -> String {
        use serde_json::Value;
        let findings = Value::Arr(
            self.diagnostics
                .iter()
                .map(|d| {
                    Value::Obj(vec![
                        ("severity".to_string(), Value::Str(d.severity.to_string())),
                        ("code".to_string(), Value::Str(d.code.to_string())),
                        ("location".to_string(), Value::Str(d.location.clone())),
                        ("message".to_string(), Value::Str(d.message.clone())),
                    ])
                })
                .collect(),
        );
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        let doc = Value::Obj(vec![
            ("errors".to_string(), Value::UInt(self.error_count() as u64)),
            ("warnings".to_string(), Value::UInt(warnings as u64)),
            ("findings".to_string(), findings),
        ]);
        serde_json::to_string_pretty(&doc).expect("report JSON serializes")
    }

    /// Renders the report to a string, one diagnostic per line, with a
    /// trailing summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.error_count();
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        out.push_str(&format!(
            "verify: {} error(s), {} warning(s), {} finding(s) total\n",
            errors,
            warnings,
            self.diagnostics.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_tracks_errors_and_codes() {
        let mut r = Report::new();
        assert!(!r.has_errors());
        r.push(Diagnostic::warning("RV999", "here", "odd"));
        assert!(!r.has_errors());
        r.push(Diagnostic::error("RV001", "layer 3", "bad entry count"));
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert!(r.has_code("RV001"));
        assert!(!r.has_code("RV002"));
        let text = r.render();
        assert!(text.contains("error[RV001] layer 3: bad entry count"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_schema_is_stable_and_round_trips() {
        let mut r = Report::new();
        r.push(Diagnostic::warning("RV999", "here", "odd"));
        r.push(Diagnostic::error("RV001", "layer 3", "bad \"entry\" count"));
        let doc: serde_json::Value =
            serde_json::from_str(&r.to_json()).expect("to_json emits valid JSON");
        // The stand-in parser reads small integers back as `Int`.
        assert_eq!(doc.field("errors").unwrap(), &serde_json::Value::Int(1));
        assert_eq!(doc.field("warnings").unwrap(), &serde_json::Value::Int(1));
        let findings = doc.field("findings").expect("findings present");
        let first = findings.element(0).expect("two findings");
        let second = findings.element(1).expect("two findings");
        assert!(findings.element(2).is_err());
        assert_eq!(
            first.field("severity").unwrap().as_str().unwrap(),
            "warning"
        );
        assert_eq!(second.field("code").unwrap().as_str().unwrap(), "RV001");
        assert_eq!(
            second.field("location").unwrap().as_str().unwrap(),
            "layer 3"
        );
        assert_eq!(
            second.field("message").unwrap().as_str().unwrap(),
            "bad \"entry\" count"
        );
    }
}
