//! RV080–RV083: fleet SLO telemetry invariants.
//!
//! `fleet_bench --telemetry` writes a [`TelemetrySnapshot`] JSON
//! document and one flight-dump JSON per breach; the passes here prove
//! the telemetry plane's promises hold on those artifacts:
//!
//! - **RV080** — window geometry: per-series windows strictly
//!   ascending, aligned to the storage window width, and no more of
//!   them than the ring holds; burn points ordered by tick time.
//! - **RV081** — conservation: within every admission window
//!   `offered == admitted + throttled + shed`; live windows plus
//!   evicted harvest equal the grand totals per lane; and, when the
//!   fleet ledger snapshot is supplied, series totals plus late drops
//!   reconcile against the ledger (the series is the ledger's windowed
//!   shadow, not an independent estimate).
//! - **RV082** — alert legality: burn-rate policies validate; per
//!   (rule, subject) the alert log is time-ordered and alternates
//!   firing → resolved starting with firing; every firing transition
//!   carries burns at or above `fire_burn` on *both* ranges and every
//!   resolve at or below `resolve_burn` on the short range; the
//!   snapshot's `firing` flags agree with the last logged transition.
//! - **RV083** — flight-dump well-formedness: the post-mortem JSON
//!   parses, carries the required metadata, holds no more entries than
//!   its capacity, keeps them sorted by timestamp with kind-specific
//!   fields present, and its `[first_ts_ns, last_ts_ns]` window covers
//!   the triggering instant.

use crate::diag::{Diagnostic, Report};
use rtoss_fleet::{
    AdmissionWindow, FleetSnapshot, GaugeWindow, TelemetrySnapshot, TenantTelemetrySnapshot,
};
use serde_json::Value;
use std::collections::BTreeMap;

/// RV080: window geometry of every series in the snapshot.
pub fn check_telemetry_windows(snap: &TelemetrySnapshot) -> Report {
    let mut report = Report::new();
    if snap.window_ns == 0 {
        report.push(Diagnostic::error(
            "RV080",
            "telemetry snapshot".to_string(),
            "storage window width is zero".to_string(),
        ));
        return report;
    }
    if snap.windows < 2 {
        report.push(Diagnostic::error(
            "RV080",
            "telemetry snapshot".to_string(),
            format!("ring length {} < 2", snap.windows),
        ));
    }
    for t in &snap.tenants {
        let loc = format!("tenant {:?} admission", t.id);
        check_window_starts(
            &mut report,
            &loc,
            snap,
            t.windows.iter().map(|w| w.start_ns),
        );
        check_burn_order(&mut report, &loc, &t.burns);
    }
    for r in &snap.replicas {
        for (series, windows) in [("queue_frac", &r.queue_frac), ("tier", &r.tier)] {
            let loc = format!("replica {} {series}", r.replica);
            check_window_starts(&mut report, &loc, snap, windows.iter().map(|w| w.start_ns));
            check_gauge_bounds(&mut report, &loc, windows);
        }
        check_burn_order(
            &mut report,
            &format!("replica {} deadline", r.replica),
            &r.burns,
        );
    }
    report
}

fn check_window_starts(
    report: &mut Report,
    loc: &str,
    snap: &TelemetrySnapshot,
    starts: impl Iterator<Item = u64>,
) {
    let starts: Vec<u64> = starts.collect();
    if starts.len() > snap.windows {
        report.push(Diagnostic::error(
            "RV080",
            loc.to_string(),
            format!(
                "{} live windows exceed the ring length {}",
                starts.len(),
                snap.windows
            ),
        ));
    }
    for (i, &s) in starts.iter().enumerate() {
        if s % snap.window_ns != 0 {
            report.push(Diagnostic::error(
                "RV080",
                format!("{loc} window[{i}]"),
                format!(
                    "start {s} ns is not aligned to the {} ns window width",
                    snap.window_ns
                ),
            ));
        }
        if i > 0 && s <= starts[i - 1] {
            report.push(Diagnostic::error(
                "RV080",
                format!("{loc} window[{i}]"),
                format!(
                    "start {s} ns does not strictly follow the previous window at {} ns",
                    starts[i - 1]
                ),
            ));
        }
    }
}

fn check_gauge_bounds(report: &mut Report, loc: &str, windows: &[GaugeWindow]) {
    for (i, w) in windows.iter().enumerate() {
        if w.count > 0 && !(w.min <= w.last && w.last <= w.max) {
            report.push(Diagnostic::error(
                "RV080",
                format!("{loc} window[{i}]"),
                format!(
                    "gauge bounds inconsistent: min {} / last {} / max {}",
                    w.min, w.last, w.max
                ),
            ));
        }
    }
}

fn check_burn_order(report: &mut Report, loc: &str, burns: &[rtoss_fleet::BurnPoint]) {
    for (i, pair) in burns.windows(2).enumerate() {
        if pair[1].ts_ns < pair[0].ts_ns {
            report.push(Diagnostic::error(
                "RV080",
                format!("{loc} burn[{}]", i + 1),
                format!(
                    "burn point at {} ns precedes its predecessor at {} ns",
                    pair[1].ts_ns, pair[0].ts_ns
                ),
            ));
        }
    }
}

/// RV081: admission conservation, per window, per lane, and (when the
/// fleet ledger snapshot is supplied) against the ledger.
pub fn check_telemetry_conservation(
    snap: &TelemetrySnapshot,
    ledger: Option<&FleetSnapshot>,
) -> Report {
    let mut report = Report::new();
    for t in &snap.tenants {
        check_tenant_conservation(&mut report, t);
        if let Some(ledger) = ledger {
            check_tenant_ledger(&mut report, t, ledger);
        }
    }
    report
}

fn lane_sums(windows: &[AdmissionWindow]) -> (u64, u64, u64, u64) {
    windows.iter().fold((0, 0, 0, 0), |acc, w| {
        (
            acc.0 + w.offered,
            acc.1 + w.admitted,
            acc.2 + w.throttled,
            acc.3 + w.shed,
        )
    })
}

fn check_tenant_conservation(report: &mut Report, t: &TenantTelemetrySnapshot) {
    let loc = format!("tenant {:?}", t.id);
    for (i, w) in t.windows.iter().enumerate() {
        let outcomes = w.admitted + w.throttled + w.shed;
        if w.offered != outcomes {
            report.push(Diagnostic::error(
                "RV081",
                format!("{loc} window[{i}] @ {} ns", w.start_ns),
                format!(
                    "window not conserved: offered {} != admitted {} + throttled {} + shed {}",
                    w.offered, w.admitted, w.throttled, w.shed
                ),
            ));
        }
    }
    let live = lane_sums(&t.windows);
    let lanes = [
        ("offered", live.0, t.evicted.offered, t.totals.offered),
        ("admitted", live.1, t.evicted.admitted, t.totals.admitted),
        ("throttled", live.2, t.evicted.throttled, t.totals.throttled),
        ("shed", live.3, t.evicted.shed, t.totals.shed),
    ];
    for (lane, live, evicted, total) in lanes {
        if live + evicted != total {
            report.push(Diagnostic::error(
                "RV081",
                format!("{loc} lane {lane}"),
                format!("live windows {live} + evicted {evicted} != total {total}"),
            ));
        }
    }
    let outcome_total = t.totals.admitted + t.totals.throttled + t.totals.shed;
    if t.totals.offered != outcome_total {
        report.push(Diagnostic::error(
            "RV081",
            format!("{loc} totals"),
            format!(
                "totals not conserved: offered {} != admitted {} + throttled {} + shed {}",
                t.totals.offered, t.totals.admitted, t.totals.throttled, t.totals.shed
            ),
        ));
    }
}

fn check_tenant_ledger(report: &mut Report, t: &TenantTelemetrySnapshot, ledger: &FleetSnapshot) {
    let loc = format!("tenant {:?} vs ledger", t.id);
    let Some(counters) = ledger.tenants.iter().find(|l| l.id == t.id) else {
        report.push(Diagnostic::error(
            "RV081",
            loc,
            "tenant has telemetry but no fleet-ledger entry".to_string(),
        ));
        return;
    };
    // A late sample drops the offered lane and its outcome lane
    // together (they are recorded as one pair), so the series plus the
    // late count must reproduce the ledger exactly.
    if t.totals.offered + t.late != counters.offered {
        report.push(Diagnostic::error(
            "RV081",
            loc.clone(),
            format!(
                "series offered {} + late {} != ledger offered {}",
                t.totals.offered, t.late, counters.offered
            ),
        ));
    }
    let series_outcomes = t.totals.admitted + t.totals.throttled + t.totals.shed;
    let ledger_outcomes = counters.admitted + counters.throttled + counters.shed;
    if series_outcomes + t.late != ledger_outcomes {
        report.push(Diagnostic::error(
            "RV081",
            loc.clone(),
            format!(
                "series outcomes {series_outcomes} + late {} != ledger outcomes {ledger_outcomes}",
                t.late
            ),
        ));
    }
    if t.late == 0 {
        let lanes = [
            ("admitted", t.totals.admitted, counters.admitted),
            ("throttled", t.totals.throttled, counters.throttled),
            ("shed", t.totals.shed, counters.shed),
        ];
        for (lane, series, ledger) in lanes {
            if series != ledger {
                report.push(Diagnostic::error(
                    "RV081",
                    format!("{loc} lane {lane}"),
                    format!("series total {series} != ledger count {ledger} with no late drops"),
                ));
            }
        }
    }
}

/// RV082: burn-rate policy validity and alert-log legality.
pub fn check_alert_log(snap: &TelemetrySnapshot) -> Report {
    let mut report = Report::new();
    for (rule, policy) in [
        ("admission", &snap.admission_policy),
        ("deadline", &snap.deadline_policy),
    ] {
        for problem in policy.to_policy().validate() {
            report.push(Diagnostic::error(
                "RV082",
                format!("{rule} policy"),
                problem,
            ));
        }
    }
    let mut by_subject: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, a) in snap.alerts.iter().enumerate() {
        by_subject
            .entry((a.rule.as_str(), a.subject.as_str()))
            .or_default()
            .push(i);
    }
    for ((rule, subject), indices) in &by_subject {
        let loc = format!("alerts for {rule}/{subject:?}");
        let policy = match *rule {
            "admission" => snap.admission_policy,
            "deadline" => snap.deadline_policy,
            other => {
                report.push(Diagnostic::error(
                    "RV082",
                    loc,
                    format!("unknown alert rule {other:?}"),
                ));
                continue;
            }
        };
        let mut last_ts = 0u64;
        for (seq, &i) in indices.iter().enumerate() {
            let a = &snap.alerts[i];
            if a.ts_ns < last_ts {
                report.push(Diagnostic::error(
                    "RV082",
                    format!("{loc}[{seq}]"),
                    format!(
                        "transition at {} ns precedes the previous at {last_ts} ns",
                        a.ts_ns
                    ),
                ));
            }
            last_ts = a.ts_ns;
            let expected = if seq % 2 == 0 { "firing" } else { "resolved" };
            if a.state != expected {
                report.push(Diagnostic::error(
                    "RV082",
                    format!("{loc}[{seq}]"),
                    format!(
                        "state {:?} breaks firing/resolved alternation (expected {expected:?})",
                        a.state
                    ),
                ));
                continue;
            }
            match a.state.as_str() {
                "firing" => {
                    if a.burn_short < policy.fire_burn || a.burn_long < policy.fire_burn {
                        report.push(Diagnostic::error(
                            "RV082",
                            format!("{loc}[{seq}]"),
                            format!(
                                "firing with burns {:.3}/{:.3} below fire threshold {:.3}",
                                a.burn_short, a.burn_long, policy.fire_burn
                            ),
                        ));
                    }
                }
                _ => {
                    if a.burn_short > policy.resolve_burn {
                        report.push(Diagnostic::error(
                            "RV082",
                            format!("{loc}[{seq}]"),
                            format!(
                                "resolved with short burn {:.3} above resolve threshold {:.3}",
                                a.burn_short, policy.resolve_burn
                            ),
                        ));
                    }
                }
            }
        }
    }
    let last_state = |rule: &str, subject: &str| {
        by_subject
            .get(&(rule, subject))
            .and_then(|v| v.last())
            .map(|&i| snap.alerts[i].state == "firing")
            .unwrap_or(false)
    };
    for t in &snap.tenants {
        if t.firing != last_state("admission", &t.id) {
            report.push(Diagnostic::error(
                "RV082",
                format!("tenant {:?}", t.id),
                format!(
                    "snapshot firing flag {} disagrees with the alert log",
                    t.firing
                ),
            ));
        }
    }
    for r in &snap.replicas {
        let subject = format!("replica/{}", r.replica);
        if r.firing != last_state("deadline", &subject) {
            report.push(Diagnostic::error(
                "RV082",
                subject,
                format!(
                    "snapshot firing flag {} disagrees with the alert log",
                    r.firing
                ),
            ));
        }
    }
    report
}

/// RV083: flight-dump well-formedness and trigger coverage.
pub fn check_flight_dump(label: &str, json: &str) -> Report {
    let mut report = Report::new();
    let parsed: Value = match serde_json::from_str(json) {
        Ok(v) => v,
        Err(e) => {
            report.push(Diagnostic::error(
                "RV083",
                label.to_string(),
                format!("flight dump does not parse: {e}"),
            ));
            return report;
        }
    };
    let err = |report: &mut Report, what: String| {
        report.push(Diagnostic::error("RV083", label.to_string(), what));
    };
    let reason = parsed.field("reason").ok().and_then(|v| v.as_str().ok());
    match reason {
        Some("") | None => err(&mut report, "missing or empty `reason`".to_string()),
        Some(_) => {}
    }
    let mut meta = |key: &str| -> Option<u64> {
        let v = parsed.field(key).ok().and_then(value_u64);
        if v.is_none() {
            err(&mut report, format!("missing numeric `{key}`"));
        }
        v
    };
    let trigger = meta("trigger_ts_ns");
    let _ = meta("dumped_at_ns");
    let capacity = meta("capacity");
    let _ = meta("displaced");
    let first = meta("first_ts_ns");
    let last = meta("last_ts_ns");
    if capacity == Some(0) {
        err(&mut report, "capacity is zero".to_string());
    }
    let entries = match parsed.field("entries") {
        Ok(Value::Arr(items)) => items.as_slice(),
        _ => {
            err(&mut report, "missing `entries` array".to_string());
            return report;
        }
    };
    if let Some(cap) = capacity {
        if entries.len() as u64 > cap {
            err(
                &mut report,
                format!("{} entries exceed capacity {cap}", entries.len()),
            );
        }
    }
    let mut prev_ts: Option<u64> = None;
    for (i, e) in entries.iter().enumerate() {
        let Some(ts) = check_entry(&mut report, label, i, e) else {
            continue;
        };
        if let Some(prev) = prev_ts {
            if ts < prev {
                err(
                    &mut report,
                    format!(
                        "entry[{i}] at {ts} ns precedes entry[{}] at {prev} ns",
                        i - 1
                    ),
                );
            }
        }
        prev_ts = Some(ts);
        if i == 0 && first.is_some_and(|f| f != ts) {
            err(
                &mut report,
                format!("first_ts_ns {} != first entry ts {ts}", first.unwrap_or(0)),
            );
        }
        if i == entries.len() - 1 && last.is_some_and(|l| l != ts) {
            err(
                &mut report,
                format!("last_ts_ns {} != last entry ts {ts}", last.unwrap_or(0)),
            );
        }
    }
    if let (Some(first), Some(trigger), Some(last)) = (first, trigger, last) {
        if !(first <= trigger && trigger <= last) {
            err(
                &mut report,
                format!("window [{first}, {last}] ns does not cover the trigger at {trigger} ns"),
            );
        }
    }
    report
}

/// Validates one dump entry's kind-specific fields; returns its
/// timestamp when present.
fn check_entry(report: &mut Report, label: &str, i: usize, e: &Value) -> Option<u64> {
    let loc = format!("{label} entry[{i}]");
    let mut fail = |what: String| {
        report.push(Diagnostic::error("RV083", loc.clone(), what));
    };
    let Some(kind) = e.field("kind").ok().and_then(|v| v.as_str().ok()) else {
        fail("entry has no string `kind`".to_string());
        return None;
    };
    let required: &[&str] = match kind {
        "span" => &["name", "dur_ns"],
        "instant" => &["name", "detail"],
        "sample" => &["series", "value"],
        "alert" => &["rule", "subject", "state", "burn_short", "burn_long"],
        other => {
            fail(format!("unknown entry kind {other:?}"));
            return None;
        }
    };
    for key in required {
        if e.field(key).is_err() {
            fail(format!("{kind} entry missing `{key}`"));
        }
    }
    if kind == "alert" {
        let state = e.field("state").ok().and_then(|v| v.as_str().ok());
        if !matches!(state, Some("firing") | Some("resolved")) {
            fail(format!(
                "alert state {state:?} is neither firing nor resolved"
            ));
        }
    }
    let ts = e.field("ts_ns").ok().and_then(value_u64);
    if ts.is_none() {
        fail(format!("{kind} entry missing numeric `ts_ns`"));
    }
    ts
}

fn value_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        Value::UInt(u) => Some(*u),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_obs::FlightRecorder;

    #[test]
    fn clean_artifacts_pass_every_check() {
        let snap = crate::fixtures::telemetry_fixture_base();
        assert!(!check_telemetry_windows(&snap).has_errors());
        assert!(!check_telemetry_conservation(&snap, None).has_errors());
        assert!(!check_alert_log(&snap).has_errors());
        let dump = crate::fixtures::flight_fixture_dump();
        assert!(!check_flight_dump("fixture dump", &dump).has_errors());
    }

    #[test]
    fn garbage_flight_dump_is_an_rv083_error() {
        assert!(check_flight_dump("garbage", "not json").has_code("RV083"));
        assert!(check_flight_dump("hollow", "{}").has_code("RV083"));
    }

    #[test]
    fn trigger_outside_the_covered_window_is_detected() {
        let r = FlightRecorder::new(8);
        r.span("tick", 100, 5);
        r.instant("evt", 50, "earlier");
        let dump = r.dump("manual", 10);
        assert!(check_flight_dump("fixture", &dump).has_code("RV083"));
    }
}
