//! Execution-plan checks: schedule validity, arena slot-lifetime
//! disjointness, fused/unfused bit-identity, and level-parallel
//! soundness (RV050/RV051/RV052/RV054).
//!
//! The plan compiler in `rtoss-sparse` turns a [`SparseModel`] into a
//! static schedule with a reusable buffer arena, fused conv epilogues,
//! and a dependency-levelled parallel schedule. Four things can
//! silently go wrong with such a compiler, and each gets its own
//! registry code:
//!
//! - **RV050 — schedule validity.** Every step must read only earlier
//!   steps (or the extern input), liveness must point forward, and
//!   every declared output must come from a retained step. A violation
//!   here means the plan could read garbage or free a value that is
//!   still needed.
//! - **RV051 — arena soundness.** Two values may share an arena slot
//!   only if their lifetimes are disjoint; every slot must be large
//!   enough for each tenant; and the plan's reported byte accounting
//!   (`arena_bytes`, `retained_bytes`, `peak_live_bytes`) must agree
//!   with the schedule it summarises. A violation means a run would
//!   overwrite live data — the classic buffer-reuse bug.
//! - **RV052 — planned ≡ interpreted.** Epilogue fusion and arena
//!   execution must be **bit-identical** to the per-node interpreter;
//!   closeness is not enough, because serving dedup/caching layers
//!   compare outputs exactly. [`check_execution_plan`] also forces a
//!   multi-worker pool so the level-parallel executor is exercised and
//!   bit-compared against the serial plan even on a single-core host.
//! - **RV054 — level-parallel soundness.** Every step's operands must
//!   sit in strictly earlier dependency levels (the levelled schedule
//!   respects all data deps), and two tenants of one arena slot may
//!   never be concurrently live: the earlier tenant's deepest
//!   consuming level must lie strictly below the later tenant's level.
//!   A violation means the parallel executor could race a read against
//!   a write — the serial index rule (RV051) alone cannot see this.
//!
//! [`check_execution_plan`] runs all four against a live engine; the
//! `plan-schedule` / `plan-arena` / `plan-fused` / `plan-level-dep` /
//! `plan-level-alias` fixtures prove each check can fire.

use crate::diag::{Diagnostic, Report};
use rtoss_sparse::{ExecConfig, PlanSummary, SparseModel};
use rtoss_tensor::{Tensor, WorkerPool};

/// Checks schedule validity (RV050) of a plan summary: topological
/// operand references, forward-pointing liveness, and output steps that
/// are actually retained.
pub fn check_plan_schedule(location: &str, s: &PlanSummary) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = s.steps.len();
    for (i, step) in s.steps.iter().enumerate() {
        if i > 0 && s.steps[i - 1].node >= step.node {
            out.push(Diagnostic::error(
                "RV050",
                location,
                format!(
                    "step {i} ({}) computes node {} after node {}: schedule is not in \
                     topological node order",
                    step.name,
                    step.node,
                    s.steps[i - 1].node
                ),
            ));
        }
        for (k, src) in step.inputs.iter().enumerate() {
            if let Some(j) = src {
                if *j >= i {
                    out.push(Diagnostic::error(
                        "RV050",
                        location,
                        format!(
                            "step {i} ({}) operand {k} reads step {j}, which has not \
                             executed yet",
                            step.name
                        ),
                    ));
                }
            }
        }
        if step.last_use != usize::MAX && (step.last_use < i || step.last_use >= n) {
            out.push(Diagnostic::error(
                "RV050",
                location,
                format!(
                    "step {i} ({}) has last use {} outside {i}..{n}: liveness must point \
                     forward within the schedule",
                    step.name, step.last_use
                ),
            ));
        }
    }
    for (k, src) in s.outputs.iter().enumerate() {
        let Some(j) = src else { continue };
        match s.steps.get(*j) {
            None => out.push(Diagnostic::error(
                "RV050",
                location,
                format!("output {k} references step {j}, but only {n} steps exist"),
            )),
            Some(step) if step.last_use != usize::MAX => out.push(Diagnostic::error(
                "RV050",
                location,
                format!(
                    "output {k} reads step {j} ({}), whose slot is recycled after step {}: \
                     outputs must be retained",
                    step.name, step.last_use
                ),
            )),
            Some(_) => {}
        }
    }
    out
}

/// Checks arena soundness (RV051) of a plan summary: slot capacities
/// cover every tenant, slot lifetimes are disjoint, and the reported
/// byte accounting matches the schedule.
pub fn check_plan_arena(location: &str, s: &PlanSummary) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut tenants: Vec<Vec<usize>> = vec![Vec::new(); s.slot_caps.len()];
    for (i, step) in s.steps.iter().enumerate() {
        match s.slot_caps.get(step.out_slot) {
            None => {
                out.push(Diagnostic::error(
                    "RV051",
                    location,
                    format!(
                        "step {i} ({}) writes slot {}, but only {} slots exist",
                        step.name,
                        step.out_slot,
                        s.slot_caps.len()
                    ),
                ));
                continue;
            }
            Some(&cap) if cap < step.out_len => out.push(Diagnostic::error(
                "RV051",
                location,
                format!(
                    "step {i} ({}) needs {} elements but slot {} holds only {cap}",
                    step.name, step.out_len, step.out_slot
                ),
            )),
            Some(_) => {}
        }
        tenants[step.out_slot].push(i);
    }
    for (slot, steps_in_slot) in tenants.iter().enumerate() {
        if steps_in_slot.is_empty() {
            out.push(Diagnostic::error(
                "RV051",
                location,
                format!("slot {slot} has no tenant: arena reserves memory nothing uses"),
            ));
            continue;
        }
        for pair in steps_in_slot.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            // Tenant `a`'s value must be dead strictly before tenant
            // `b` claims the slot; a retained tenant (MAX) never dies.
            if s.steps[a].last_use == usize::MAX || s.steps[a].last_use >= b {
                out.push(Diagnostic::error(
                    "RV051",
                    location,
                    format!(
                        "slot {slot}: step {b} ({}) overwrites step {a} ({}), which is \
                         live through step {} — lifetimes overlap",
                        s.steps[b].name,
                        s.steps[a].name,
                        if s.steps[a].last_use == usize::MAX {
                            "the end of the run".to_string()
                        } else {
                            s.steps[a].last_use.to_string()
                        }
                    ),
                ));
            }
        }
    }
    let arena: u64 = 4 * s.slot_caps.iter().map(|&c| c as u64).sum::<u64>();
    if s.arena_bytes != arena {
        out.push(Diagnostic::error(
            "RV051",
            location,
            format!(
                "reported arena_bytes {} does not match slot capacities ({arena} bytes)",
                s.arena_bytes
            ),
        ));
    }
    let retained: u64 = 4 * s.steps.iter().map(|st| st.out_len as u64).sum::<u64>();
    if s.retained_bytes != retained {
        out.push(Diagnostic::error(
            "RV051",
            location,
            format!(
                "reported retained_bytes {} does not match step outputs ({retained} bytes)",
                s.retained_bytes
            ),
        ));
    }
    if s.peak_live_bytes > s.arena_bytes {
        out.push(Diagnostic::error(
            "RV051",
            location,
            format!(
                "peak_live_bytes {} exceeds arena_bytes {}: the arena could not hold the \
                 liveness peak",
                s.peak_live_bytes, s.arena_bytes
            ),
        ));
    }
    out
}

/// Checks level-parallel soundness (RV054) of a plan summary: the
/// dependency-levelled schedule respects every data dependency (each
/// operand's level is strictly below its consumer's), and arena slots
/// are disjoint across concurrently-live steps — consecutive tenants
/// of a slot must be separated by a level barrier, not just by step
/// index.
pub fn check_plan_levels(location: &str, s: &PlanSummary) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Deepest consuming level per step; MAX for retained outputs,
    // which stay live to the end of the run.
    let mut end_level: Vec<usize> = s.steps.iter().map(|st| st.level).collect();
    for (i, step) in s.steps.iter().enumerate() {
        for (k, src) in step.inputs.iter().enumerate() {
            let Some(j) = src else { continue };
            let Some(op) = s.steps.get(*j) else {
                // Out-of-range operands are RV050's finding; skip here.
                continue;
            };
            if op.level >= step.level {
                out.push(Diagnostic::error(
                    "RV054",
                    location,
                    format!(
                        "step {i} ({}, level {}) operand {k} reads step {j} ({}, level {}): \
                         operands must sit in strictly earlier levels or the parallel \
                         executor may read them mid-write",
                        step.name, step.level, op.name, op.level
                    ),
                ));
            }
            end_level[*j] = end_level[*j].max(step.level);
        }
    }
    for (i, step) in s.steps.iter().enumerate() {
        if step.last_use == usize::MAX {
            end_level[i] = usize::MAX;
        }
    }
    let mut tenants: Vec<Vec<usize>> = vec![Vec::new(); s.slot_caps.len()];
    for (i, step) in s.steps.iter().enumerate() {
        if let Some(t) = tenants.get_mut(step.out_slot) {
            t.push(i);
        }
    }
    for (slot, steps_in_slot) in tenants.iter().enumerate() {
        for pair in steps_in_slot.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if end_level[a] == usize::MAX || end_level[a] >= s.steps[b].level {
                out.push(Diagnostic::error(
                    "RV054",
                    location,
                    format!(
                        "slot {slot}: step {b} ({}, level {}) claims it while step {a} ({}) \
                         is still consumed at level {} — the two can be concurrently live, \
                         so a parallel run could overwrite data another level still reads",
                        s.steps[b].name,
                        s.steps[b].level,
                        s.steps[a].name,
                        if end_level[a] == usize::MAX {
                            "end-of-run".to_string()
                        } else {
                            end_level[a].to_string()
                        }
                    ),
                ));
            }
        }
    }
    out
}

/// Checks that two output sets are **bit-identical** (RV052): same
/// count, same shapes, every `f32` equal as bits. Used to prove the
/// planned (fused, arena-backed) forward pass equals the interpreter.
pub fn check_outputs_bit_identical(
    location: &str,
    planned: &[Tensor],
    interpreted: &[Tensor],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if planned.len() != interpreted.len() {
        out.push(Diagnostic::error(
            "RV052",
            location,
            format!(
                "planned forward returned {} outputs, interpreter returned {}",
                planned.len(),
                interpreted.len()
            ),
        ));
        return out;
    }
    for (k, (p, i)) in planned.iter().zip(interpreted).enumerate() {
        if p.shape() != i.shape() {
            out.push(Diagnostic::error(
                "RV052",
                location,
                format!(
                    "output {k}: planned shape {:?} != interpreted shape {:?}",
                    p.shape(),
                    i.shape()
                ),
            ));
            continue;
        }
        let diffs = p
            .as_slice()
            .iter()
            .zip(i.as_slice())
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        if diffs > 0 {
            let first = p
                .as_slice()
                .iter()
                .zip(i.as_slice())
                .position(|(a, b)| a.to_bits() != b.to_bits())
                .unwrap_or(0);
            out.push(Diagnostic::error(
                "RV052",
                location,
                format!(
                    "output {k}: {diffs} of {} elements differ from the interpreter \
                     (first at flat index {first}) — planned execution must be \
                     bit-identical, not approximately equal",
                    p.as_slice().len()
                ),
            ));
        }
    }
    out
}

/// Runs the full RV05x family against a live engine: compiles a plan
/// for `input`'s shape, checks the schedule (RV050), arena (RV051),
/// and levelled parallel schedule (RV054), then executes the planned
/// and interpreted forward passes at each thread count in `threads`
/// and proves them bit-identical (RV052). The planned pass runs twice
/// per thread count — once through the public entry (process-global
/// pool) and once against a forced 3-worker pool — so the
/// level-parallel executor is exercised and bit-compared against the
/// serial plan even on a single-core host.
pub fn check_execution_plan(model: &SparseModel, input: &Tensor, threads: &[usize]) -> Report {
    let mut report = Report::new();
    let shape = input.shape();
    let loc = format!("plan{shape:?}");
    let summary = match model.plan_summary(shape) {
        Ok(s) => s,
        Err(e) => {
            report.push(Diagnostic::error(
                "RV050",
                loc,
                format!("plan compilation failed: {e}"),
            ));
            return report;
        }
    };
    report.extend(check_plan_schedule(&loc, &summary));
    report.extend(check_plan_arena(&loc, &summary));
    report.extend(check_plan_levels(&loc, &summary));
    let deps = crate::concurrency::ModelDeps::of(model);
    report.extend(crate::concurrency::check_plan_hb(
        &loc, &deps, &summary, threads,
    ));
    for &t in threads {
        report.extend(crate::concurrency::shadow_replay(
            &format!("{loc} width={t}"),
            &summary,
            t,
        ));
    }
    let forced = WorkerPool::new(3);
    let serial = model
        .plan_for(shape)
        .and_then(|p| p.run_with_pool(model, input, &ExecConfig::serial(), &forced));
    for &t in threads {
        let exec = ExecConfig::with_threads(t);
        let tloc = format!("plan{shape:?} threads={t}");
        let planned = model
            .plan_for(shape)
            .and_then(|p| p.run(model, input, &exec));
        let interpreted = model.forward_interpreted_with(input, &exec);
        match (planned, interpreted) {
            (Ok(p), Ok(i)) => report.extend(check_outputs_bit_identical(&tloc, &p, &i)),
            (Err(e), _) => report.push(Diagnostic::error(
                "RV052",
                tloc,
                format!("planned forward failed: {e}"),
            )),
            (_, Err(e)) => report.push(Diagnostic::error(
                "RV052",
                tloc,
                format!("interpreted forward failed: {e}"),
            )),
        }
        let ploc = format!("plan{shape:?} threads={t} forced-pool");
        let parallel = model
            .plan_for(shape)
            .and_then(|p| p.run_with_pool(model, input, &exec, &forced));
        match (&serial, parallel) {
            (Ok(s), Ok(p)) => report.extend(check_outputs_bit_identical(&ploc, &p, s)),
            (Err(e), _) => report.push(Diagnostic::error(
                "RV052",
                ploc,
                format!("serial planned forward failed: {e}"),
            )),
            (_, Err(e)) => report.push(Diagnostic::error(
                "RV052",
                ploc,
                format!("parallel planned forward failed: {e}"),
            )),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::{EntryPattern, Pruner, RTossPruner};
    use rtoss_tensor::init;

    fn engine() -> SparseModel {
        let mut m = rtoss_models::yolov5s_twin(4, 2, 0xBEEF).expect("twin builds");
        RTossPruner::new(EntryPattern::Three)
            .prune_graph(&mut m.graph)
            .expect("prunes");
        SparseModel::compile(&m.graph).expect("compiles")
    }

    #[test]
    fn clean_engine_passes_all_plan_checks() {
        let engine = engine();
        let probe = init::uniform(&mut init::rng(7), &[1, 3, 32, 32], 0.0, 1.0);
        let report = check_execution_plan(&engine, &probe, &[1, 4]);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn forward_operand_reference_fires_rv050() {
        let engine = engine();
        let mut s = engine.plan_summary(&[1, 3, 32, 32]).expect("plans");
        // Make an early step read a step that runs after it.
        let last = s.steps.len() - 1;
        s.steps[0].inputs = vec![Some(last)];
        let diags = check_plan_schedule("corrupt", &s);
        assert!(diags.iter().any(|d| d.code == "RV050"), "{diags:?}");
    }

    #[test]
    fn overlapping_slot_lifetimes_fire_rv051() {
        let engine = engine();
        let mut s = engine.plan_summary(&[1, 3, 32, 32]).expect("plans");
        // Undersize a slot below its tenant's length.
        let slot = s.steps[0].out_slot;
        s.slot_caps[slot] = s.steps[0].out_len.saturating_sub(1);
        let diags = check_plan_arena("corrupt", &s);
        assert!(diags.iter().any(|d| d.code == "RV051"), "{diags:?}");
    }

    #[test]
    fn dep_violating_level_fires_rv054() {
        let engine = engine();
        let mut s = engine.plan_summary(&[1, 3, 32, 32]).expect("plans");
        assert!(check_plan_levels("clean", &s).is_empty());
        // Pull a consumer down into its operand's level: the levelled
        // schedule would start both concurrently.
        let (i, j) = s
            .steps
            .iter()
            .enumerate()
            .find_map(|(i, st)| st.inputs.iter().flatten().next().map(|j| (i, *j)))
            .expect("twin has step-to-step deps");
        s.steps[i].level = s.steps[j].level;
        let diags = check_plan_levels("corrupt", &s);
        assert!(diags.iter().any(|d| d.code == "RV054"), "{diags:?}");
    }

    #[test]
    fn concurrently_live_slot_alias_fires_rv054() {
        let engine = engine();
        let mut s = engine.plan_summary(&[1, 3, 32, 32]).expect("plans");
        // Find a slot with two tenants and make the earlier one
        // retained: its lifetime now spans the later tenant's level,
        // so the two could be concurrently live.
        let mut tenants: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for (i, st) in s.steps.iter().enumerate() {
            tenants.entry(st.out_slot).or_default().push(i);
        }
        let pair = tenants
            .values()
            .find(|t| t.len() >= 2)
            .expect("twin plan reuses a slot");
        s.steps[pair[0]].last_use = usize::MAX;
        let diags = check_plan_levels("corrupt", &s);
        assert!(diags.iter().any(|d| d.code == "RV054"), "{diags:?}");
    }

    #[test]
    fn single_bit_flip_fires_rv052() {
        let engine = engine();
        let probe = init::uniform(&mut init::rng(8), &[1, 3, 32, 32], 0.0, 1.0);
        let good = engine.forward(&probe).expect("forward");
        let mut bad: Vec<Tensor> = good.clone();
        let mut data = bad[0].as_slice().to_vec();
        data[0] = f32::from_bits(data[0].to_bits() ^ 1);
        bad[0] = Tensor::from_vec(data, good[0].shape()).expect("same shape");
        let diags = check_outputs_bit_identical("corrupt", &bad, &good);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RV052");
        assert!(check_outputs_bit_identical("clean", &good, &good).is_empty());
    }
}
