//! RV060–RV063: fleet-layer invariants.
//!
//! - **RV060** — routing ring soundness: every replica is reachable
//!   (non-zero vnodes, non-starved coverage), ring points are sorted,
//!   and routing is deterministic.
//! - **RV061** — degradation controller: the hysteresis band is
//!   well-formed, and the tier response is *monotone in sustained
//!   pressure* — holding a higher pressure never yields a denser
//!   (lower) final tier than holding a lower one, saturating pressure
//!   reaches the sparsest tier, and cleared pressure recovers to dense.
//! - **RV062** — tenant ledger conservation: every offered request is
//!   accounted exactly once (`offered == admitted + throttled + shed`
//!   per tenant), and routing tallies cover exactly the admitted
//!   requests.
//! - **RV063** — replica serving-state consistency: the current tier
//!   is in range, per-tier mAP estimates are non-increasing from the
//!   densest tier, served frames imply served batches, and each
//!   replica's terminal counters partition its submissions.
//!
//! RV061 runs on the pure [`TierController`] state machine with
//! synthetic time, so the property is checked exhaustively without a
//! running fleet.

use crate::diag::{Diagnostic, Report};
use rtoss_fleet::{FleetSnapshot, HashRing, TierController, TierControllerConfig};
use std::time::{Duration, Instant};

/// RV060: ring coverage and determinism.
///
/// `samples` synthetic keys are routed twice; every replica must
/// receive at least `1 / (8 * replicas)` of them (a ring with healthy
/// vnode counts spreads far better — the floor only catches starved or
/// unreachable replicas).
pub fn check_hash_ring(ring: &HashRing, samples: usize) -> Report {
    let mut report = Report::new();
    let replicas = ring.replicas();
    if replicas == 0 {
        report.push(Diagnostic::error("RV060", "ring", "ring has no replicas"));
        return report;
    }
    for (r, &n) in ring.vnode_counts().iter().enumerate() {
        if n == 0 {
            report.push(Diagnostic::error(
                "RV060",
                format!("replica {r}"),
                "zero virtual nodes: replica is unreachable by routing",
            ));
        }
    }
    if !ring.points().windows(2).all(|w| w[0] < w[1]) {
        report.push(Diagnostic::error(
            "RV060",
            "ring",
            "ring points not strictly sorted: routing would be ambiguous",
        ));
    }
    let cov = ring.coverage(samples.max(1));
    let floor = 1.0 / (8.0 * replicas as f64);
    for (r, &frac) in cov.iter().enumerate() {
        // Only flag starvation for replicas that *should* be reachable;
        // zero-vnode replicas are already reported above.
        if ring.vnode_counts()[r] > 0 && frac < floor {
            report.push(Diagnostic::error(
                "RV060",
                format!("replica {r}"),
                format!(
                    "starved: receives {:.2}% of keys (floor {:.2}%)",
                    frac * 100.0,
                    floor * 100.0
                ),
            ));
        }
    }
    for i in 0..64.min(samples) {
        let key = format!("determinism-key-{i}");
        if ring.route(&key) != ring.route(&key) {
            report.push(Diagnostic::error(
                "RV060",
                format!("key {key:?}"),
                "routing is not deterministic",
            ));
        }
    }
    report
}

/// Final tier after holding `pressure` for `ticks` control periods
/// (synthetic time, one period per dwell so dwell never gates).
fn settle(cfg: TierControllerConfig, num_tiers: usize, pressure: f64, ticks: usize) -> usize {
    let mut c = TierController::new(cfg, num_tiers);
    let t0 = Instant::now();
    let step = cfg.dwell.max(Duration::from_millis(1));
    let mut level = 0;
    for i in 0..ticks {
        level = c.observe(pressure, pressure, t0 + step * (i as u32 + 1));
    }
    level
}

/// RV061: controller config validity and monotone pressure response.
pub fn check_tier_controller(cfg: TierControllerConfig, num_tiers: usize) -> Report {
    let mut report = Report::new();
    for problem in cfg.validate() {
        report.push(Diagnostic::error("RV061", "controller config", problem));
    }
    if num_tiers == 0 {
        report.push(Diagnostic::error(
            "RV061",
            "controller",
            "zero tiers: nothing to serve",
        ));
    }
    if report.has_errors() {
        // The simulation below assumes a well-formed band.
        return report;
    }
    // Sustained-pressure sweep: the settled tier must be monotone
    // non-decreasing in pressure.
    let ticks = 4 * num_tiers.max(1);
    let mut prev = 0usize;
    for step in 0..=10 {
        let pressure = step as f64 / 10.0;
        let level = settle(cfg, num_tiers, pressure, ticks);
        if level < prev {
            report.push(Diagnostic::error(
                "RV061",
                format!("pressure {pressure:.1}"),
                format!(
                    "tier response not monotone: sustained pressure {pressure:.1} \
                     settles at tier {level}, below tier {prev} at lower pressure"
                ),
            ));
        }
        prev = prev.max(level);
    }
    if settle(cfg, num_tiers, 1.0, ticks) + 1 != num_tiers {
        report.push(Diagnostic::error(
            "RV061",
            "pressure 1.0",
            "saturating pressure does not reach the sparsest tier",
        ));
    }
    // Recovery: drive to the sparsest tier, then hold zero pressure.
    {
        let mut c = TierController::new(cfg, num_tiers);
        let t0 = Instant::now();
        let step = cfg.dwell.max(Duration::from_millis(1));
        let mut t = t0;
        for _ in 0..ticks {
            t += step;
            c.observe(1.0, 1.0, t);
        }
        // The miss EWMA decays geometrically; give it time to clear.
        let mut level = c.level();
        for _ in 0..200 {
            t += step;
            level = c.observe(0.0, 0.0, t);
        }
        if level != 0 {
            report.push(Diagnostic::error(
                "RV061",
                "recovery",
                format!("pressure cleared but the controller settled at tier {level}, not 0"),
            ));
        }
    }
    report
}

/// RV062: per-tenant ledger conservation over a fleet snapshot.
pub fn check_fleet_ledger(snapshot: &FleetSnapshot) -> Report {
    let mut report = Report::new();
    let mut admitted_total = 0u64;
    for t in &snapshot.tenants {
        admitted_total += t.admitted;
        if t.offered != t.accounted() {
            report.push(Diagnostic::error(
                "RV062",
                format!("tenant {}", t.id),
                format!(
                    "ledger not conserved: offered {} != admitted {} + throttled {} + shed {}",
                    t.offered, t.admitted, t.throttled, t.shed
                ),
            ));
        }
    }
    let routed = snapshot.routed_affinity + snapshot.routed_spill;
    if routed != admitted_total {
        report.push(Diagnostic::error(
            "RV062",
            "router",
            format!(
                "routing tallies ({} affine + {} spill) do not cover the {} admitted requests",
                snapshot.routed_affinity, snapshot.routed_spill, admitted_total
            ),
        ));
    }
    report
}

/// RV063: per-replica serving-state consistency.
pub fn check_fleet_replicas(snapshot: &FleetSnapshot) -> Report {
    let mut report = Report::new();
    for r in &snapshot.replicas {
        let loc = format!("replica {}", r.replica);
        if r.tiers.is_empty() {
            report.push(Diagnostic::error("RV063", loc, "replica has no tiers"));
            continue;
        }
        if r.current_tier >= r.tiers.len() {
            report.push(Diagnostic::error(
                "RV063",
                loc.clone(),
                format!(
                    "current tier {} out of range (have {})",
                    r.current_tier,
                    r.tiers.len()
                ),
            ));
        }
        for w in r.tiers.windows(2) {
            if w[1].map_estimate > w[0].map_estimate {
                report.push(Diagnostic::error(
                    "RV063",
                    format!("{loc}, tier {}", w[1].tier),
                    format!(
                        "mAP estimate {} exceeds denser tier {}'s {}: tiers must be \
                         ordered densest-first",
                        w[1].map_estimate, w[0].tier, w[0].map_estimate
                    ),
                ));
            }
        }
        for t in &r.tiers {
            if t.frames > 0 && t.batches == 0 {
                report.push(Diagnostic::error(
                    "RV063",
                    format!("{loc}, tier {}", t.tier),
                    format!("{} frames served by zero batches", t.frames),
                ));
            }
            if t.frames < t.batches {
                report.push(Diagnostic::error(
                    "RV063",
                    format!("{loc}, tier {}", t.tier),
                    format!(
                        "{} batches served only {} frames (every batch carries at least one)",
                        t.batches, t.frames
                    ),
                ));
            }
        }
        let s = &r.server;
        let accounted = s.completed + s.rejected + s.shed + s.failed + s.shut_down;
        if s.submitted != accounted {
            report.push(Diagnostic::error(
                "RV063",
                loc,
                format!(
                    "server counters do not partition submissions: submitted {} != \
                     completed {} + rejected {} + shed {} + failed {} + shut_down {}",
                    s.submitted, s.completed, s.rejected, s.shed, s.failed, s.shut_down
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_fleet::{ReplicaSnapshot, TenantSnapshot, TierServedSnapshot};
    use rtoss_serve::ServerMetrics;

    #[test]
    fn healthy_ring_passes_and_starved_ring_fails() {
        assert!(!check_hash_ring(&HashRing::new(4, 32), 2000).has_errors());
        let starved = HashRing::with_vnode_counts(&[32, 0, 32]);
        let report = check_hash_ring(&starved, 2000);
        assert!(report.has_errors());
        assert!(report.diagnostics.iter().any(|d| d.code == "RV060"));
    }

    #[test]
    fn default_controller_passes_and_inverted_band_fails() {
        assert!(!check_tier_controller(TierControllerConfig::default(), 3).has_errors());
        let inverted = TierControllerConfig {
            upgrade_below: 0.9,
            downgrade_above: 0.2,
            ..TierControllerConfig::default()
        };
        let report = check_tier_controller(inverted, 3);
        assert!(report.diagnostics.iter().any(|d| d.code == "RV061"));
    }

    fn snapshot() -> FleetSnapshot {
        FleetSnapshot {
            tenants: vec![TenantSnapshot {
                id: "t".into(),
                class: "gold".into(),
                offered: 10,
                admitted: 7,
                throttled: 2,
                shed: 1,
            }],
            replicas: vec![ReplicaSnapshot {
                replica: 0,
                current_tier: 0,
                queue_depth: 0,
                tiers: vec![
                    TierServedSnapshot {
                        tier: "dense".into(),
                        map_estimate: 75.0,
                        batches: 3,
                        frames: 7,
                    },
                    TierServedSnapshot {
                        tier: "2EP".into(),
                        map_estimate: 72.0,
                        batches: 0,
                        frames: 0,
                    },
                ],
                server: {
                    let m = ServerMetrics::new();
                    m.submitted.add(7);
                    m.completed.add(7);
                    m.snapshot()
                },
            }],
            routed_affinity: 6,
            routed_spill: 1,
            tier_upgrades: 0,
            tier_downgrades: 0,
            hot_swaps: 0,
        }
    }

    #[test]
    fn conserved_ledger_passes_and_leak_fails() {
        assert!(!check_fleet_ledger(&snapshot()).has_errors());
        let mut bad = snapshot();
        bad.tenants[0].admitted = 5; // two requests vanish
        let report = check_fleet_ledger(&bad);
        assert!(report.diagnostics.iter().any(|d| d.code == "RV062"));
    }

    #[test]
    fn replica_state_checks_fire_on_corruption() {
        assert!(!check_fleet_replicas(&snapshot()).has_errors());
        let mut bad = snapshot();
        bad.replicas[0].tiers[1].map_estimate = 80.0; // sparser yet "better"
        assert!(check_fleet_replicas(&bad)
            .diagnostics
            .iter()
            .any(|d| d.code == "RV063"));
        let mut bad = snapshot();
        bad.replicas[0].server.completed = 3; // partition broken
        assert!(check_fleet_replicas(&bad).has_errors());
    }
}
