//! Static invariant checking for R-TOSS artifacts.
//!
//! The runtime crates compute; this crate *proves*. Before a pruned
//! model or compiled sparse engine is benchmarked or served, the
//! passes here check that it actually satisfies the invariants the
//! paper's algorithms promise — pattern legality (Algorithm 2), group
//! consistency (Algorithm 1), 1×1 round-trip residue (Algorithm 3),
//! sparse-format well-formedness, tile-partition soundness, and
//! histogram bucket geometry — and a source lint keeps panic-capable
//! calls out of the serving/execution hot paths.
//!
//! Run the full pass over the seed models:
//!
//! ```text
//! cargo run -p rtoss-verify --bin verify
//! cargo run -p rtoss-verify --bin verify -- --fixture mask   # must fail
//! cargo run -p rtoss-verify --bin lint
//! ```
//!
//! # Registry
//!
//! | Code  | Family | Invariant |
//! |-------|--------|-----------|
//! | RV001 | model  | pattern entry count in 2..=5, uniform per layer |
//! | RV002 | model  | pattern is 4-adjacent connected |
//! | RV003 | model  | DFS groups partition the conv layers exactly |
//! | RV004 | model  | child pattern set ⊆ parent pattern set |
//! | RV005 | model  | 1×1 tail (`numel % 9`) fully pruned |
//! | RV006 | model  | whole-graph shape inference succeeds |
//! | RV007 | model  | mask shape matches weight; no weight survives a zero mask |
//! | RV010 | sparse | pattern offsets sorted, in-bounds, distinct per layer |
//! | RV011 | sparse | kernel coordinates in-bounds, unique, value counts match |
//! | RV012 | sparse | nnz bookkeeping consistent; no explicit zeros stored |
//! | RV013 | sparse | COO entries sorted, in-bounds, non-zero |
//! | RV014 | sparse | dense reconstruction matches the nnz bookkeeping |
//! | RV020 | exec   | tile buckets partition the tile range |
//! | RV021 | exec   | histogram boundaries strictly increasing, half-open |
//! | RV030 | lint   | no panic-capable call in a hot path |
//! | RV031 | lint   | every `unsafe` carries a `// SAFETY:` comment |
//! | RV040 | trace  | sync spans properly nested per thread; trace JSON well-formed |
//! | RV041 | trace  | per-thread events ordered by non-decreasing end timestamp |
//! | RV042 | trace  | every `execute` span contains ≥ 1 `layer:*` child span |
//! | RV043 | trace  | Prometheus exposition parses; histograms cumulative, `+Inf`-terminated |
//! | RV044 | trace  | exposition bucket counts round-trip against the metrics snapshot |
//! | RV050 | plan   | schedule topological; liveness forward; outputs retained |
//! | RV051 | plan   | arena slot lifetimes disjoint; capacities cover tenants; byte accounting consistent |
//! | RV052 | plan   | planned (fused, arena) forward bit-identical to the interpreter, serial and level-parallel |
//! | RV054 | plan   | levelled schedule respects data deps; arena slots disjoint across concurrently-live steps |
//! | RV070 | conc   | happens-before race freedom: operand edges match the model's data deps, and every conflicting arena-slot access pair is HB-ordered across the executed caller/worker lanes (pairwise + shadow replay) |
//! | RV071 | conc   | lock acquisition order consistent across all sites of a crate (no cycle in the lock-order graph) |
//! | RV072 | conc   | no `Ordering::Relaxed` on publishing atomic writes (`store`/`swap`/`compare_exchange*`); counters waivable via `// ORDERING:` |
//! | RV073 | conc   | no lock guard held across `pool.submit(…)` / `pool.help()` / `batch.wait()` |
//! | RV060 | fleet  | routing ring covers every replica; points sorted; routing deterministic |
//! | RV061 | fleet  | degradation controller band well-formed; tier monotone in sustained pressure; recovers to dense |
//! | RV062 | fleet  | tenant ledger conserved: offered == admitted + throttled + shed; routing covers admitted |
//! | RV063 | fleet  | replica tier state in range; mAP ordered densest-first; terminal counters partition submissions |
//! | RV080 | telem  | series windows strictly ascending, aligned to the window width, bounded by the ring length |
//! | RV081 | telem  | admission windows conserved (`offered == admitted + throttled + shed`) per window, per lane, and against the fleet ledger |
//! | RV082 | telem  | burn-rate policies valid; alert log time-ordered, firing/resolved alternating, transitions respect the hysteresis band |
//! | RV083 | telem  | flight dump well-formed: parses, bounded by capacity, entries sorted, `[first, last]` window covers the trigger |
//! | RV090 | kernel | packed layouts (`PatternPack`/`CooPack`) reconstruct the layer's dense weights bitwise |
//! | RV091 | kernel | plan format labels legal per step kind; timed-autotune choice equals the measured minimum |
//! | RV092 | kernel | every forced conv format (pattern/coo/dense) bit-identical to the interpreter at all thread counts |
//!
//! Severity is always `Error` for registry violations; artifacts with
//! errors must not be executed. See DESIGN.md §9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;

pub mod concurrency;
pub mod exec;
pub mod fixtures;
pub mod fleet;
pub mod kernels;
pub mod lexer;
pub mod lint;
pub mod model;
pub mod plan;
pub mod sparse;
pub mod telemetry;
pub mod trace;

pub use concurrency::{check_plan_hb, shadow_replay, ModelDeps};
pub use diag::{Diagnostic, Report, Severity};
pub use exec::{check_histogram_buckets, check_tile_partition};
pub use fleet::{check_fleet_ledger, check_fleet_replicas, check_hash_ring, check_tier_controller};
pub use kernels::{
    check_coo_pack, check_format_choices, check_format_equivalence, check_layer_format_equivalence,
    check_model_packs, check_pattern_pack,
};
pub use lint::{lint_paths, lint_source};
pub use model::check_model;
pub use plan::{
    check_execution_plan, check_outputs_bit_identical, check_plan_arena, check_plan_levels,
    check_plan_schedule,
};
pub use sparse::{check_pattern_layer, check_sparse_model, check_unstructured_layer};
pub use telemetry::{
    check_alert_log, check_flight_dump, check_telemetry_conservation, check_telemetry_windows,
};
pub use trace::{check_prometheus, check_prometheus_snapshot, check_trace, check_trace_json};
