//! Hot-path source lint (RV030/RV031) over `crates/serve/src` and
//! `crates/sparse/src`, wired into CI.
//!
//! Exits non-zero if any panic-capable call or undocumented `unsafe`
//! survives in non-test hot-path code. Run from anywhere inside the
//! workspace; the repo root is located relative to this crate.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // crates/verify → repo root is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = match rtoss_verify::lint_paths(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: cannot read sources: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &findings {
        println!("{d}");
    }
    if findings.is_empty() {
        println!(
            "lint: hot paths clean ({} roots)",
            rtoss_verify::lint::HOT_PATH_ROOTS.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
