//! Pre-flight static analysis over the seed pruned models.
//!
//! Default mode prunes the scaled YOLOv5s / RetinaNet twins with the
//! 2- and 3-entry-pattern configurations, compiles each to the sparse
//! engine, and runs every artifact check; the exit code is non-zero if
//! any invariant is violated. `--fixture NAME` instead runs one
//! seeded-corruption fixture — there the checks are *supposed* to
//! fire, so a non-zero exit proves the verifier can fail. `--json`
//! (combinable with any mode) switches the output to the stable
//! machine-readable schema of [`Report::to_json`] for CI artifacts.

use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_sparse::SparseModel;
use rtoss_verify::{fixtures, Report};
use std::process::ExitCode;

/// NCHW input shape both scaled twins serve.
const INPUT: [usize; 4] = [1, 3, 64, 64];

fn check_one(label: &str, entry: EntryPattern, report: &mut Report) -> Result<(), String> {
    let mut model = match label {
        "yolov5s_twin" => rtoss_models::yolov5s_twin(8, 2, 0x5EED),
        "retinanet_twin" => rtoss_models::retinanet_twin(8, 2, 0x5EED),
        _ => unreachable!("labels are fixed above"),
    }
    .map_err(|e| format!("{label}: model construction failed: {e}"))?;
    RTossPruner::new(entry)
        .prune_graph(&mut model.graph)
        .map_err(|e| format!("{label}/{}: pruning failed: {e}", entry.label()))?;
    report.extend(
        rtoss_verify::check_model(&model.graph, &INPUT)
            .diagnostics
            .into_iter()
            .map(|mut d| {
                d.location = format!("{label}/{}: {}", entry.label(), d.location);
                d
            }),
    );
    let engine = SparseModel::compile(&model.graph)
        .map_err(|e| format!("{label}/{}: sparse compile failed: {e}", entry.label()))?;
    report.extend(
        rtoss_verify::check_sparse_model(&engine)
            .diagnostics
            .into_iter()
            .map(|mut d| {
                d.location = format!("{label}/{}: {}", entry.label(), d.location);
                d
            }),
    );
    // Plan checks (RV050/RV051/RV052): schedule, arena, and planned ≡
    // interpreted bit-identity on a seeded probe, serial and tiled.
    let probe = rtoss_tensor::init::uniform(&mut rtoss_tensor::init::rng(0x5EED), &INPUT, 0.0, 1.0);
    report.extend(
        rtoss_verify::check_execution_plan(&engine, &probe, &[1, 4])
            .diagnostics
            .into_iter()
            .map(|mut d| {
                d.location = format!("{label}/{}: {}", entry.label(), d.location);
                d
            }),
    );
    // Kernel checks (RV090/RV091/RV092): pack reconstruction per conv
    // layer, format-choice legality of the compiled plan, and
    // cross-format bit-identity at serial and tiled widths.
    report.extend(
        rtoss_verify::check_model_packs(&engine)
            .diagnostics
            .into_iter()
            .map(|mut d| {
                d.location = format!("{label}/{}: {}", entry.label(), d.location);
                d
            }),
    );
    match engine.plan_summary(&INPUT) {
        Ok(s) => report.extend(
            rtoss_verify::check_format_choices("plan", &s)
                .into_iter()
                .map(|mut d| {
                    d.location = format!("{label}/{}: {}", entry.label(), d.location);
                    d
                }),
        ),
        Err(e) => {
            return Err(format!(
                "{label}/{}: plan summary failed: {e}",
                entry.label()
            ))
        }
    }
    report.extend(
        rtoss_verify::check_format_equivalence(&engine, &probe, &[1, 4])
            .diagnostics
            .into_iter()
            .map(|mut d| {
                d.location = format!("{label}/{}: {}", entry.label(), d.location);
                d
            }),
    );
    Ok(())
}

/// Runs a small two-replica, two-tier fleet against a handful of
/// requests and returns its terminal snapshot for the RV062/RV063
/// conservation checks.
fn fleet_exercise() -> Result<rtoss_fleet::FleetSnapshot, String> {
    use rtoss_fleet::{Fleet, FleetConfig, SloClass, TenantSpec, TierSpec};
    use std::sync::Arc;

    struct Identity;
    impl rtoss_serve::ServeModel for Identity {
        fn run_batch(
            &self,
            batch: &rtoss_tensor::Tensor,
            _exec: &rtoss_tensor::ExecConfig,
        ) -> Result<Vec<rtoss_tensor::Tensor>, String> {
            Ok(vec![batch.clone()])
        }
    }

    let fleet = Fleet::start(
        vec![
            (TierSpec::new("dense", 75.0), Arc::new(Identity) as _),
            (TierSpec::new("3EP", 73.5), Arc::new(Identity) as _),
        ],
        FleetConfig {
            replicas: 2,
            tenants: vec![
                TenantSpec::new("gold", SloClass::Gold, 1e6, 1e6),
                TenantSpec::new("bulk", SloClass::Bulk, 1e6, 1e6),
            ],
            ..FleetConfig::default()
        },
    )
    .map_err(|e| format!("fleet start: {e}"))?;
    let mut tickets = Vec::new();
    for i in 0..24 {
        let tenant = if i % 2 == 0 { "gold" } else { "bulk" };
        let key = format!("{tenant}/stream-{}", i % 4);
        match fleet.submit(
            tenant,
            &key,
            rtoss_tensor::Tensor::zeros(&[1, 1, 4, 4]),
            None,
        ) {
            Ok(t) => tickets.push(t),
            Err(e) => return Err(format!("submit {i}: {e}")),
        }
    }
    for t in tickets {
        t.wait().map_err(|e| format!("wait: {e}"))?;
    }
    Ok(fleet.shutdown())
}

/// Prints the report in the selected format and maps it to an exit
/// code: failure iff any error-severity finding is present.
fn emit(report: &Report, json: bool) -> ExitCode {
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn full_run(json: bool) -> ExitCode {
    let mut report = Report::new();
    for label in ["yolov5s_twin", "retinanet_twin"] {
        for entry in [EntryPattern::Two, EntryPattern::Three] {
            if let Err(e) = check_one(label, entry, &mut report) {
                eprintln!("verify: {e}");
                return ExitCode::from(2);
            }
        }
    }
    // Executor invariants are model-independent: prove the tile dealing
    // for a spread of tile counts and the serving histogram geometry.
    for n_tiles in [0, 1, 3, 8, 33, 128] {
        report.extend(rtoss_verify::check_tile_partition(n_tiles, 8).diagnostics);
    }
    report.extend(rtoss_verify::check_histogram_buckets().diagnostics);
    // Fleet invariants: ring coverage for a spread of fleet sizes, the
    // default degradation controller over the seed tier stack, and
    // ledger/replica conservation on a live micro-fleet exercise.
    for replicas in [1, 2, 4, 8] {
        report.extend(
            rtoss_verify::check_hash_ring(&rtoss_fleet::HashRing::new(replicas, 32), 2000)
                .diagnostics
                .into_iter()
                .map(|mut d| {
                    d.location = format!("ring({replicas}x32): {}", d.location);
                    d
                }),
        );
    }
    for num_tiers in [2, 3] {
        report.extend(
            rtoss_verify::check_tier_controller(
                rtoss_fleet::TierControllerConfig::default(),
                num_tiers,
            )
            .diagnostics
            .into_iter()
            .map(|mut d| {
                d.location = format!("controller({num_tiers} tiers): {}", d.location);
                d
            }),
        );
    }
    match fleet_exercise() {
        Ok(snapshot) => {
            report.extend(rtoss_verify::check_fleet_ledger(&snapshot).diagnostics);
            report.extend(rtoss_verify::check_fleet_replicas(&snapshot).diagnostics);
        }
        Err(e) => {
            eprintln!("verify: fleet exercise failed: {e}");
            return ExitCode::from(2);
        }
    }
    emit(&report, json)
}

/// Reads `path` and runs `check` over its contents, exiting non-zero on
/// any error finding. Shared by the `--trace` and `--prom` modes.
fn file_run(path: &str, json: bool, check: impl FnOnce(&str, &str) -> Report) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("verify: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    emit(&check(path, &text), json)
}

/// Parses a `TelemetrySnapshot` JSON document and runs the RV080–RV082
/// telemetry passes over it (conservation without the ledger
/// cross-check — the bench validates against the live ledger itself).
fn check_telemetry_file(label: &str, text: &str) -> Report {
    let snap: rtoss_fleet::TelemetrySnapshot = match serde_json::from_str(text) {
        Ok(s) => s,
        Err(e) => {
            let mut report = Report::new();
            report.push(rtoss_verify::Diagnostic::error(
                "RV080",
                label.to_string(),
                format!("telemetry snapshot does not parse: {e}"),
            ));
            return report;
        }
    };
    let mut report = rtoss_verify::check_telemetry_windows(&snap);
    report.extend(rtoss_verify::check_telemetry_conservation(&snap, None).diagnostics);
    report.extend(rtoss_verify::check_alert_log(&snap).diagnostics);
    report
}

fn fixture_run(name: &str, json: bool) -> ExitCode {
    let Some(report) = fixtures::run(name) else {
        eprintln!(
            "verify: unknown fixture {name:?}; known: {}",
            fixtures::NAMES.join(", ")
        );
        return ExitCode::from(2);
    };
    emit(&report, json)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        [] => full_run(json),
        ["--fixture", name] => fixture_run(name, json),
        ["--trace", path] => file_run(path, json, rtoss_verify::check_trace_json),
        ["--prom", path] => file_run(path, json, rtoss_verify::check_prometheus),
        ["--telemetry", path] => file_run(path, json, check_telemetry_file),
        ["--flight", path] => file_run(path, json, rtoss_verify::check_flight_dump),
        ["--list-fixtures"] => {
            for name in fixtures::NAMES {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: verify [--json] [--fixture NAME | --trace FILE | --prom FILE | \
                 --telemetry FILE | --flight FILE | --list-fixtures]"
            );
            ExitCode::from(2)
        }
    }
}
