//! A minimal Rust lexer for the hot-path source lints.
//!
//! The RV03x/RV07x lints need to know whether `panic!(` sits in code or
//! inside a string literal, a comment, or a `#[cfg(test)]` module — a
//! line scanner cannot tell. This lexer splits source text into tokens
//! with exact classification of the lexical contexts that matter:
//! line comments, (nested) block comments, string / raw-string /
//! byte-string literals, char literals vs lifetimes, identifiers,
//! numbers, and punctuation.
//!
//! Two guarantees the lints rely on, both pinned by tests:
//!
//! 1. **Round-trip:** concatenating `token.text` over the token stream
//!    reproduces the input byte-for-byte — no source text is ever
//!    dropped or invented, so a lint that walks tokens sees everything
//!    a line scanner would and nothing it should not.
//! 2. **Panic-freedom:** [`tokenize`] never panics, whatever bytes it
//!    is fed (malformed UTF-8 cannot occur — input is `&str` — but
//!    unterminated literals, stray quotes, and lone backslashes are all
//!    fine). Unterminated constructs extend to end of input.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// ...` to end of line (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* ... */`, nesting respected (includes `/** ... */`).
    BlockComment,
    /// String-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime or loop label: `'a`, `'static`, `'_`.
    Lifetime,
    /// Identifier or keyword (including raw identifiers `r#match`).
    Ident,
    /// Numeric literal (integer part only; `1.5` lexes as three
    /// tokens, which the lints never care about).
    Number,
    /// Any other single character.
    Punct,
}

/// One lexed token: classification, exact source text, and the
/// 1-based line its first character sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact slice of the input this token covers.
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Token<'_> {
    /// Whether the token is code (not whitespace or a comment).
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

/// Identifier continuation bytes. Bytes ≥ 0x80 (non-ASCII) are folded
/// into the surrounding identifier rather than split out — the lints
/// only compare against ASCII names, and round-tripping stays exact.
fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

/// Splits `src` into tokens. Infallible; see the module docs for the
/// round-trip and panic-freedom guarantees.
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let start = i;
        let start_line = line;
        let b = bytes[i];
        let kind = if b.is_ascii_whitespace() {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            TokenKind::Whitespace
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            TokenKind::LineComment
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            let mut depth = 1usize;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenKind::BlockComment
        } else if b == b'"' {
            i = scan_string(bytes, i + 1);
            TokenKind::Str
        } else if (b == b'r' || b == b'b') && starts_raw_string(bytes, i) {
            i = scan_raw_string(bytes, i);
            TokenKind::Str
        } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
            i = scan_string(bytes, i + 2);
            TokenKind::Str
        } else if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
            i = scan_char_literal(bytes, i + 2);
            TokenKind::Char
        } else if b == b'r'
            && bytes.get(i + 1) == Some(&b'#')
            && bytes.get(i + 2).copied().is_some_and(is_ident_start)
        {
            // Raw identifier `r#match`.
            i += 3;
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            TokenKind::Ident
        } else if b == b'\'' {
            match classify_quote(bytes, i) {
                QuoteKind::CharLit => {
                    i = scan_char_literal(bytes, i + 1);
                    TokenKind::Char
                }
                QuoteKind::Lifetime => {
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    TokenKind::Lifetime
                }
                QuoteKind::Lone => {
                    i += 1;
                    TokenKind::Punct
                }
            }
        } else if is_ident_start(b) {
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            TokenKind::Ident
        } else if b.is_ascii_digit() {
            // Digits, `_` separators, and alphanumeric suffixes/bases
            // (`0x1f`, `10_000u64`). The `.` of a float is a separate
            // Punct token; no lint cares.
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            TokenKind::Number
        } else {
            // One character of punctuation — a whole char, so a
            // non-ASCII scalar outside the cases above never splits.
            let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
            i += ch_len;
            TokenKind::Punct
        };
        line += bytecount_newlines(&bytes[start..i]);
        toks.push(Token {
            kind,
            text: &src[start..i],
            line: start_line,
        });
    }
    toks
}

fn bytecount_newlines(bytes: &[u8]) -> usize {
    bytes.iter().filter(|&&b| b == b'\n').count()
}

/// Scans past a `"`-terminated string body starting at `i` (the byte
/// after the opening quote), honouring `\` escapes. Returns the index
/// one past the closing quote (or end of input if unterminated).
fn scan_string(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i = (i + 2).min(bytes.len()),
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Whether `r`/`br` at `i` opens a raw (byte) string: `r"`, `r#`×n`"`,
/// `br"`, `br#`×n`"`.
fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if bytes.get(i) == Some(&b'b') {
        if bytes.get(j) != Some(&b'r') {
            return false;
        }
        j += 1;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Scans a raw string starting at the `r`/`b` of its prefix. Returns
/// the index one past the closing `"` + hashes (or end of input).
fn scan_raw_string(bytes: &[u8], mut i: usize) -> usize {
    if bytes.get(i) == Some(&b'b') {
        i += 1;
    }
    i += 1; // the `r`
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // the opening `"`
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Scans a char/byte literal body starting at `i` (the byte after the
/// opening quote). Returns the index one past the closing quote.
fn scan_char_literal(bytes: &[u8], mut i: usize) -> usize {
    if bytes.get(i) == Some(&b'\\') {
        i += 2; // escape + escaped byte (enough for \n, \', \\, \u's `u`)
                // If the "escaped byte" opened a multi-byte scalar (garbage
                // input like `'\é`), finish the scalar so the caller's slice
                // stays on a char boundary.
        while i < bytes.len() && bytes[i] & 0xC0 == 0x80 {
            i += 1;
        }
        // `\u{1F600}`-style escapes: consume to the closing brace.
        if bytes.get(i.saturating_sub(1)) == Some(&b'{') || bytes.get(i) == Some(&b'{') {
            while i < bytes.len() && bytes[i] != b'}' && bytes[i] != b'\'' {
                i += 1;
            }
            if bytes.get(i) == Some(&b'}') {
                i += 1;
            }
        }
    } else if i < bytes.len() {
        i += 1;
        // A multi-byte char: continuation bytes until the quote.
        while i < bytes.len() && bytes[i] >= 0x80 {
            i += 1;
        }
    }
    if bytes.get(i) == Some(&b'\'') {
        i + 1
    } else {
        i.min(bytes.len())
    }
}

enum QuoteKind {
    CharLit,
    Lifetime,
    Lone,
}

/// Disambiguates `'` at `i`: `'x'`/`'\n'` are char literals, `'a` and
/// `'static` are lifetimes, anything else is a lone quote.
fn classify_quote(bytes: &[u8], i: usize) -> QuoteKind {
    match bytes.get(i + 1) {
        None => QuoteKind::Lone,
        Some(b'\\') => QuoteKind::CharLit,
        Some(&c1) => {
            // `'x'` — a quote right after one scalar closes a char
            // literal. Multi-byte scalars: skip continuation bytes.
            let mut j = i + 2;
            while bytes.get(j).copied().is_some_and(|b| b >= 0x80) {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') {
                QuoteKind::CharLit
            } else if is_ident_start(c1) {
                QuoteKind::Lifetime
            } else {
                QuoteKind::Lone
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token<'_>> {
        let toks = tokenize(src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src, "tokens must round-trip the input");
        toks
    }

    #[test]
    fn classifies_basic_code() {
        let toks = roundtrip("fn f() -> u32 { x.unwrap() }\n");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, ["fn", "f", "u32", "x", "unwrap"]);
    }

    #[test]
    fn strings_swallow_panic_text() {
        let toks = roundtrip(r#"let s = "panic!(oops) // not code";"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("panic!"));
        assert!(toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .all(|t| t.text != "panic"));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let toks = roundtrip(r#"let s = "a \" b"; x.unwrap()"#);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"quote " inside"#; y"###;
        let toks = roundtrip(src);
        let s = toks
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("raw string token");
        assert!(s.text.starts_with("r#\""));
        assert!(s.text.ends_with("\"#"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "y"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = roundtrip("a /* outer /* inner */ still comment */ b");
        let kinds: Vec<_> = toks
            .iter()
            .filter(|t| t.is_code())
            .map(|t| t.text)
            .collect();
        assert_eq!(kinds, ["a", "b"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = roundtrip("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let s = ' '; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text)
            .collect();
        assert_eq!(chars, ["'z'", "' '"]);
    }

    #[test]
    fn char_escapes() {
        let toks = roundtrip(r"let nl = '\n'; let q = '\''; let u = '\u{1F600}';");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 3);
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let toks = tokenize("a\nbb\n  ccc");
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("bb"), Some(2));
        assert_eq!(find("ccc"), Some(3));
    }

    #[test]
    fn unterminated_constructs_extend_to_eof_without_panicking() {
        for src in [
            "\"never closed",
            "/* never closed",
            "r#\"never closed",
            "'",
            "b\"",
            "'\\",
        ] {
            let toks = tokenize(src);
            let rebuilt: String = toks.iter().map(|t| t.text).collect();
            assert_eq!(rebuilt, src);
        }
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = roundtrip("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "r#match"));
    }
}
