//! RV070 — happens-before race analysis for compiled execution plans.
//!
//! The RV05x family checks a plan's *metadata* for internal
//! consistency: topological order (RV050), slot-lifetime windows
//! (RV051), and level/alias windows (RV054). What none of them can see
//! is whether the metadata still agrees with the **model** the plan
//! was compiled from, or whether the concrete caller/worker lanes the
//! runner fans a level out into actually order every pair of
//! conflicting arena-slot accesses. RV070 closes both gaps with a real
//! happens-before analysis:
//!
//! 1. **Operand-edge reconstruction.** From the model's dependency
//!    skeleton ([`ModelDeps`], taken straight off the compiled engine)
//!    the checker re-derives the fusion decisions the plan compiler
//!    makes (sole-consumer conv→affine→activation absorption) and from
//!    them the exact operand edges every step *must* carry. A plan
//!    whose `inputs` dropped an edge — the one corruption a
//!    self-consistent summary can hide from RV050/RV054, because the
//!    level rule only constrains edges that are still present — is
//!    caught here by diffing against the model.
//! 2. **Happens-before order over the executed lanes.** The runner's
//!    lane structure ([`rtoss_sparse::LevelSchedule`], produced by the
//!    same dealing code `run_with_pool` executes) induces the HB
//!    order: level barriers order everything across levels, a lane
//!    orders its own steps, and two lanes of one level are unordered.
//!    [`check_plan_hb`] verifies (a) every operand edge is HB-ordered
//!    after its producing write and (b) every pair of conflicting
//!    accesses to one arena slot — write/write, or a write against
//!    another lane's read — is HB-ordered. This subsumes RV054's
//!    window rule at the checked widths: a same-level cross-lane alias
//!    is precisely an unordered conflicting pair.
//! 3. **Shadow-state replay.** [`shadow_replay`] is the in-repo
//!    sanitizer analog: it walks the lanes of each level in a
//!    canonical order, tracking per arena slot which step's value the
//!    slot currently holds plus the level/lane of every access, and
//!    reports the **first unordered write** (and any read of a value
//!    that is no longer — or not yet — in its slot). Unlike the
//!    pairwise check it follows actual value flow, so it also catches
//!    a slot recycled before a still-pending read.
//!
//! The `plan-hb` fixture proves the edge reconstruction fires where
//! RV054 stays silent; the `pool-order` fixture proves the conflict
//! pass and the shadow replay both flag a cross-lane slot collision.

use crate::diag::Diagnostic;
use rtoss_sparse::{PlanSummary, SparseModel};

/// The model-side dependency skeleton RV070 reconstructs plan operand
/// edges from: per-node kinds and input lists, the declared outputs,
/// and the per-node consumer counts driving fusion legality. Captured
/// once via [`ModelDeps::of`] so the analysis functions stay pure data
/// transforms (and fixtures can fabricate models without an engine).
#[derive(Debug, Clone)]
pub struct ModelDeps {
    /// Per-node operation kind (`"input"`, `"conv"`, …), node order.
    pub kinds: Vec<&'static str>,
    /// Per-node input node indices, node order.
    pub inputs: Vec<Vec<usize>>,
    /// Declared output node indices.
    pub outputs: Vec<usize>,
    /// Per-node consumer count (input-list plus output-list
    /// occurrences) — the plan compiler's sole-consumer fusion test.
    pub uses: Vec<usize>,
}

impl ModelDeps {
    /// Snapshots the dependency skeleton of a compiled engine.
    pub fn of(model: &SparseModel) -> Self {
        let (kinds, inputs): (Vec<_>, Vec<_>) = model.node_deps().into_iter().unzip();
        ModelDeps {
            kinds,
            inputs,
            outputs: model.output_nodes().to_vec(),
            uses: model.node_uses().to_vec(),
        }
    }

    /// Sole consumer of node `i`, mirroring the plan compiler: defined
    /// only when exactly one edge consumes `i` and `i` is not a
    /// declared output.
    fn sole_consumer(&self, i: usize) -> Option<usize> {
        if self.uses.get(i) != Some(&1) || self.outputs.contains(&i) {
            return None;
        }
        let mut consumer = None;
        for (j, ins) in self.inputs.iter().enumerate() {
            if ins.contains(&i) {
                consumer = Some(j);
            }
        }
        consumer
    }
}

/// Re-derives, per model node, which plan step produces its value
/// (`None` for the extern input and for nodes no step covers), by
/// replaying the compiler's fusion decisions from the model data and
/// each step's `fused` label. Inconsistencies become diagnostics.
fn node_to_step(
    location: &str,
    deps: &ModelDeps,
    s: &PlanSummary,
    out: &mut Vec<Diagnostic>,
) -> Vec<Option<usize>> {
    let n = deps.kinds.len();
    let mut map: Vec<Option<usize>> = vec![None; n];
    for (si, step) in s.steps.iter().enumerate() {
        if step.node >= n {
            out.push(Diagnostic::error(
                "RV070",
                location,
                format!(
                    "step {si} ({}) claims model node {}, but the model has only {n} nodes",
                    step.name, step.node
                ),
            ));
            continue;
        }
        map[step.node] = Some(si);
        let mut tail = step.node;
        let (wants_affine, wants_act) = match step.fused {
            "none" => (false, false),
            "affine" => (true, false),
            "act" => (false, true),
            "affine+act" => (true, true),
            other => {
                out.push(Diagnostic::error(
                    "RV070",
                    location,
                    format!(
                        "step {si} ({}) has unknown fusion label {other:?}",
                        step.name
                    ),
                ));
                (false, false)
            }
        };
        if wants_affine {
            match deps.sole_consumer(tail) {
                Some(a) if deps.kinds.get(a) == Some(&"channel_affine") => {
                    map[a] = Some(si);
                    tail = a;
                }
                _ => out.push(Diagnostic::error(
                    "RV070",
                    location,
                    format!(
                        "step {si} ({}) claims a fused channel affine, but node {tail} has \
                         no sole-consumer channel-affine in the model",
                        step.name
                    ),
                )),
            }
        }
        if wants_act {
            match deps.sole_consumer(tail) {
                Some(a) if deps.kinds.get(a) == Some(&"activation") => {
                    map[a] = Some(si);
                }
                _ => out.push(Diagnostic::error(
                    "RV070",
                    location,
                    format!(
                        "step {si} ({}) claims a fused activation, but node {tail} has no \
                         sole-consumer activation in the model",
                        step.name
                    ),
                )),
            }
        }
    }
    map
}

/// Where each step executes under one [`rtoss_sparse::LevelSchedule`]:
/// `(level position, lane, position within the lane)`. Lane 0 is the
/// caller; lanes 1.. are pool worker chunks.
fn lane_positions(s: &PlanSummary, width: usize) -> Vec<Option<(usize, usize, usize)>> {
    let sched = s.level_schedule(width);
    let mut at: Vec<Option<(usize, usize, usize)>> = vec![None; s.steps.len()];
    for (li, deal) in sched.levels.iter().enumerate() {
        for (pos, &si) in deal.caller.iter().enumerate() {
            at[si] = Some((li, 0, pos));
        }
        for (ci, chunk) in deal.pooled.iter().enumerate() {
            for (pos, &si) in chunk.iter().enumerate() {
                at[si] = Some((li, ci + 1, pos));
            }
        }
    }
    at
}

/// `a` happens-before `b` under the level/lane structure: a strictly
/// earlier level (barrier), or the same lane of the same level with an
/// earlier position (program order).
fn hb_ordered(a: (usize, usize, usize), b: (usize, usize, usize)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 == b.1 && a.2 < b.2)
}

/// RV070: happens-before race detection for a compiled plan.
///
/// Reconstructs the operand edges the plan must carry from the model's
/// dependency skeleton and diffs them against the summary, then — for
/// every width in `widths` — builds the exact caller/worker lane
/// structure the runner executes and verifies that (a) every operand
/// read is HB-ordered after its producing write and (b) every pair of
/// conflicting accesses to one arena slot is HB-ordered. Two steps
/// conflict when both write one slot, or one writes a slot the other
/// reads. Returns one diagnostic per violation.
pub fn check_plan_hb(
    location: &str,
    deps: &ModelDeps,
    s: &PlanSummary,
    widths: &[usize],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // (1) Operand edges must match the model's data dependencies.
    let map = node_to_step(location, deps, s, &mut out);
    for (si, step) in s.steps.iter().enumerate() {
        let Some(node_inputs) = deps.inputs.get(step.node) else {
            continue; // bad node index already reported
        };
        let expected: Vec<Option<usize>> = node_inputs
            .iter()
            .map(|&j| {
                if deps.kinds.get(j) == Some(&"input") {
                    None
                } else {
                    map.get(j).copied().flatten()
                }
            })
            .collect();
        if expected != step.inputs {
            out.push(Diagnostic::error(
                "RV070",
                location,
                format!(
                    "step {si} ({}) carries operand edges {:?}, but model node {} requires \
                     {expected:?} — a dropped or rewired dependency edge removes the \
                     happens-before order that kept its read race-free",
                    step.name, step.inputs, step.node
                ),
            ));
        }
    }

    // (2) Per width: operand HB order and conflicting-access pairs
    // over the executed lane structure.
    let reads: Vec<Vec<usize>> = s
        .steps
        .iter()
        .map(|step| {
            step.inputs
                .iter()
                .flatten()
                .filter_map(|&p| s.steps.get(p).map(|op| op.out_slot))
                .collect()
        })
        .collect();
    for &width in widths {
        let at = lane_positions(s, width);
        for (si, step) in s.steps.iter().enumerate() {
            for &p in step.inputs.iter().flatten() {
                let (Some(wa), Some(wb)) = (at.get(p).copied().flatten(), at[si]) else {
                    continue; // out-of-range operand is RV050's finding
                };
                if !hb_ordered(wa, wb) {
                    out.push(Diagnostic::error(
                        "RV070",
                        location,
                        format!(
                            "width {width}: step {si} ({}) reads step {p} ({}), but the \
                             write is not happens-before the read (producer at level {} \
                             lane {}, consumer at level {} lane {})",
                            step.name, s.steps[p].name, wa.0, wa.1, wb.0, wb.1
                        ),
                    ));
                }
            }
        }
        let sched = s.level_schedule(width);
        for (li, deal) in sched.levels.iter().enumerate() {
            let mut lanes: Vec<&[usize]> = vec![&deal.caller];
            lanes.extend(deal.pooled.iter().map(|c| c.as_slice()));
            for x in 0..lanes.len() {
                for y in x + 1..lanes.len() {
                    for &a in lanes[x] {
                        for &b in lanes[y] {
                            conflict_pair(location, s, &reads, width, li, x, y, a, b, &mut out);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Reports every conflicting, unordered access pair between steps `a`
/// (lane `x`) and `b` (lane `y`) of level `li` — the lanes run
/// concurrently, so any shared slot with at least one write is a race.
#[allow(clippy::too_many_arguments)]
fn conflict_pair(
    location: &str,
    s: &PlanSummary,
    reads: &[Vec<usize>],
    width: usize,
    li: usize,
    x: usize,
    y: usize,
    a: usize,
    b: usize,
    out: &mut Vec<Diagnostic>,
) {
    let (sa, sb) = (&s.steps[a], &s.steps[b]);
    if sa.out_slot == sb.out_slot {
        out.push(Diagnostic::error(
            "RV070",
            location,
            format!(
                "width {width}: steps {a} ({}) and {b} ({}) both write slot {} from \
                 concurrent lanes {x} and {y} of level {li} — an unordered write/write race",
                sa.name, sb.name, sa.out_slot
            ),
        ));
    }
    for (reader, reader_idx, writer, writer_idx) in [(sa, a, sb, b), (sb, b, sa, a)] {
        if reads[reader_idx].contains(&writer.out_slot) {
            out.push(Diagnostic::error(
                "RV070",
                location,
                format!(
                    "width {width}: step {reader_idx} ({}) reads slot {} while step \
                     {writer_idx} ({}) writes it from a concurrent lane of level {li} — an \
                     unordered read/write race",
                    reader.name, writer.out_slot, writer.name
                ),
            ));
        }
    }
}

/// Shadow-state replay of a plan at one width — the in-repo sanitizer
/// analog. Walks the runner's lanes level by level, tracking per arena
/// slot which step's value it currently holds and the level/lane of
/// every access, and reports the **first unordered write** (a write to
/// a slot already written or read by a concurrent lane of the same
/// level) plus any read that does not observe the value its operand
/// edge promises (a slot recycled too early, or a producer that has
/// not run). Width ≤ 1 replays the serial schedule, where only value
/// flow can fail.
pub fn shadow_replay(location: &str, s: &PlanSummary, width: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n_slots = s.slot_caps.len();
    // Per slot: the step whose value the slot holds, the (level, lane)
    // of that write, and every read's (step, level, lane).
    let mut holder: Vec<Option<usize>> = vec![None; n_slots];
    let mut last_write: Vec<Option<(usize, usize)>> = vec![None; n_slots];
    let mut readers: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); n_slots];

    let lanes_per_level: Vec<Vec<Vec<usize>>> = if width <= 1 {
        vec![vec![(0..s.steps.len()).collect()]]
    } else {
        s.level_schedule(width)
            .levels
            .into_iter()
            .map(|deal| {
                let mut lanes = vec![deal.caller];
                lanes.extend(deal.pooled);
                lanes
            })
            .collect()
    };

    for (li, lanes) in lanes_per_level.iter().enumerate() {
        for (lane, steps_of_lane) in lanes.iter().enumerate() {
            for &si in steps_of_lane {
                let step = &s.steps[si];
                for &p in step.inputs.iter().flatten() {
                    let Some(slot) = s.steps.get(p).map(|op| op.out_slot) else {
                        continue; // out-of-range operand is RV050's finding
                    };
                    if slot >= n_slots {
                        continue; // out-of-range slot is RV051's finding
                    }
                    if holder[slot] != Some(p) {
                        out.push(Diagnostic::error(
                            "RV070",
                            location,
                            format!(
                                "shadow width {width}: step {si} ({}) reads slot {slot} \
                                 expecting step {p}'s value, but the slot holds {} — the \
                                 value was recycled or never produced",
                                step.name,
                                match holder[slot] {
                                    Some(w) => format!("step {w}'s"),
                                    None => "no value".to_string(),
                                }
                            ),
                        ));
                    }
                    if let Some((wl, wk)) = last_write[slot] {
                        if wl == li && wk != lane {
                            out.push(Diagnostic::error(
                                "RV070",
                                location,
                                format!(
                                    "shadow width {width}: step {si} ({}) reads slot {slot} \
                                     concurrently with lane {wk}'s write in level {li}",
                                    step.name
                                ),
                            ));
                        }
                    }
                    readers[slot].push((si, li, lane));
                }
                let slot = step.out_slot;
                if slot >= n_slots {
                    continue;
                }
                if let Some((wl, wk)) = last_write[slot] {
                    if wl == li && wk != lane {
                        out.push(Diagnostic::error(
                            "RV070",
                            location,
                            format!(
                                "shadow width {width}: first unordered write — step {si} \
                                 ({}) writes slot {slot} concurrently with lane {wk}'s \
                                 write in level {li}",
                                step.name
                            ),
                        ));
                        return out;
                    }
                }
                if let Some(&(r, _, rk)) = readers[slot]
                    .iter()
                    .find(|&&(_, rl, rk)| rl == li && rk != lane)
                {
                    out.push(Diagnostic::error(
                        "RV070",
                        location,
                        format!(
                            "shadow width {width}: first unordered write — step {si} ({}) \
                             writes slot {slot} while step {r} reads it from concurrent \
                             lane {rk} of level {li}",
                            step.name
                        ),
                    ));
                    return out;
                }
                holder[slot] = Some(si);
                last_write[slot] = Some((li, lane));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::{EntryPattern, Pruner, RTossPruner};
    use rtoss_tensor::init;

    fn engine() -> SparseModel {
        let mut m = rtoss_models::yolov5s_twin(4, 2, 0xBEEF).expect("twin builds");
        RTossPruner::new(EntryPattern::Three)
            .prune_graph(&mut m.graph)
            .expect("prunes");
        SparseModel::compile(&m.graph).expect("compiles")
    }

    fn clean_summary(engine: &SparseModel) -> PlanSummary {
        engine.plan_summary(&[1, 3, 32, 32]).expect("plans")
    }

    #[test]
    fn clean_plan_is_race_free_at_all_widths() {
        let engine = engine();
        let s = clean_summary(&engine);
        let deps = ModelDeps::of(&engine);
        let diags = check_plan_hb("clean", &deps, &s, &[1, 2, 4, 8]);
        assert!(diags.is_empty(), "{diags:?}");
        for w in [1, 2, 4, 8] {
            let diags = shadow_replay("clean", &s, w);
            assert!(diags.is_empty(), "width {w}: {diags:?}");
        }
    }

    #[test]
    fn planned_forward_still_works_after_analysis() {
        // The accessors used by ModelDeps must not disturb the engine.
        let engine = engine();
        let probe = init::uniform(&mut init::rng(11), &[1, 3, 32, 32], 0.0, 1.0);
        let _ = ModelDeps::of(&engine);
        assert!(engine.forward(&probe).is_ok());
    }

    #[test]
    fn dropped_operand_edge_fires_rv070_where_rv054_is_silent() {
        let engine = engine();
        let mut s = clean_summary(&engine);
        let deps = ModelDeps::of(&engine);
        // Find a step with a step-to-step edge and erase it, relevelling
        // the consumer so RV054's window rule still holds.
        let i = s
            .steps
            .iter()
            .position(|st| st.inputs.iter().any(|src| src.is_some()))
            .expect("twin has step-to-step deps");
        s.steps[i].inputs = vec![None];
        s.steps[i].level = 0;
        assert!(
            !crate::plan::check_plan_levels("corrupt", &s)
                .iter()
                .any(|d| d.code == "RV054"),
            "RV054 must not see a dropped edge"
        );
        let diags = check_plan_hb("corrupt", &deps, &s, &[4]);
        assert!(diags.iter().any(|d| d.code == "RV070"), "{diags:?}");
    }

    #[test]
    fn cross_lane_slot_collision_fires_pairwise_and_shadow() {
        let engine = engine();
        let mut s = clean_summary(&engine);
        let deps = ModelDeps::of(&engine);
        // Find two steps sharing a level (fanned into different lanes
        // at width 2+) and alias their output slots.
        let groups = s.level_groups();
        let level = groups
            .iter()
            .find(|g| {
                g.len() >= 2
                    && g.iter()
                        .all(|&si| s.steps[si].inputs.iter().all(|i| i.is_some()))
            })
            .expect("twin has a parallel level");
        let (a, b) = (level[0], level[1]);
        s.steps[b].out_slot = s.steps[a].out_slot;
        let diags = check_plan_hb("corrupt", &deps, &s, &[4]);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "RV070" && d.message.contains("write/write")),
            "{diags:?}"
        );
        let shadow = shadow_replay("corrupt", &s, 4);
        assert!(
            shadow
                .iter()
                .any(|d| d.message.contains("first unordered write")),
            "{shadow:?}"
        );
    }

    #[test]
    fn stale_read_is_reported_by_the_shadow_interpreter() {
        let engine = engine();
        let mut s = clean_summary(&engine);
        // Recycle a producer's slot too early: a step scheduled between
        // the producer and one of its readers takes over the slot, so
        // the reader no longer observes the value its edge promises.
        let (_reader, producer) = s
            .steps
            .iter()
            .enumerate()
            .find_map(|(i, st)| {
                st.inputs
                    .iter()
                    .flatten()
                    .find(|&&p| i > p + 1)
                    .map(|&p| (i, p))
            })
            .expect("twin has a dep spanning more than one step");
        let thief = producer + 1; // strictly between producer and reader
        s.steps[thief].out_slot = s.steps[producer].out_slot;
        let shadow = shadow_replay("corrupt", &s, 1);
        assert!(
            shadow
                .iter()
                .any(|d| d.message.contains("recycled or never produced")),
            "{shadow:?}"
        );
    }

    #[test]
    fn lane_structure_matches_runner_semantics() {
        let engine = engine();
        let s = clean_summary(&engine);
        // Width 1: everything on the caller, nothing pooled.
        let serial = s.level_schedule(1);
        assert!(serial.levels.iter().all(|d| d.pooled.is_empty()));
        // Any width: every step appears in exactly one lane.
        for w in [2, 3, 4] {
            let sched = s.level_schedule(w);
            let mut seen = vec![0usize; s.steps.len()];
            for deal in &sched.levels {
                for &si in deal.caller.iter().chain(deal.pooled.iter().flatten()) {
                    seen[si] += 1;
                }
                // No worker chunk may contain an extern-reading step.
                for chunk in &deal.pooled {
                    for &si in chunk {
                        assert!(s.steps[si].inputs.iter().all(|i| i.is_some()));
                    }
                }
                assert!(
                    deal.pooled.len() < w.max(1),
                    "at most width-1 worker chunks"
                );
            }
            assert!(seen.iter().all(|&c| c == 1), "width {w}: {seen:?}");
        }
    }
}
