//! Property test: any trace a well-behaved recorder can produce
//! exports to Chrome/Perfetto JSON that parses and passes the RV04x
//! structural checks.
//!
//! The generator simulates the real recorder: a monotone clock per
//! thread, a stack of open sync spans recorded at close (so buffer
//! order is close order), plus async intervals and instants. Whatever
//! operation sequence proptest invents, the exported JSON must
//! round-trip through `check_trace_json` with zero findings — the
//! exporter may not be able to corrupt a well-formed trace.

use proptest::prelude::*;
use rtoss_obs::{EventKind, Trace, TraceEvent};

/// Replays `(opcode, delta)` operations the way the runtime records
/// them: every event lands in the buffer at its *close* time, the
/// clock only moves forward, and sync spans nest because they close
/// LIFO. Opcodes: 0–1 open a span, 2–3 close the innermost one, 4 is
/// an instant, 5 an async interval reaching `delta * 7` ticks back.
fn record_thread(tid: u64, ops: &[(u8, u64)]) -> Vec<TraceEvent> {
    let mut clock = 0u64;
    let mut open: Vec<(u64, usize)> = Vec::new();
    let mut events = Vec::new();
    let mut serial = 0usize;
    let mut next_async = 1u64;
    let close = |clock: u64, (ts, id): (u64, usize)| TraceEvent {
        name: format!("span-{id}").into(),
        kind: EventKind::Span,
        tid,
        ts_ns: ts,
        dur_ns: clock - ts,
        args: Vec::new(),
    };
    for &(opcode, delta) in ops {
        clock += delta;
        match opcode {
            0 | 1 => {
                open.push((clock, serial));
                serial += 1;
            }
            2 | 3 => {
                if let Some(top) = open.pop() {
                    events.push(close(clock, top));
                }
            }
            4 => events.push(TraceEvent {
                name: "marker".into(),
                kind: EventKind::Instant,
                tid,
                ts_ns: clock,
                dur_ns: 0,
                args: Vec::new(),
            }),
            _ => {
                let ts = clock.saturating_sub(delta * 7);
                events.push(TraceEvent {
                    name: "wait".into(),
                    kind: EventKind::Async {
                        id: tid * 1_000_000 + next_async,
                    },
                    tid,
                    ts_ns: ts,
                    dur_ns: clock - ts,
                    args: Vec::new(),
                });
                next_async += 1;
            }
        }
    }
    // Shutdown closes whatever is still open, innermost first.
    while let Some(top) = open.pop() {
        clock += 1;
        events.push(close(clock, top));
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recorder_shaped_traces_export_to_valid_perfetto_json(
        threads in collection::vec(
            collection::vec((0u8..6, 1u64..1_000), 0..60),
            1..4,
        )
    ) {
        let mut trace = Trace::default();
        for (i, ops) in threads.iter().enumerate() {
            trace.events.extend(record_thread(i as u64 + 1, ops));
        }

        // The in-memory trace is well-formed by construction.
        let direct = rtoss_verify::check_trace("generated", &trace);
        prop_assert!(!direct.has_errors(), "{}", direct.render());

        // And the Chrome export preserves that: it parses as JSON and
        // reconstructs to a trace with identical structure.
        let json = trace.to_chrome_json();
        let parsed = serde_json::from_str::<serde::Value>(&json);
        prop_assert!(parsed.is_ok(), "export is not JSON: {:?}", parsed.err());
        let exported = rtoss_verify::check_trace_json("exported", &json);
        prop_assert!(!exported.has_errors(), "{}", exported.render());
    }
}
