//! Property tests for the verify lexer: on ANY input — valid Rust or
//! arbitrary unicode garbage — `tokenize` must not panic, must cover
//! the input losslessly (token texts concatenate back to the source),
//! and must report 1-based, non-decreasing line numbers. The RV07x
//! lints trust these properties: a lexer that drops or duplicates
//! bytes could hide a `panic!(` or invent a lock site.

use proptest::prelude::*;
use rtoss_verify::lexer::tokenize;

/// Arbitrary unicode strings: random scalar values (surrogate-range
/// candidates are discarded by `char::from_u32`), so every UTF-8
/// length and every char class the lexer branches on gets exercised.
fn unicode_soup() -> impl Strategy<Value = String> {
    collection::vec(0u32..0x11_0000, 0usize..64)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

/// Short printable-ASCII runs — dense in the punctuation and quote
/// bytes the lexer treats specially.
fn ascii_soup() -> impl Strategy<Value = String> {
    collection::vec(0x20u8..0x7f, 0usize..13)
        .prop_map(|bs| String::from_utf8(bs).expect("printable ASCII is UTF-8"))
}

fn assert_round_trip(src: &str) {
    let toks = tokenize(src);
    let rebuilt: String = toks.iter().map(|t| t.text).collect();
    prop_assert_eq!(rebuilt, src);
    let mut last = 1usize;
    for t in &toks {
        prop_assert!(!t.text.is_empty(), "empty token would loop forever");
        prop_assert!(t.line >= last, "line numbers must not go backwards");
        last = t.line;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_unicode_round_trips_without_panicking(src in unicode_soup()) {
        assert_round_trip(&src);
    }

    /// Rust-shaped fragment soup: real syntax — raw strings, char
    /// literals, lifetimes, nested comments, panic text inside strings
    /// — glued together in arbitrary order, including truncations that
    /// leave literals unterminated at EOF.
    #[test]
    fn rust_fragment_soup_round_trips(parts in collection::vec(
        prop_oneof![
            Just("fn f() {".to_string()),
            Just("}\n".to_string()),
            Just("\"panic!(\"".to_string()),
            Just("// panic!( in a comment\n".to_string()),
            Just("/* unwrap() /* nested */ */".to_string()),
            Just("r#\"raw .expect(\"#".to_string()),
            Just("b\"bytes\\\"\"".to_string()),
            Just("'\\''".to_string()),
            Just("'\\u{1F600}'".to_string()),
            Just("'é'".to_string()),
            Just("&'a str".to_string()),
            Just("r#match".to_string()),
            Just("x.lock().unwrap_or_else(|e| e.into_inner());".to_string()),
            Just("0x1f_u64 + 10_000".to_string()),
            Just("'\\".to_string()),
            Just("\"unterminated".to_string()),
            ascii_soup().boxed(),
            unicode_soup().boxed(),
        ], 0usize..24)) {
        assert_round_trip(&parts.concat());
    }
}
