//! Property-based tests of layer/graph invariants.

use proptest::prelude::*;
use rtoss_nn::layers::{Activation, ActivationKind, Conv2d};
use rtoss_nn::{Graph, Layer};
use rtoss_tensor::{init, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn graph_forward_is_deterministic(seed in 0u64..500) {
        let build = || {
            let mut g = Graph::new();
            let x = g.add_input("x");
            let c1 = g
                .add_layer("c1", Box::new(Conv2d::new(2, 4, 3, 1, 1, seed)), x)
                .expect("valid");
            let a = g
                .add_layer("a", Box::new(Activation::new(ActivationKind::Silu)), c1)
                .expect("valid");
            g.set_outputs(vec![a]).expect("valid");
            g
        };
        let input = init::uniform(&mut init::rng(seed + 1), &[1, 2, 6, 6], -1.0, 1.0);
        let y1 = build().forward(&input).expect("runs");
        let y2 = build().forward(&input).expect("runs");
        prop_assert_eq!(y1[0].as_slice(), y2[0].as_slice());
    }

    #[test]
    fn relu_output_nonnegative_and_idempotent(seed in 0u64..200) {
        let mut relu = Activation::new(ActivationKind::Relu);
        let x = init::uniform(&mut init::rng(seed), &[3, 7], -5.0, 5.0);
        let y = relu.forward(&x).expect("runs");
        prop_assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        let yy = relu.forward(&y).expect("runs");
        prop_assert_eq!(y.as_slice(), yy.as_slice());
    }

    #[test]
    fn conv_gradients_vanish_for_zero_upstream(seed in 0u64..200) {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, seed);
        let x = init::uniform(&mut init::rng(seed + 7), &[1, 2, 5, 5], -1.0, 1.0);
        let y = conv.forward(&x).expect("runs");
        let gx = conv.backward(&Tensor::zeros(y.shape())).expect("runs");
        prop_assert!(gx.as_slice().iter().all(|&g| g == 0.0));
        prop_assert_eq!(conv.weight().grad.l2_norm(), 0.0);
    }

    #[test]
    fn masked_conv_output_independent_of_masked_weights(seed in 0u64..100) {
        // Changing a masked weight's pre-mask value must not change the
        // layer output (set_mask zeroes it).
        let mut c1 = Conv2d::new(1, 1, 3, 1, 1, seed);
        let mut mask = Tensor::zeros(&[1, 1, 3, 3]);
        mask.set(&[0, 0, 0, 0], 1.0);
        mask.set(&[0, 0, 1, 1], 1.0);
        c1.weight_mut().set_mask(mask).expect("shape matches");
        let x = init::uniform(&mut init::rng(seed + 3), &[1, 1, 4, 4], -1.0, 1.0);
        let y1 = c1.forward(&x).expect("runs");
        // Poke a masked slot, re-apply the mask (as the optimizer does).
        c1.weight_mut().value.set(&[0, 0, 2, 2], 123.0);
        c1.weight_mut().apply_mask();
        let y2 = c1.forward(&x).expect("runs");
        prop_assert_eq!(y1.as_slice(), y2.as_slice());
    }
}
