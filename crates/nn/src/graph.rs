use crate::layers::{BatchNorm2d, Conv2d};
use crate::{Layer, NnError, Param};
use rtoss_tensor::{Tensor, TensorError};

/// Identifier of a node inside a [`Graph`].
pub type NodeId = usize;

/// The operation a graph node performs.
#[derive(Debug)]
#[non_exhaustive]
pub enum NodeOp {
    /// The graph's (single) external input.
    Input,
    /// A single-input [`Layer`].
    Layer(Box<dyn Layer + Send>),
    /// Elementwise residual addition of exactly two inputs.
    Add,
    /// Channel-dimension concatenation of two or more inputs.
    Concat,
}

/// A node: an operation plus the ids of its inputs.
#[derive(Debug)]
pub struct Node {
    /// This node's id (its index in the graph).
    pub id: NodeId,
    /// Human-readable name (e.g. `"backbone.c3_2.cv1"`).
    pub name: String,
    /// The operation.
    pub op: NodeOp,
    /// Ids of input nodes, in order.
    pub inputs: Vec<NodeId>,
}

/// An explicit computational graph of layers.
///
/// The R-TOSS paper recovers this structure "using the gradients obtained
/// from backpropagation" because PyTorch's graph is implicit; here it is
/// first-class, so Algorithm 1's DFS runs over [`Graph::parents`] /
/// [`Graph::children`] directly (see DESIGN.md §4).
///
/// Nodes must be added in topological order (every input id must already
/// exist), which the builder methods enforce.
///
/// # Example
///
/// ```
/// use rtoss_nn::{Graph, layers::Conv2d};
/// use rtoss_tensor::Tensor;
///
/// # fn main() -> Result<(), rtoss_nn::NnError> {
/// let mut g = Graph::new();
/// let x = g.add_input("image");
/// let c = g.add_layer("conv1", Box::new(Conv2d::new(3, 8, 3, 1, 1, 0)), x)?;
/// g.set_outputs(vec![c])?;
/// let y = g.forward(&Tensor::zeros(&[1, 3, 8, 8]))?;
/// assert_eq!(y[0].shape(), &[1, 8, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
    /// Cached forward activations per node (needed by Add/Concat backward
    /// bookkeeping and exposed for inspection in tests).
    activations: Vec<Option<Tensor>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, name: &str, op: NodeOp, inputs: Vec<NodeId>) -> Result<NodeId, NnError> {
        for &i in &inputs {
            if i >= self.nodes.len() {
                return Err(NnError::Graph {
                    msg: format!("node {name:?} references unknown input {i}"),
                });
            }
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            name: name.to_string(),
            op,
            inputs,
        });
        self.activations.push(None);
        Ok(id)
    }

    /// Adds the external input node.
    pub fn add_input(&mut self, name: &str) -> NodeId {
        self.push(name, NodeOp::Input, vec![])
            .expect("input node has no inputs")
    }

    /// Adds a single-input layer node.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Graph`] if `input` does not exist.
    pub fn add_layer(
        &mut self,
        name: &str,
        layer: Box<dyn Layer + Send>,
        input: NodeId,
    ) -> Result<NodeId, NnError> {
        self.push(name, NodeOp::Layer(layer), vec![input])
    }

    /// Adds a residual addition node.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Graph`] if either input does not exist.
    pub fn add_add(&mut self, name: &str, a: NodeId, b: NodeId) -> Result<NodeId, NnError> {
        self.push(name, NodeOp::Add, vec![a, b])
    }

    /// Adds a channel-concatenation node.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Graph`] if fewer than two inputs are given or
    /// any input does not exist.
    pub fn add_concat(&mut self, name: &str, inputs: Vec<NodeId>) -> Result<NodeId, NnError> {
        if inputs.len() < 2 {
            return Err(NnError::Graph {
                msg: format!("concat {name:?} needs >= 2 inputs, got {}", inputs.len()),
            });
        }
        self.push(name, NodeOp::Concat, inputs)
    }

    /// Declares the graph's output nodes (e.g. one per detection scale).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Graph`] if empty or any id does not exist.
    pub fn set_outputs(&mut self, outputs: Vec<NodeId>) -> Result<(), NnError> {
        if outputs.is_empty() {
            return Err(NnError::Graph {
                msg: "at least one output required".into(),
            });
        }
        for &o in &outputs {
            if o >= self.nodes.len() {
                return Err(NnError::Graph {
                    msg: format!("unknown output node {o}"),
                });
            }
        }
        self.outputs = outputs;
        Ok(())
    }

    /// The declared output node ids.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All nodes, in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Direct predecessors of a node.
    pub fn parents(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id].inputs
    }

    /// Direct successors of a node (computed on demand).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all convolution nodes, in topological order.
    pub fn conv_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| matches!(&n.op, NodeOp::Layer(l) if l.as_conv2d().is_some()))
            .map(|n| n.id)
            .collect()
    }

    /// The convolution layer at `id`, if that node is a conv.
    pub fn conv(&self, id: NodeId) -> Option<&Conv2d> {
        match &self.nodes[id].op {
            NodeOp::Layer(l) => l.as_conv2d(),
            _ => None,
        }
    }

    /// Mutable convolution layer at `id`, if that node is a conv.
    pub fn conv_mut(&mut self, id: NodeId) -> Option<&mut Conv2d> {
        match &mut self.nodes[id].op {
            NodeOp::Layer(l) => l.as_conv2d_mut(),
            _ => None,
        }
    }

    /// The batch-norm layer at `id`, if that node is a batch-norm.
    pub fn batchnorm(&self, id: NodeId) -> Option<&BatchNorm2d> {
        match &self.nodes[id].op {
            NodeOp::Layer(l) => l.as_batchnorm(),
            _ => None,
        }
    }

    /// Mutable batch-norm layer at `id`.
    pub fn batchnorm_mut(&mut self, id: NodeId) -> Option<&mut BatchNorm2d> {
        match &mut self.nodes[id].op {
            NodeOp::Layer(l) => l.as_batchnorm_mut(),
            _ => None,
        }
    }

    /// All trainable parameters of all layers, in topological order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.nodes
            .iter_mut()
            .flat_map(|n| match &mut n.op {
                NodeOp::Layer(l) => l.params_mut(),
                _ => Vec::new(),
            })
            .collect()
    }

    /// Total number of scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.numel()).sum()
    }

    /// Switches every layer between training and evaluation mode.
    pub fn set_training(&mut self, training: bool) {
        for n in &mut self.nodes {
            if let NodeOp::Layer(l) = &mut n.op {
                l.set_training(training);
            }
        }
    }

    /// Drops all cached activations (graph- and layer-level).
    pub fn clear_cache(&mut self) {
        for a in &mut self.activations {
            *a = None;
        }
        for n in &mut self.nodes {
            if let NodeOp::Layer(l) = &mut n.op {
                l.clear_cache();
            }
        }
    }

    /// Statically infers every node's output shape for a given input
    /// shape, without running any layer.
    ///
    /// Uses the same geometry rules the executors enforce at runtime
    /// (conv/pool extent via [`rtoss_tensor::ops::out_extent`], Add shape
    /// equality, Concat channel summation), so a graph that passes here
    /// cannot fail shape validation during [`Graph::forward`]. Returns
    /// one shape per node, indexed by [`NodeId`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Graph`] naming the offending node if any layer
    /// rejects its inferred input shape.
    pub fn infer_shapes(&self, input_shape: &[usize]) -> Result<Vec<Vec<usize>>, NnError> {
        let fail = |node: &Node, msg: String| NnError::Graph {
            msg: format!(
                "shape inference at node {} ({:?}): {msg}",
                node.id, node.name
            ),
        };
        let spatial =
            |node: &Node, s: &[usize], k: usize, stride: usize, pad: usize, what: &str| {
                if s.len() != 4 {
                    return Err(fail(
                        node,
                        format!("{what} expects rank-4 input, got {s:?}"),
                    ));
                }
                let oh = rtoss_tensor::ops::out_extent(s[2], k, stride, pad);
                let ow = rtoss_tensor::ops::out_extent(s[3], k, stride, pad);
                match (oh, ow) {
                    (Some(oh), Some(ow)) => Ok((oh, ow)),
                    _ => Err(fail(
                        node,
                        format!(
                            "{what} kernel {k} (stride {stride}, pad {pad}) does not fit {s:?}"
                        ),
                    )),
                }
            };
        let mut shapes: Vec<Vec<usize>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let out = match &node.op {
                NodeOp::Input => input_shape.to_vec(),
                NodeOp::Layer(l) => {
                    let s = &shapes[node.inputs[0]];
                    if let Some(c) = l.as_conv2d() {
                        if s.len() != 4 || s[1] != c.in_channels() {
                            return Err(fail(
                                node,
                                format!(
                                    "conv expects {} input channels, got {s:?}",
                                    c.in_channels()
                                ),
                            ));
                        }
                        let (oh, ow) =
                            spatial(node, s, c.kernel_size(), c.stride(), c.padding(), "conv")?;
                        vec![s[0], c.out_channels(), oh, ow]
                    } else if let Some(b) = l.as_batchnorm() {
                        if s.len() != 4 || s[1] != b.channels() {
                            return Err(fail(
                                node,
                                format!("batchnorm expects {} channels, got {s:?}", b.channels()),
                            ));
                        }
                        s.clone()
                    } else if let Some(p) = l.as_maxpool() {
                        let (oh, ow) =
                            spatial(node, s, p.kernel_size(), p.stride(), p.padding(), "maxpool")?;
                        vec![s[0], s[1], oh, ow]
                    } else if l.as_upsample().is_some() {
                        if s.len() != 4 {
                            return Err(fail(node, format!("upsample expects rank-4, got {s:?}")));
                        }
                        vec![s[0], s[1], s[2] * 2, s[3] * 2]
                    } else if let Some(lin) = l.as_linear() {
                        if s.len() != 2 || s[1] != lin.in_features() {
                            return Err(fail(
                                node,
                                format!("linear expects (N, {}), got {s:?}", lin.in_features()),
                            ));
                        }
                        vec![s[0], lin.out_features()]
                    } else {
                        // Pointwise layers (activations) preserve shape.
                        s.clone()
                    }
                }
                NodeOp::Add => {
                    let (a, b) = (&shapes[node.inputs[0]], &shapes[node.inputs[1]]);
                    if a != b {
                        return Err(fail(
                            node,
                            format!("add of mismatched shapes {a:?} vs {b:?}"),
                        ));
                    }
                    a.clone()
                }
                NodeOp::Concat => {
                    let first = &shapes[node.inputs[0]];
                    if first.len() != 4 {
                        return Err(fail(node, format!("concat expects rank-4, got {first:?}")));
                    }
                    let mut total_c = 0;
                    for &j in &node.inputs {
                        let s = &shapes[j];
                        if s.len() != 4 || s[0] != first[0] || s[2] != first[2] || s[3] != first[3]
                        {
                            return Err(fail(
                                node,
                                format!("concat of incompatible shapes {first:?} vs {s:?}"),
                            ));
                        }
                        total_c += s[1];
                    }
                    vec![first[0], total_c, first[2], first[3]]
                }
            };
            shapes.push(out);
        }
        Ok(shapes)
    }

    /// Runs the graph on `input`, returning the declared outputs in order.
    ///
    /// # Errors
    ///
    /// Returns an error if no outputs are declared, the graph has no
    /// input node, or any layer rejects its input shape.
    pub fn forward(&mut self, input: &Tensor) -> Result<Vec<Tensor>, NnError> {
        if self.outputs.is_empty() {
            return Err(NnError::Graph {
                msg: "no outputs declared; call set_outputs first".into(),
            });
        }
        for i in 0..self.nodes.len() {
            let inputs = self.nodes[i].inputs.clone();
            let out = match &mut self.nodes[i].op {
                NodeOp::Input => input.clone(),
                NodeOp::Layer(l) => {
                    let x = self.activations[inputs[0]]
                        .as_ref()
                        .ok_or_else(|| NnError::Graph {
                            msg: format!("node {i} ran before its input {}", inputs[0]),
                        })?;
                    l.forward(x)?
                }
                NodeOp::Add => {
                    let a = self.activations[inputs[0]]
                        .as_ref()
                        .ok_or_else(|| NnError::Graph {
                            msg: format!("add node {i}: missing input activation"),
                        })?;
                    let b = self.activations[inputs[1]]
                        .as_ref()
                        .ok_or_else(|| NnError::Graph {
                            msg: format!("add node {i}: missing input activation"),
                        })?;
                    a.add(b)?
                }
                NodeOp::Concat => concat_channels(
                    &inputs
                        .iter()
                        .map(|&j| {
                            self.activations[j].as_ref().ok_or_else(|| NnError::Graph {
                                msg: format!("concat node {i}: missing input activation"),
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                )?,
            };
            self.activations[i] = Some(out);
        }
        Ok(self
            .outputs
            .iter()
            .map(|&o| {
                self.activations[o]
                    .clone()
                    .expect("output computed in topological sweep")
            })
            .collect())
    }

    /// Back-propagates one gradient per declared output, accumulating
    /// parameter gradients. Must follow a [`Graph::forward`] call.
    ///
    /// # Errors
    ///
    /// Returns an error if the gradient count or shapes do not match the
    /// forward outputs.
    pub fn backward(&mut self, output_grads: &[Tensor]) -> Result<(), NnError> {
        if output_grads.len() != self.outputs.len() {
            return Err(NnError::Graph {
                msg: format!(
                    "got {} output grads for {} outputs",
                    output_grads.len(),
                    self.outputs.len()
                ),
            });
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        for (&o, g) in self.outputs.iter().zip(output_grads) {
            accumulate(&mut grads[o], g)?;
        }
        for i in (0..self.nodes.len()).rev() {
            let Some(g) = grads[i].take() else { continue };
            let inputs = self.nodes[i].inputs.clone();
            match &mut self.nodes[i].op {
                NodeOp::Input => {}
                NodeOp::Layer(l) => {
                    let gin = l.backward(&g)?;
                    accumulate(&mut grads[inputs[0]], &gin)?;
                }
                NodeOp::Add => {
                    accumulate(&mut grads[inputs[0]], &g)?;
                    accumulate(&mut grads[inputs[1]], &g)?;
                }
                NodeOp::Concat => {
                    let channel_counts: Vec<usize> = inputs
                        .iter()
                        .map(|&j| {
                            self.activations[j]
                                .as_ref()
                                .map(|t| t.shape()[1])
                                .ok_or_else(|| NnError::Graph {
                                    msg: "concat backward before forward".into(),
                                })
                        })
                        .collect::<Result<_, _>>()?;
                    let parts = split_channels(&g, &channel_counts)?;
                    for (&j, part) in inputs.iter().zip(parts.iter()) {
                        accumulate(&mut grads[j], part)?;
                    }
                }
            }
        }
        Ok(())
    }
}

fn accumulate(slot: &mut Option<Tensor>, g: &Tensor) -> Result<(), TensorError> {
    match slot {
        Some(t) => t.add_scaled_in_place(g, 1.0),
        None => {
            *slot = Some(g.clone());
            Ok(())
        }
    }
}

/// Concatenates `(N, Ci, H, W)` tensors along the channel dimension.
fn concat_channels(xs: &[&Tensor]) -> Result<Tensor, NnError> {
    let first = xs[0];
    if first.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: first.rank(),
            op: "concat_channels",
        }
        .into());
    }
    let (n, h, w) = (first.shape()[0], first.shape()[2], first.shape()[3]);
    let mut total_c = 0;
    for x in xs {
        if x.shape()[0] != n || x.shape()[2] != h || x.shape()[3] != w {
            return Err(TensorError::ShapeMismatch {
                left: first.shape().to_vec(),
                right: x.shape().to_vec(),
                op: "concat_channels",
            }
            .into());
        }
        total_c += x.shape()[1];
    }
    let plane = h * w;
    let mut out = vec![0.0f32; n * total_c * plane];
    for ni in 0..n {
        let mut c_off = 0;
        for x in xs {
            let c = x.shape()[1];
            let src = &x.as_slice()[ni * c * plane..(ni + 1) * c * plane];
            let dst_start = (ni * total_c + c_off) * plane;
            out[dst_start..dst_start + c * plane].copy_from_slice(src);
            c_off += c;
        }
    }
    Ok(Tensor::from_vec(out, &[n, total_c, h, w])?)
}

/// Splits a `(N, ΣCi, H, W)` gradient back into per-input channel chunks.
fn split_channels(g: &Tensor, channel_counts: &[usize]) -> Result<Vec<Tensor>, NnError> {
    let (n, total_c, h, w) = (g.shape()[0], g.shape()[1], g.shape()[2], g.shape()[3]);
    let sum: usize = channel_counts.iter().sum();
    if sum != total_c {
        return Err(NnError::Graph {
            msg: format!("split_channels: {sum} != {total_c}"),
        });
    }
    let plane = h * w;
    let gd = g.as_slice();
    let mut parts = Vec::with_capacity(channel_counts.len());
    let mut c_off = 0;
    for &c in channel_counts {
        let mut buf = vec![0.0f32; n * c * plane];
        for ni in 0..n {
            let src_start = (ni * total_c + c_off) * plane;
            buf[ni * c * plane..(ni + 1) * c * plane]
                .copy_from_slice(&gd[src_start..src_start + c * plane]);
        }
        parts.push(Tensor::from_vec(buf, &[n, c, h, w])?);
        c_off += c;
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, ActivationKind};
    use rtoss_tensor::init;

    fn conv(i: usize, o: usize, k: usize, seed: u64) -> Box<dyn Layer + Send> {
        Box::new(Conv2d::new(i, o, k, 1, k / 2, seed))
    }

    #[test]
    fn linear_chain_forward_backward() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c1 = g.add_layer("c1", conv(1, 4, 3, 1), x).unwrap();
        let a1 = g
            .add_layer("a1", Box::new(Activation::new(ActivationKind::Relu)), c1)
            .unwrap();
        let c2 = g.add_layer("c2", conv(4, 2, 3, 2), a1).unwrap();
        g.set_outputs(vec![c2]).unwrap();
        let input = init::uniform(&mut init::rng(3), &[1, 1, 6, 6], -1.0, 1.0);
        let y = g.forward(&input).unwrap();
        assert_eq!(y[0].shape(), &[1, 2, 6, 6]);
        g.backward(&[Tensor::ones(y[0].shape())]).unwrap();
        assert!(g.conv_mut(c1).unwrap().weight().grad.l2_norm() > 0.0);
    }

    #[test]
    fn residual_add_accumulates_gradients() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c1 = g.add_layer("c1", conv(2, 2, 3, 5), x).unwrap();
        let add = g.add_add("res", x, c1).unwrap();
        g.set_outputs(vec![add]).unwrap();
        let input = init::uniform(&mut init::rng(7), &[1, 2, 4, 4], -1.0, 1.0);
        let y = g.forward(&input).unwrap();
        assert_eq!(y[0].shape(), input.shape());
        g.backward(&[Tensor::ones(y[0].shape())]).unwrap();
    }

    #[test]
    fn concat_round_trip() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c1 = g.add_layer("c1", conv(2, 3, 1, 1), x).unwrap();
        let c2 = g.add_layer("c2", conv(2, 5, 1, 2), x).unwrap();
        let cat = g.add_concat("cat", vec![c1, c2]).unwrap();
        g.set_outputs(vec![cat]).unwrap();
        let input = init::uniform(&mut init::rng(9), &[2, 2, 3, 3], -1.0, 1.0);
        let y = g.forward(&input).unwrap();
        assert_eq!(y[0].shape(), &[2, 8, 3, 3]);
        g.backward(&[Tensor::ones(y[0].shape())]).unwrap();
    }

    #[test]
    fn multi_output_backward() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let trunk = g.add_layer("trunk", conv(1, 4, 3, 2), x).unwrap();
        let h1 = g.add_layer("h1", conv(4, 2, 1, 3), trunk).unwrap();
        let h2 = g.add_layer("h2", conv(4, 3, 1, 4), trunk).unwrap();
        g.set_outputs(vec![h1, h2]).unwrap();
        let input = init::uniform(&mut init::rng(11), &[1, 1, 4, 4], -1.0, 1.0);
        let ys = g.forward(&input).unwrap();
        assert_eq!(ys.len(), 2);
        let grads: Vec<Tensor> = ys.iter().map(|y| Tensor::ones(y.shape())).collect();
        g.backward(&grads).unwrap();
        // Trunk receives gradient from both heads.
        assert!(g.conv_mut(trunk).unwrap().weight().grad.l2_norm() > 0.0);
    }

    #[test]
    fn parent_child_queries() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c1 = g.add_layer("c1", conv(1, 2, 3, 0), x).unwrap();
        let c2 = g.add_layer("c2", conv(2, 2, 3, 1), c1).unwrap();
        let c3 = g.add_layer("c3", conv(2, 2, 3, 2), c1).unwrap();
        assert_eq!(g.parents(c2), &[c1]);
        assert_eq!(g.children(c1), vec![c2, c3]);
        assert_eq!(g.conv_ids(), vec![c1, c2, c3]);
    }

    #[test]
    fn bad_construction_rejected() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        assert!(g.add_layer("c", conv(1, 1, 1, 0), 99).is_err());
        assert!(g.add_concat("cat", vec![x]).is_err());
        assert!(g.set_outputs(vec![]).is_err());
        assert!(g.set_outputs(vec![42]).is_err());
        // Forward without outputs fails.
        let mut g2 = Graph::new();
        g2.add_input("x");
        assert!(g2.forward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn infer_shapes_matches_forward() {
        use crate::layers::{MaxPool2d, UpsampleNearest2x};
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c1 = g.add_layer("c1", conv(2, 4, 3, 1), x).unwrap();
        let p = g
            .add_layer("p", Box::new(MaxPool2d::new(2, 2, 0)), c1)
            .unwrap();
        let up = g
            .add_layer("up", Box::new(UpsampleNearest2x::new()), p)
            .unwrap();
        let c2 = g.add_layer("c2", conv(4, 3, 1, 2), up).unwrap();
        let cat = g.add_concat("cat", vec![c1, c2]).unwrap();
        g.set_outputs(vec![cat]).unwrap();
        let input = init::uniform(&mut init::rng(13), &[2, 2, 8, 8], -1.0, 1.0);
        let inferred = g.infer_shapes(input.shape()).unwrap();
        let y = g.forward(&input).unwrap();
        assert_eq!(inferred[cat], y[0].shape().to_vec());
        for (id, s) in inferred.iter().enumerate() {
            assert_eq!(
                s,
                &g.activations[id].as_ref().unwrap().shape().to_vec(),
                "node {id}"
            );
        }
        // Mismatched channel count is rejected statically.
        assert!(g.infer_shapes(&[1, 3, 8, 8]).is_err());
        // Kernel that cannot fit the spatial extent is rejected.
        assert!(g.infer_shapes(&[1, 2, 1, 1]).is_err());
    }

    #[test]
    fn numerical_gradient_through_graph() {
        // End-to-end gradcheck: one conv weight, loss = sum of outputs.
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c1 = g.add_layer("c1", conv(1, 2, 3, 21), x).unwrap();
        let a1 = g
            .add_layer("a1", Box::new(Activation::new(ActivationKind::Silu)), c1)
            .unwrap();
        let c2 = g.add_layer("c2", conv(2, 1, 3, 22), a1).unwrap();
        g.set_outputs(vec![c2]).unwrap();
        let input = init::uniform(&mut init::rng(23), &[1, 1, 5, 5], -1.0, 1.0);
        let y = g.forward(&input).unwrap();
        g.backward(&[Tensor::ones(y[0].shape())]).unwrap();
        let ana = g.conv_mut(c1).unwrap().weight().grad.at(&[1, 0, 0, 2]);

        let eps = 1e-3f32;
        let perturb = |g: &mut Graph, delta: f32| {
            let w = g.conv_mut(c1).unwrap().weight_mut();
            let v = w.value.at(&[1, 0, 0, 2]);
            w.value.set(&[1, 0, 0, 2], v + delta);
        };
        perturb(&mut g, eps);
        let yp = g.forward(&input).unwrap()[0].sum();
        perturb(&mut g, -2.0 * eps);
        let ym = g.forward(&input).unwrap()[0].sum();
        let num = (yp - ym) / (2.0 * eps);
        assert!((ana - num).abs() < 2e-2, "{ana} vs {num}");
    }
}
