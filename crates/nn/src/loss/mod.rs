//! Loss functions for detector training.
//!
//! Each function returns `(loss, grad)` where `grad` is the gradient of
//! the *mean* loss with respect to the raw (pre-sigmoid) predictions —
//! ready to feed into [`Graph::backward`](crate::Graph::backward).
//!
//! [`focal_bce_with_logits`] implements RetinaNet's focal loss (Lin et
//! al., ICCV'17), which the paper highlights as RetinaNet's answer to
//! class imbalance (§II.A). [`GridLoss`] is the YOLO-style grid-cell
//! detection loss used to train the scaled twins.

mod grid;

pub use grid::{GridLoss, GtBox};

use crate::NnError;
use rtoss_tensor::Tensor;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn check_same_shape(pred: &Tensor, target: &Tensor, op: &str) -> Result<(), NnError> {
    if pred.shape() != target.shape() {
        return Err(NnError::Loss {
            msg: format!(
                "{op}: prediction shape {:?} != target shape {:?}",
                pred.shape(),
                target.shape()
            ),
        });
    }
    Ok(())
}

/// Numerically-stable binary cross-entropy on logits.
///
/// Returns the mean loss and its gradient w.r.t. the logits.
///
/// # Errors
///
/// Returns [`NnError::Loss`] if the shapes differ or `pred` is empty.
pub fn bce_with_logits(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor), NnError> {
    check_same_shape(pred, target, "bce_with_logits")?;
    let n = pred.numel();
    if n == 0 {
        return Err(NnError::Loss {
            msg: "bce_with_logits: empty prediction".into(),
        });
    }
    let mut loss = 0.0f64;
    let mut grad = vec![0.0f32; n];
    for (i, (&x, &t)) in pred
        .as_slice()
        .iter()
        .zip(target.as_slice().iter())
        .enumerate()
    {
        // log(1 + e^{-|x|}) + max(x, 0) - x*t  (stable form)
        loss += (x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln()) as f64;
        grad[i] = (sigmoid(x) - t) / n as f32;
    }
    Ok((
        (loss / n as f64) as f32,
        Tensor::from_vec(grad, pred.shape())?,
    ))
}

/// Focal binary cross-entropy on logits (RetinaNet):
/// `FL(p_t) = -alpha_t (1 - p_t)^gamma log(p_t)`.
///
/// Returns the mean loss and its gradient w.r.t. the logits.
///
/// # Errors
///
/// Returns [`NnError::Loss`] if the shapes differ or `pred` is empty.
pub fn focal_bce_with_logits(
    pred: &Tensor,
    target: &Tensor,
    alpha: f32,
    gamma: f32,
) -> Result<(f32, Tensor), NnError> {
    check_same_shape(pred, target, "focal_bce_with_logits")?;
    let n = pred.numel();
    if n == 0 {
        return Err(NnError::Loss {
            msg: "focal_bce_with_logits: empty prediction".into(),
        });
    }
    let mut loss = 0.0f64;
    let mut grad = vec![0.0f32; n];
    for (i, (&x, &t)) in pred
        .as_slice()
        .iter()
        .zip(target.as_slice().iter())
        .enumerate()
    {
        let p = sigmoid(x);
        let (pt, at) = if t > 0.5 {
            (p, alpha)
        } else {
            (1.0 - p, 1.0 - alpha)
        };
        let pt = pt.clamp(1e-7, 1.0 - 1e-7);
        let log_pt = pt.ln();
        loss += (-at * (1.0 - pt).powf(gamma) * log_pt) as f64;
        // d/dx: chain through p_t. dp_t/dx = p(1-p) * sign, sign = +1 for
        // positives, -1 for negatives.
        let sign = if t > 0.5 { 1.0 } else { -1.0 };
        let dpt_dx = sign * p * (1.0 - p);
        let dl_dpt =
            at * (gamma * (1.0 - pt).powf(gamma - 1.0) * log_pt - (1.0 - pt).powf(gamma) / pt);
        grad[i] = dl_dpt * dpt_dx / n as f32;
    }
    Ok((
        (loss / n as f64) as f32,
        Tensor::from_vec(grad, pred.shape())?,
    ))
}

/// Smooth-L1 (Huber) loss with transition point `beta = 1`.
///
/// Returns the mean loss and its gradient w.r.t. `pred`.
///
/// # Errors
///
/// Returns [`NnError::Loss`] if the shapes differ or `pred` is empty.
pub fn smooth_l1(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor), NnError> {
    check_same_shape(pred, target, "smooth_l1")?;
    let n = pred.numel();
    if n == 0 {
        return Err(NnError::Loss {
            msg: "smooth_l1: empty prediction".into(),
        });
    }
    let mut loss = 0.0f64;
    let mut grad = vec![0.0f32; n];
    for (i, (&x, &t)) in pred
        .as_slice()
        .iter()
        .zip(target.as_slice().iter())
        .enumerate()
    {
        let d = x - t;
        if d.abs() < 1.0 {
            loss += (0.5 * d * d) as f64;
            grad[i] = d / n as f32;
        } else {
            loss += (d.abs() - 0.5) as f64;
            grad[i] = d.signum() / n as f32;
        }
    }
    Ok((
        (loss / n as f64) as f32,
        Tensor::from_vec(grad, pred.shape())?,
    ))
}

/// Mean squared error. Returns the mean loss and its gradient.
///
/// # Errors
///
/// Returns [`NnError::Loss`] if the shapes differ or `pred` is empty.
pub fn mse(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor), NnError> {
    check_same_shape(pred, target, "mse")?;
    let n = pred.numel();
    if n == 0 {
        return Err(NnError::Loss {
            msg: "mse: empty prediction".into(),
        });
    }
    let diff = pred.sub(target)?;
    let loss = diff.map(|d| d * d).mean();
    let grad = diff.scale(2.0 / n as f32);
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::init;

    fn gradcheck(f: impl Fn(&Tensor) -> (f32, Tensor), x: &Tensor, tol: f32) {
        let (_, g) = f(x);
        let eps = 1e-3f32;
        for idx in [0usize, x.numel() / 2, x.numel() - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (f(&xp).0 - f(&xm).0) / (2.0 * eps);
            let ana = g.as_slice()[idx];
            assert!((num - ana).abs() < tol, "idx {idx}: {num} vs {ana}");
        }
    }

    #[test]
    fn bce_perfect_prediction_is_low() {
        let pred = Tensor::from_vec(vec![10.0, -10.0], &[2]).unwrap();
        let target = Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap();
        let (l, _) = bce_with_logits(&pred, &target).unwrap();
        assert!(l < 1e-3);
    }

    #[test]
    fn bce_gradcheck() {
        let x = init::uniform(&mut init::rng(1), &[6], -2.0, 2.0);
        let t = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0], &[6]).unwrap();
        gradcheck(|p| bce_with_logits(p, &t).unwrap(), &x, 1e-2);
    }

    #[test]
    fn focal_downweights_easy_examples() {
        let easy = Tensor::from_vec(vec![5.0], &[1]).unwrap();
        let hard = Tensor::from_vec(vec![-2.0], &[1]).unwrap();
        let pos = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let (le, _) = focal_bce_with_logits(&easy, &pos, 0.25, 2.0).unwrap();
        let (lh, _) = focal_bce_with_logits(&hard, &pos, 0.25, 2.0).unwrap();
        let (be, _) = bce_with_logits(&easy, &pos).unwrap();
        let (bh, _) = bce_with_logits(&hard, &pos).unwrap();
        // Focal shrinks easy-example loss far more than hard-example loss.
        assert!(le / be < lh / bh);
    }

    #[test]
    fn focal_gradcheck() {
        let x = init::uniform(&mut init::rng(2), &[4], -2.0, 2.0);
        let t = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[4]).unwrap();
        gradcheck(
            |p| focal_bce_with_logits(p, &t, 0.25, 2.0).unwrap(),
            &x,
            1e-2,
        );
    }

    #[test]
    fn smooth_l1_regions() {
        let pred = Tensor::from_vec(vec![0.5, 3.0], &[2]).unwrap();
        let target = Tensor::zeros(&[2]);
        let (l, g) = smooth_l1(&pred, &target).unwrap();
        // (0.5*0.25 + (3-0.5)) / 2
        assert!((l - (0.125 + 2.5) / 2.0).abs() < 1e-5);
        assert!((g.as_slice()[0] - 0.25).abs() < 1e-6);
        assert!((g.as_slice()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mse_gradcheck() {
        let x = init::uniform(&mut init::rng(3), &[5], -1.0, 1.0);
        let t = init::uniform(&mut init::rng(4), &[5], -1.0, 1.0);
        gradcheck(|p| mse(p, &t).unwrap(), &x, 1e-2);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(bce_with_logits(&a, &b).is_err());
        assert!(smooth_l1(&a, &b).is_err());
        assert!(mse(&a, &b).is_err());
        assert!(focal_bce_with_logits(&a, &b, 0.25, 2.0).is_err());
    }
}
