//! YOLO-style grid-cell detection loss for the scaled detector twins.

use crate::NnError;
use rtoss_tensor::Tensor;

/// A ground-truth box in normalised image coordinates (all in `[0, 1]`,
/// centre/size convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtBox {
    /// Box centre x, normalised to image width.
    pub cx: f32,
    /// Box centre y, normalised to image height.
    pub cy: f32,
    /// Box width, normalised.
    pub w: f32,
    /// Box height, normalised.
    pub h: f32,
    /// Class index.
    pub class: usize,
}

/// Grid-cell detection loss over a head output of shape
/// `(N, 5 + C, S, S)` with channel order `[tx, ty, tw, th, obj, cls...]`.
///
/// The cell containing a ground-truth centre is responsible for that box
/// (YOLO assignment). Loss terms:
///
/// - objectness: BCE over all cells (negatives weighted by
///   `lambda_noobj`),
/// - box: MSE on `sigmoid(tx), sigmoid(ty)` against the in-cell offset
///   and on `tw, th` against `log(size / anchor)`,
/// - class: BCE over class logits of responsible cells.
///
/// Returns the total loss and its gradient w.r.t. the raw head output.
#[derive(Debug, Clone)]
pub struct GridLoss {
    num_classes: usize,
    anchor: (f32, f32),
    lambda_box: f32,
    lambda_obj: f32,
    lambda_noobj: f32,
    lambda_cls: f32,
}

impl GridLoss {
    /// Creates a grid loss for `num_classes` classes with one anchor of
    /// normalised size `anchor = (w, h)`.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or the anchor is non-positive.
    pub fn new(num_classes: usize, anchor: (f32, f32)) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(anchor.0 > 0.0 && anchor.1 > 0.0, "anchor must be positive");
        GridLoss {
            num_classes,
            anchor,
            lambda_box: 5.0,
            lambda_obj: 1.0,
            lambda_noobj: 0.5,
            lambda_cls: 1.0,
        }
    }

    /// Channels expected in the head output (`5 + C`).
    pub fn channels(&self) -> usize {
        5 + self.num_classes
    }

    /// The anchor size used for box encoding.
    pub fn anchor(&self) -> (f32, f32) {
        self.anchor
    }

    /// Computes loss and gradient for a batch.
    ///
    /// `targets[i]` lists the ground-truth boxes of batch item `i`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Loss`] if the prediction shape does not match
    /// `(N, 5 + C, S, S)` with `N == targets.len()`.
    pub fn forward(&self, pred: &Tensor, targets: &[Vec<GtBox>]) -> Result<(f32, Tensor), NnError> {
        if pred.rank() != 4 {
            return Err(NnError::Loss {
                msg: format!("grid loss expects rank-4 head output, got {}", pred.rank()),
            });
        }
        let (n, ch, s, s2) = (
            pred.shape()[0],
            pred.shape()[1],
            pred.shape()[2],
            pred.shape()[3],
        );
        if ch != self.channels() || s != s2 {
            return Err(NnError::Loss {
                msg: format!(
                    "grid loss expects (N,{},S,S), got {:?}",
                    self.channels(),
                    pred.shape()
                ),
            });
        }
        if n != targets.len() {
            return Err(NnError::Loss {
                msg: format!("batch {n} != target count {}", targets.len()),
            });
        }

        let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());
        let plane = s * s;
        let pd = pred.as_slice();
        let mut grad = vec![0.0f32; pd.len()];
        let mut loss = 0.0f64;
        let at = |ni: usize, c: usize, gy: usize, gx: usize| ((ni * ch + c) * s + gy) * s + gx;

        // Responsibility map: class target per positive cell.
        let mut responsible = vec![None::<&GtBox>; n * plane];
        for (ni, boxes) in targets.iter().enumerate() {
            for b in boxes {
                if !(0.0..1.0).contains(&b.cx) || !(0.0..1.0).contains(&b.cy) {
                    return Err(NnError::Loss {
                        msg: format!("box centre ({}, {}) out of [0,1)", b.cx, b.cy),
                    });
                }
                if b.class >= self.num_classes {
                    return Err(NnError::Loss {
                        msg: format!("class {} >= num_classes {}", b.class, self.num_classes),
                    });
                }
                let gx = ((b.cx * s as f32) as usize).min(s - 1);
                let gy = ((b.cy * s as f32) as usize).min(s - 1);
                responsible[ni * plane + gy * s + gx] = Some(b);
            }
        }

        let norm = (n * plane) as f32;
        for ni in 0..n {
            for gy in 0..s {
                for gx in 0..s {
                    let obj_idx = at(ni, 4, gy, gx);
                    let x_obj = pd[obj_idx];
                    let p_obj = sigmoid(x_obj);
                    match responsible[ni * plane + gy * s + gx] {
                        Some(b) => {
                            // Objectness (positive).
                            loss += (self.lambda_obj
                                * (x_obj.max(0.0) - x_obj + (1.0 + (-x_obj.abs()).exp()).ln()))
                                as f64;
                            grad[obj_idx] += self.lambda_obj * (p_obj - 1.0) / norm;

                            // Box offsets within the cell.
                            let tx_t = b.cx * s as f32 - gx as f32;
                            let ty_t = b.cy * s as f32 - gy as f32;
                            for (c, t) in [(0usize, tx_t), (1, ty_t)] {
                                let idx = at(ni, c, gy, gx);
                                let p = sigmoid(pd[idx]);
                                let d = p - t;
                                loss += (self.lambda_box * 0.5 * d * d) as f64;
                                grad[idx] += self.lambda_box * d * p * (1.0 - p) / norm;
                            }
                            // Box sizes (log-space against the anchor).
                            let tw_t = (b.w.max(1e-4) / self.anchor.0).ln();
                            let th_t = (b.h.max(1e-4) / self.anchor.1).ln();
                            for (c, t) in [(2usize, tw_t), (3, th_t)] {
                                let idx = at(ni, c, gy, gx);
                                let d = pd[idx] - t;
                                loss += (self.lambda_box * 0.5 * d * d) as f64;
                                grad[idx] += self.lambda_box * d / norm;
                            }
                            // Classes (one-vs-all BCE).
                            for ci in 0..self.num_classes {
                                let idx = at(ni, 5 + ci, gy, gx);
                                let x = pd[idx];
                                let t = if ci == b.class { 1.0 } else { 0.0 };
                                loss += (self.lambda_cls
                                    * (x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln()))
                                    as f64;
                                grad[idx] += self.lambda_cls * (sigmoid(x) - t) / norm;
                            }
                        }
                        None => {
                            // Objectness (negative), down-weighted.
                            loss += (self.lambda_noobj
                                * (x_obj.max(0.0) + (1.0 + (-x_obj.abs()).exp()).ln()))
                                as f64;
                            grad[obj_idx] += self.lambda_noobj * p_obj / norm;
                        }
                    }
                }
            }
        }

        Ok((
            (loss / norm as f64) as f32,
            Tensor::from_vec(grad, pred.shape())?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::init;

    fn one_box() -> Vec<Vec<GtBox>> {
        vec![vec![GtBox {
            cx: 0.55,
            cy: 0.55,
            w: 0.3,
            h: 0.2,
            class: 1,
        }]]
    }

    #[test]
    fn loss_decreases_under_gradient_descent() {
        let gl = GridLoss::new(3, (0.3, 0.3));
        let mut pred = init::uniform(&mut init::rng(1), &[1, 8, 4, 4], -0.5, 0.5);
        let targets = one_box();
        let (l0, _) = gl.forward(&pred, &targets).unwrap();
        for _ in 0..300 {
            let (_, g) = gl.forward(&pred, &targets).unwrap();
            pred.add_scaled_in_place(&g.scale(-4.0), 1.0).unwrap();
        }
        let (l1, _) = gl.forward(&pred, &targets).unwrap();
        assert!(l1 < l0 * 0.5, "loss {l0} -> {l1}");
    }

    #[test]
    fn gradcheck_random_coords() {
        let gl = GridLoss::new(2, (0.25, 0.25));
        let pred = init::uniform(&mut init::rng(2), &[1, 7, 3, 3], -1.0, 1.0);
        let targets = vec![vec![GtBox {
            cx: 0.4,
            cy: 0.7,
            w: 0.2,
            h: 0.3,
            class: 0,
        }]];
        let (_, g) = gl.forward(&pred, &targets).unwrap();
        let eps = 1e-3f32;
        for idx in [0usize, 10, 30, 60] {
            let mut pp = pred.clone();
            pp.as_mut_slice()[idx] += eps;
            let mut pm = pred.clone();
            pm.as_mut_slice()[idx] -= eps;
            let num = (gl.forward(&pp, &targets).unwrap().0 - gl.forward(&pm, &targets).unwrap().0)
                / (2.0 * eps);
            let ana = g.as_slice()[idx];
            assert!((num - ana).abs() < 1e-2, "idx {idx}: {num} vs {ana}");
        }
    }

    #[test]
    fn empty_scene_only_penalises_objectness() {
        let gl = GridLoss::new(2, (0.25, 0.25));
        let pred = init::uniform(&mut init::rng(3), &[1, 7, 3, 3], -1.0, 1.0);
        let (_, g) = gl.forward(&pred, &[vec![]]).unwrap();
        // Only channel 4 (objectness) should receive gradient.
        for c in [0usize, 1, 2, 3, 5, 6] {
            for gy in 0..3 {
                for gx in 0..3 {
                    assert_eq!(g.at(&[0, c, gy, gx]), 0.0);
                }
            }
        }
        assert!(g.l2_norm() > 0.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let gl = GridLoss::new(2, (0.25, 0.25));
        // Wrong channel count.
        assert!(gl
            .forward(&Tensor::zeros(&[1, 9, 3, 3]), &[vec![]])
            .is_err());
        // Batch/target mismatch.
        assert!(gl
            .forward(&Tensor::zeros(&[2, 7, 3, 3]), &[vec![]])
            .is_err());
        // Out-of-range class.
        let bad = vec![vec![GtBox {
            cx: 0.5,
            cy: 0.5,
            w: 0.1,
            h: 0.1,
            class: 7,
        }]];
        assert!(gl.forward(&Tensor::zeros(&[1, 7, 3, 3]), &bad).is_err());
        // Out-of-range centre.
        let bad2 = vec![vec![GtBox {
            cx: 1.5,
            cy: 0.5,
            w: 0.1,
            h: 0.1,
            class: 0,
        }]];
        assert!(gl.forward(&Tensor::zeros(&[1, 7, 3, 3]), &bad2).is_err());
    }
}
