//! Neural-network substrate for the R-TOSS reproduction.
//!
//! Provides what the paper's PyTorch stack provided:
//!
//! - [`Layer`]s with hand-written forward/backward passes
//!   ([`layers::Conv2d`], [`layers::BatchNorm2d`], activations, pooling,
//!   upsampling),
//! - an explicit computational [`Graph`] (the structure the paper recovers
//!   from backpropagation gradients; here it is first-class, see
//!   DESIGN.md §4),
//! - a mask-aware [`optim::Sgd`] optimizer so pruned weights stay pruned
//!   during fine-tuning, and
//! - detection [`loss`] functions (BCE, focal loss, smooth-L1, and a
//!   grid-cell detection loss).
//!
//! # Example
//!
//! ```
//! use rtoss_nn::{layers::Conv2d, Layer};
//! use rtoss_tensor::Tensor;
//!
//! # fn main() -> Result<(), rtoss_nn::NnError> {
//! let mut conv = Conv2d::new(3, 8, 3, 1, 1, 42);
//! let y = conv.forward(&Tensor::zeros(&[1, 3, 16, 16]))?;
//! assert_eq!(y.shape(), &[1, 8, 16, 16]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod layer;
mod param;

pub mod layers;
pub mod loss;
pub mod optim;

pub use error::NnError;
pub use graph::{Graph, Node, NodeId, NodeOp};
pub use layer::{Layer, LayerKind};
pub use param::Param;
