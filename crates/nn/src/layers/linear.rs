use crate::{Layer, LayerKind, NnError, Param};
use rtoss_tensor::{init, ops, Tensor, TensorError};

/// Fully-connected layer: `y = x · Wᵀ + b` on `(N, in) → (N, out)`.
///
/// Used by classification probes in tests and by the DETR architecture
/// spec's head accounting.
#[derive(Debug)]
pub struct Linear {
    weight: Param, // (out, in)
    bias: Param,   // (out)
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if `in_features` or `out_features` is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0);
        let mut rng = init::rng(seed);
        Linear {
            weight: Param::new(init::kaiming_uniform(
                &mut rng,
                &[out_features, in_features],
            )),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// The weight parameter `(out, in)`.
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        if x.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: x.rank(),
                op: "linear",
            }
            .into());
        }
        let y = ops::matmul_transpose_b(x, &self.weight.value)?;
        let (n, o) = (y.shape()[0], y.shape()[1]);
        let mut yd = y.into_vec();
        let b = self.bias.value.as_slice();
        for ni in 0..n {
            for oi in 0..o {
                yd[ni * o + oi] += b[oi];
            }
        }
        self.cached_input = Some(x.clone());
        Ok(Tensor::from_vec(yd, &[n, o])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let x = self.cached_input.as_ref().ok_or(NnError::NoForwardCache {
            layer: "Linear".into(),
        })?;
        // dW = dYᵀ · X ; dX = dY · W ; db = colsum(dY)
        let gw = ops::matmul_transpose_a(grad_out, x)?;
        self.weight.accumulate_grad(&gw)?;
        let o = self.out_features();
        let n = grad_out.shape()[0];
        let mut gb = vec![0.0f32; o];
        for ni in 0..n {
            for (oi, g) in gb.iter_mut().enumerate() {
                *g += grad_out.as_slice()[ni * o + oi];
            }
        }
        self.bias.accumulate_grad(&Tensor::from_vec(gb, &[o])?)?;
        Ok(ops::matmul(grad_out, &self.weight.value)?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Linear
    }

    fn as_linear(&self) -> Option<&Linear> {
        Some(self)
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_shapes() {
        let mut lin = Linear::new(4, 3, 1);
        let x = init::uniform(&mut init::rng(2), &[5, 4], -1.0, 1.0);
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.shape(), &[5, 3]);
        let gx = lin.backward(&Tensor::ones(&[5, 3])).unwrap();
        assert_eq!(gx.shape(), &[5, 4]);
        assert!(lin.weight().grad.l2_norm() > 0.0);
    }

    #[test]
    fn weight_grad_matches_finite_difference() {
        let mut lin = Linear::new(3, 2, 4);
        let x = init::uniform(&mut init::rng(5), &[2, 3], -1.0, 1.0);
        let y = lin.forward(&x).unwrap();
        lin.backward(&Tensor::ones(y.shape())).unwrap();
        let ana = lin.weight().grad.at(&[1, 2]);

        let eps = 1e-3f32;
        let mut lp = Linear::new(3, 2, 4);
        lp.weight
            .value
            .set(&[1, 2], lp.weight.value.at(&[1, 2]) + eps);
        let mut lm = Linear::new(3, 2, 4);
        lm.weight
            .value
            .set(&[1, 2], lm.weight.value.at(&[1, 2]) - eps);
        let num = (lp.forward(&x).unwrap().sum() - lm.forward(&x).unwrap().sum()) / (2.0 * eps);
        assert!((ana - num).abs() < 1e-2, "{ana} vs {num}");
    }

    #[test]
    fn rejects_rank_1() {
        let mut lin = Linear::new(3, 2, 0);
        assert!(lin.forward(&Tensor::zeros(&[3])).is_err());
    }
}
