use crate::{Layer, LayerKind, NnError, Param};
use rtoss_tensor::{init, ops, Tensor};

/// 2-D convolution layer with weight `(O, I, kH, kW)` and bias `O`.
///
/// This is the layer the R-TOSS framework prunes: its weight parameter
/// carries the kernel-pattern mask after pruning.
///
/// # Example
///
/// ```
/// use rtoss_nn::{layers::Conv2d, Layer};
/// use rtoss_tensor::Tensor;
///
/// # fn main() -> Result<(), rtoss_nn::NnError> {
/// let mut conv = Conv2d::new(2, 4, 3, 2, 1, 7);
/// let y = conv.forward(&Tensor::zeros(&[1, 2, 8, 8]))?;
/// assert_eq!(y.shape(), &[1, 4, 4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    stride: usize,
    pad: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a conv layer with Kaiming-uniform weights seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_ch`, `out_ch`, `kernel` is zero.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        assert!(
            in_ch > 0 && out_ch > 0 && kernel > 0,
            "conv dims must be non-zero"
        );
        let mut rng = init::rng(seed);
        let weight = init::kaiming_uniform(&mut rng, &[out_ch, in_ch, kernel, kernel]);
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_ch])),
            stride,
            pad,
            cached_input: None,
        }
    }

    /// Creates a conv layer from an explicit weight tensor `(O,I,kH,kW)`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank 4.
    pub fn from_weight(weight: Tensor, stride: usize, pad: usize) -> Self {
        assert_eq!(weight.rank(), 4, "conv weight must be rank 4");
        let out_ch = weight.shape()[0];
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_ch])),
            stride,
            pad,
            cached_input: None,
        }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Square kernel extent.
    pub fn kernel_size(&self) -> usize {
        self.weight.value.shape()[2]
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Symmetric zero padding.
    pub fn padding(&self) -> usize {
        self.pad
    }

    /// The weight parameter (value + grad + mask).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable weight parameter; the pruning framework writes masks here.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// The bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let y = ops::conv2d(
            x,
            &self.weight.value,
            Some(self.bias.value.as_slice()),
            self.stride,
            self.pad,
        )?;
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let x = self.cached_input.as_ref().ok_or(NnError::NoForwardCache {
            layer: "Conv2d".into(),
        })?;
        let grads = ops::conv2d_backward(x, &self.weight.value, grad_out, self.stride, self.pad)?;
        // Masked weights receive no gradient: the pattern mask freezes them.
        let gw = if let Some(mask) = self.weight.mask() {
            grads.grad_weight.mul(mask)?
        } else {
            grads.grad_weight
        };
        self.weight.accumulate_grad(&gw)?;
        let gb = Tensor::from_vec(grads.grad_bias, &[self.bias.value.numel()])?;
        self.bias.accumulate_grad(&gb)?;
        Ok(grads.grad_input)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn as_conv2d(&self) -> Option<&Conv2d> {
        Some(self)
    }

    fn as_conv2d_mut(&mut self) -> Option<&mut Conv2d> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_backward_flow() {
        let mut conv = Conv2d::new(3, 5, 3, 1, 1, 1);
        let x = init::uniform(&mut init::rng(2), &[2, 3, 6, 6], -1.0, 1.0);
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 5, 6, 6]);
        let gx = conv.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
        assert!(conv.weight().grad.l2_norm() > 0.0);
        assert!(conv.bias().grad.l2_norm() > 0.0);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 0);
        let e = conv.backward(&Tensor::zeros(&[1, 1, 4, 4]));
        assert!(matches!(e, Err(NnError::NoForwardCache { .. })));
    }

    #[test]
    fn masked_weights_get_no_gradient() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 3);
        // Mask out everything except centre weight.
        let mut mask = Tensor::zeros(&[1, 1, 3, 3]);
        mask.set(&[0, 0, 1, 1], 1.0);
        conv.weight_mut().set_mask(mask).unwrap();
        let x = init::uniform(&mut init::rng(4), &[1, 1, 5, 5], -1.0, 1.0);
        let y = conv.forward(&x).unwrap();
        conv.backward(&Tensor::ones(y.shape())).unwrap();
        let g = &conv.weight().grad;
        for i in 0..3 {
            for j in 0..3 {
                if (i, j) != (1, 1) {
                    assert_eq!(g.at(&[0, 0, i, j]), 0.0, "masked weight got grad");
                }
            }
        }
        assert!(g.at(&[0, 0, 1, 1]).abs() > 0.0);
    }

    #[test]
    fn geometry_accessors() {
        let conv = Conv2d::new(4, 8, 1, 2, 0, 0);
        assert_eq!(conv.in_channels(), 4);
        assert_eq!(conv.out_channels(), 8);
        assert_eq!(conv.kernel_size(), 1);
        assert_eq!(conv.stride(), 2);
        assert_eq!(conv.padding(), 0);
        assert_eq!(conv.kind(), LayerKind::Conv);
    }
}
