//! Concrete layers: convolution, batch-norm, activations, pooling,
//! upsampling, and linear.

mod activation;
mod batchnorm;
mod conv2d;
mod linear;
mod pool;

pub use activation::{Activation, ActivationKind};
pub use batchnorm::BatchNorm2d;
pub use conv2d::Conv2d;
pub use linear::Linear;
pub use pool::{MaxPool2d, UpsampleNearest2x};
