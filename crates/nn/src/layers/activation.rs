use crate::{Layer, LayerKind, NnError};
use rtoss_tensor::Tensor;

/// Pointwise non-linearity selector.
///
/// YOLOv5 uses SiLU throughout; RetinaNet's ResNet backbone uses ReLU;
/// detection heads use Sigmoid on objectness/class logits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ActivationKind {
    /// `x * sigmoid(x)` (a.k.a. swish) — YOLOv5's default.
    Silu,
    /// `max(0, x)` — ResNet/RetinaNet backbone.
    Relu,
    /// `max(alpha*x, x)` with `alpha = 0.1` — YOLO-family necks.
    LeakyRelu,
    /// Logistic sigmoid — head outputs.
    Sigmoid,
}

impl ActivationKind {
    fn eval(self, x: f32) -> f32 {
        match self {
            ActivationKind::Silu => x * sigmoid(x),
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.1 * x
                }
            }
            ActivationKind::Sigmoid => sigmoid(x),
        }
    }

    fn derivative(self, x: f32) -> f32 {
        match self {
            ActivationKind::Silu => {
                let s = sigmoid(x);
                s + x * s * (1.0 - s)
            }
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.1
                }
            }
            ActivationKind::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Pointwise activation layer (parameter-free).
///
/// # Example
///
/// ```
/// use rtoss_nn::{layers::{Activation, ActivationKind}, Layer};
/// use rtoss_tensor::Tensor;
///
/// # fn main() -> Result<(), rtoss_nn::NnError> {
/// let mut relu = Activation::new(ActivationKind::Relu);
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap())?;
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Activation {
    kind: ActivationKind,
    cached_input: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation {
            kind,
            cached_input: None,
        }
    }

    /// The activation kind.
    pub fn activation_kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Layer for Activation {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let kind = self.kind;
        let y = x.map(|v| kind.eval(v));
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let x = self.cached_input.as_ref().ok_or(NnError::NoForwardCache {
            layer: format!("Activation({:?})", self.kind),
        })?;
        let kind = self.kind;
        Ok(grad_out.zip_map(x, |g, v| g * kind.derivative(v))?)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Activation
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn as_activation(&self) -> Option<&Activation> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::init;

    #[test]
    fn silu_values() {
        assert!((ActivationKind::Silu.eval(0.0)).abs() < 1e-6);
        assert!((ActivationKind::Silu.eval(10.0) - 10.0).abs() < 1e-3);
        assert!(ActivationKind::Silu.eval(-10.0).abs() < 1e-3);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for kind in [
            ActivationKind::Silu,
            ActivationKind::Relu,
            ActivationKind::LeakyRelu,
            ActivationKind::Sigmoid,
        ] {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
                if kind == ActivationKind::Relu && x.abs() < eps {
                    continue; // kink
                }
                let num = (kind.eval(x + eps) - kind.eval(x - eps)) / (2.0 * eps);
                let ana = kind.derivative(x);
                assert!((num - ana).abs() < 1e-2, "{kind:?} at {x}: {num} vs {ana}");
            }
        }
    }

    #[test]
    fn layer_backward_chain() {
        let mut act = Activation::new(ActivationKind::Silu);
        let x = init::uniform(&mut init::rng(1), &[2, 3], -2.0, 2.0);
        act.forward(&x).unwrap();
        let g = act.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn sigmoid_bounds() {
        let mut act = Activation::new(ActivationKind::Sigmoid);
        let x = init::uniform(&mut init::rng(2), &[100], -50.0, 50.0);
        let y = act.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
