use crate::{Layer, LayerKind, NnError, Param};
use rtoss_tensor::{Tensor, TensorError};

/// Batch normalisation over the channel dimension of `(N, C, H, W)`.
///
/// Carries learnable scale (`gamma`) and shift (`beta`) plus running
/// statistics for evaluation mode. The Network Slimming baseline (Liu et
/// al., ICCV'17) prunes channels by the magnitude of `gamma`, so the
/// scale parameter is exposed via [`BatchNorm2d::gamma`].
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    training: bool,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels
    /// (`gamma = 1`, `beta = 0`).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            training: true,
            cache: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.numel()
    }

    /// The learnable per-channel scale (Network Slimming's pruning signal).
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }

    /// Mutable access to the scale parameter.
    pub fn gamma_mut(&mut self) -> &mut Param {
        &mut self.gamma
    }

    /// The learnable per-channel shift.
    pub fn beta(&self) -> &Param {
        &self.beta
    }

    /// The running `(mean, variance)` statistics used in eval mode.
    pub fn running_stats(&self) -> (&[f32], &[f32]) {
        (&self.running_mean, &self.running_var)
    }

    /// Overwrites the running statistics (used to transplant a trained
    /// state into a freshly built graph).
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the channel count.
    pub fn set_running_stats(&mut self, mean: &[f32], var: &[f32]) {
        assert_eq!(mean.len(), self.channels(), "mean length mismatch");
        assert_eq!(var.len(), self.channels(), "var length mismatch");
        self.running_mean.copy_from_slice(mean);
        self.running_var.copy_from_slice(var);
    }

    fn check_input(&self, x: &Tensor) -> Result<(usize, usize, usize, usize), NnError> {
        if x.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: x.rank(),
                op: "batchnorm2d",
            }
            .into());
        }
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        if c != self.channels() {
            return Err(TensorError::Invalid {
                op: "batchnorm2d",
                msg: format!("input has {c} channels, layer has {}", self.channels()),
            }
            .into());
        }
        Ok((n, c, h, w))
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let (n, c, h, w) = self.check_input(x)?;
        let plane = h * w;
        let count = (n * plane) as f32;
        let xd = x.as_slice();
        let mut out = vec![0.0f32; xd.len()];
        let mut x_hat = vec![0.0f32; xd.len()];
        let mut inv_stds = vec![0.0f32; c];

        #[allow(clippy::needless_range_loop)] // ci indexes several arrays
        for ci in 0..c {
            let (mean, var) = if self.training {
                let mut sum = 0.0f32;
                let mut sq = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &v in &xd[base..base + plane] {
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / count;
                let var = (sq / count - mean * mean).max(0.0);
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ci] = inv_std;
            let g = self.gamma.value.as_slice()[ci];
            let b = self.beta.value.as_slice()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let xh = (xd[i] - mean) * inv_std;
                    x_hat[i] = xh;
                    out[i] = g * xh + b;
                }
            }
        }

        self.cache = Some(BnCache {
            x_hat: Tensor::from_vec(x_hat, x.shape())?,
            inv_std: inv_stds,
            input_shape: x.shape().to_vec(),
        });
        Ok(Tensor::from_vec(out, x.shape())?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self.cache.as_ref().ok_or(NnError::NoForwardCache {
            layer: "BatchNorm2d".into(),
        })?;
        if grad_out.shape() != cache.input_shape.as_slice() {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.shape().to_vec(),
                right: cache.input_shape.clone(),
                op: "batchnorm2d_backward",
            }
            .into());
        }
        let (n, c, h, w) = (
            cache.input_shape[0],
            cache.input_shape[1],
            cache.input_shape[2],
            cache.input_shape[3],
        );
        let plane = h * w;
        let count = (n * plane) as f32;
        let god = grad_out.as_slice();
        let xh = cache.x_hat.as_slice();
        let mut gx = vec![0.0f32; god.len()];
        let mut ggamma = vec![0.0f32; c];
        let mut gbeta = vec![0.0f32; c];

        for ci in 0..c {
            let mut sum_go = 0.0f32;
            let mut sum_go_xh = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    sum_go += god[i];
                    sum_go_xh += god[i] * xh[i];
                }
            }
            ggamma[ci] = sum_go_xh;
            gbeta[ci] = sum_go;
            let g = self.gamma.value.as_slice()[ci];
            let inv_std = cache.inv_std[ci];
            let (scale, mean_go, mean_go_xh) = if self.training {
                (g * inv_std, sum_go / count, sum_go_xh / count)
            } else {
                // Eval mode: statistics are constants, gradient is diagonal.
                (g * inv_std, 0.0, 0.0)
            };
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    gx[i] = scale * (god[i] - mean_go - xh[i] * mean_go_xh);
                }
            }
        }

        self.gamma
            .accumulate_grad(&Tensor::from_vec(ggamma, &[c])?)?;
        self.beta.accumulate_grad(&Tensor::from_vec(gbeta, &[c])?)?;
        Ok(Tensor::from_vec(gx, &cache.input_shape)?)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn kind(&self) -> LayerKind {
        LayerKind::BatchNorm
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn clear_cache(&mut self) {
        self.cache = None;
    }

    fn as_batchnorm(&self) -> Option<&BatchNorm2d> {
        Some(self)
    }

    fn as_batchnorm_mut(&mut self) -> Option<&mut BatchNorm2d> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::init;

    #[test]
    fn normalises_in_training_mode() {
        let mut bn = BatchNorm2d::new(2);
        let x = init::uniform(&mut init::rng(1), &[4, 2, 3, 3], 2.0, 6.0);
        let y = bn.forward(&x).unwrap();
        // Per-channel mean ~0, var ~1 after normalisation with gamma=1.
        let plane = 9;
        for ci in 0..2 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                let base = (ni * 2 + ci) * plane;
                vals.extend_from_slice(&y.as_slice()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = init::uniform(&mut init::rng(2), &[8, 1, 4, 4], 1.0, 3.0);
        for _ in 0..50 {
            bn.forward(&x).unwrap();
        }
        bn.set_training(false);
        // A single constant input should be normalised with the learned
        // running stats, not the (degenerate) batch stats.
        let probe = Tensor::full(&[1, 1, 2, 2], 2.0);
        let y = bn.forward(&probe).unwrap();
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        // Batch stats of a constant input would give exactly 0 output.
        assert!(y.l2_norm() > 0.0 || x.mean() == 2.0);
    }

    #[test]
    fn backward_matches_finite_difference_on_gamma() {
        let mut bn = BatchNorm2d::new(2);
        let x = init::uniform(&mut init::rng(3), &[2, 2, 3, 3], -1.0, 1.0);
        let y = bn.forward(&x).unwrap();
        bn.backward(&Tensor::ones(y.shape())).unwrap();
        let analytic = bn.gamma().grad.as_slice()[0];

        let eps = 1e-3f32;
        let mut bn2 = BatchNorm2d::new(2);
        bn2.gamma_mut().value.as_mut_slice()[0] += eps;
        let yp = bn2.forward(&x).unwrap();
        let mut bn3 = BatchNorm2d::new(2);
        bn3.gamma_mut().value.as_mut_slice()[0] -= eps;
        let ym = bn3.forward(&x).unwrap();
        let numeric = (yp.sum() - ym.sum()) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "gamma grad {analytic} vs {numeric}"
        );
    }

    #[test]
    fn backward_input_grad_sums_to_zero_in_training() {
        // d/dx of a mean/var-normalised output has zero sum per channel
        // when grad_out is constant.
        let mut bn = BatchNorm2d::new(1);
        let x = init::uniform(&mut init::rng(4), &[2, 1, 4, 4], -2.0, 2.0);
        let y = bn.forward(&x).unwrap();
        let gx = bn.backward(&Tensor::ones(y.shape())).unwrap();
        assert!(gx.sum().abs() < 1e-3, "sum {}", gx.sum());
    }

    #[test]
    fn channel_mismatch_rejected() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn.forward(&Tensor::zeros(&[1, 2, 4, 4])).is_err());
    }
}
