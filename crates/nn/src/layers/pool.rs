use crate::{Layer, LayerKind, NnError};
use rtoss_tensor::{ops, Tensor};

/// Max-pooling layer (square window).
///
/// Used by the SPPF blocks of YOLOv5 (`k=5, stride=1, pad=2`) and as a
/// plain downsampler in the scaled twins.
#[derive(Debug)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    pad: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input shape)
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "pool kernel/stride must be non-zero"
        );
        MaxPool2d {
            kernel,
            stride,
            pad,
            cache: None,
        }
    }

    /// Window size.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Symmetric zero padding.
    pub fn padding(&self) -> usize {
        self.pad
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let out = ops::maxpool2d(x, self.kernel, self.stride, self.pad)?;
        self.cache = Some((out.argmax, x.shape().to_vec()));
        Ok(out.output)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let (argmax, input_shape) = self.cache.as_ref().ok_or(NnError::NoForwardCache {
            layer: "MaxPool2d".into(),
        })?;
        Ok(ops::maxpool2d_backward(grad_out, argmax, input_shape)?)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn clear_cache(&mut self) {
        self.cache = None;
    }

    fn as_maxpool(&self) -> Option<&MaxPool2d> {
        Some(self)
    }
}

/// Nearest-neighbour 2× upsampling layer (the FPN/PANet top-down path).
#[derive(Debug, Default)]
pub struct UpsampleNearest2x {
    did_forward: bool,
}

impl UpsampleNearest2x {
    /// Creates an upsampling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for UpsampleNearest2x {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        self.did_forward = true;
        Ok(ops::upsample_nearest2x(x)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if !self.did_forward {
            return Err(NnError::NoForwardCache {
                layer: "UpsampleNearest2x".into(),
            });
        }
        Ok(ops::upsample_nearest2x_backward(grad_out)?)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Upsample
    }

    fn as_upsample(&self) -> Option<&UpsampleNearest2x> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::init;

    #[test]
    fn pool_then_unpool_grad_is_sparse() {
        let mut pool = MaxPool2d::new(2, 2, 0);
        let x = init::uniform(&mut init::rng(1), &[1, 1, 4, 4], -1.0, 1.0);
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let gx = pool.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
        // Exactly 4 winners receive gradient.
        assert_eq!(gx.as_slice().iter().filter(|&&g| g != 0.0).count(), 4);
    }

    #[test]
    fn upsample_shapes() {
        let mut up = UpsampleNearest2x::new();
        let x = Tensor::zeros(&[1, 2, 3, 3]);
        let y = up.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 2, 6, 6]);
        let gx = up.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut pool = MaxPool2d::new(2, 2, 0);
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
        let mut up = UpsampleNearest2x::new();
        assert!(up.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }
}
