use rtoss_tensor::{Tensor, TensorError};

/// A trainable parameter: value, accumulated gradient, and an optional
/// pruning mask.
///
/// The mask is the mechanism by which R-TOSS keeps pruned weights pruned
/// during iterative fine-tuning: after every optimizer step the mask is
/// re-applied (`value *= mask`), reproducing the paper's "kernel masks
/// deployed during inference" (§IV.C).
///
/// # Example
///
/// ```
/// use rtoss_nn::Param;
/// use rtoss_tensor::Tensor;
///
/// # fn main() -> Result<(), rtoss_tensor::TensorError> {
/// let mut p = Param::new(Tensor::ones(&[2, 2]));
/// let mask = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// p.set_mask(mask)?;
/// assert_eq!(p.value.as_slice(), &[1.0, 0.0, 0.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    mask: Option<Tensor>,
}

impl Param {
    /// Wraps a tensor as a trainable parameter with zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            value,
            grad,
            mask: None,
        }
    }

    /// Installs a binary (0/1) pruning mask and immediately applies it to
    /// the value. Subsequent [`Param::apply_mask`] calls keep enforcing it.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the mask shape differs
    /// from the value shape.
    pub fn set_mask(&mut self, mask: Tensor) -> Result<(), TensorError> {
        self.value = self.value.mul(&mask)?;
        self.mask = Some(mask);
        Ok(())
    }

    /// The installed pruning mask, if any.
    pub fn mask(&self) -> Option<&Tensor> {
        self.mask.as_ref()
    }

    /// Removes the pruning mask (does not restore pruned values).
    pub fn clear_mask(&mut self) {
        self.mask = None;
    }

    /// Re-applies the mask to the value (no-op when unmasked).
    pub fn apply_mask(&mut self) {
        if let Some(mask) = &self.mask {
            self.value = self
                .value
                .mul(mask)
                .expect("mask shape verified at set_mask");
        }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Accumulates `g` into the gradient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `g` has a different shape.
    pub fn accumulate_grad(&mut self, g: &Tensor) -> Result<(), TensorError> {
        self.grad.add_scaled_in_place(g, 1.0)
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_is_applied_and_sticky() {
        let mut p = Param::new(Tensor::full(&[4], 2.0));
        let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4]).unwrap();
        p.set_mask(mask).unwrap();
        assert_eq!(p.value.as_slice(), &[2.0, 0.0, 2.0, 0.0]);
        // Simulate an SGD update writing into masked slots.
        p.value = Tensor::full(&[4], 3.0);
        p.apply_mask();
        assert_eq!(p.value.as_slice(), &[3.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn mask_shape_checked() {
        let mut p = Param::new(Tensor::zeros(&[4]));
        assert!(p.set_mask(Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn grad_accumulation() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::ones(&[2])).unwrap();
        p.accumulate_grad(&Tensor::ones(&[2])).unwrap();
        assert_eq!(p.grad.as_slice(), &[2.0, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }
}
