//! Mask-aware stochastic gradient descent.
//!
//! R-TOSS is an *iterative* pruning scheme (§IV): after masks are applied,
//! the model is fine-tuned while pruned weights must stay zero. [`Sgd`]
//! enforces this by re-applying each parameter's mask after every update.

use crate::Param;

/// SGD with momentum, weight decay, and mask re-application.
///
/// # Example
///
/// ```
/// use rtoss_nn::{optim::Sgd, Param};
/// use rtoss_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[2]));
/// p.grad = Tensor::ones(&[2]);
/// let mut opt = Sgd::new(0.1).momentum(0.9);
/// opt.step(&mut [&mut p]);
/// assert!(p.value.as_slice()[0] < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocities: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocities: Vec::new(),
        }
    }

    /// Builder: sets the momentum coefficient.
    pub fn momentum(mut self, m: f32) -> Self {
        self.momentum = m;
        self
    }

    /// Builder: sets L2 weight decay.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update to every parameter, then zeroes gradients and
    /// re-applies pruning masks.
    ///
    /// The parameter list must be the same (same order, same shapes) on
    /// every call; the internal momentum state is keyed by position.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list changes shape between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocities.is_empty() {
            self.velocities = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        }
        assert_eq!(
            self.velocities.len(),
            params.len(),
            "parameter list changed between steps"
        );
        for (p, vel) in params.iter_mut().zip(self.velocities.iter_mut()) {
            assert_eq!(
                vel.len(),
                p.numel(),
                "parameter shape changed between steps"
            );
            let wd = self.weight_decay;
            let grad = p.grad.as_slice().to_vec();
            let values = p.value.as_mut_slice();
            for ((w, g), v) in values.iter_mut().zip(grad.iter()).zip(vel.iter_mut()) {
                let g_eff = g + wd * *w;
                *v = self.momentum * *v + g_eff;
                *w -= self.lr * *v;
            }
            p.zero_grad();
            p.apply_mask();
        }
    }
}

/// Adam optimizer (Kingma & Ba) with mask re-application, matching the
/// [`Sgd`] interface.
///
/// # Example
///
/// ```
/// use rtoss_nn::{optim::Adam, Param};
/// use rtoss_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::full(&[1], 5.0));
/// let mut opt = Adam::new(0.1);
/// for _ in 0..200 {
///     let w = p.value.as_slice()[0];
///     p.grad = Tensor::full(&[1], w); // minimise 0.5 w²
///     opt.step(&mut [&mut p]);
/// }
/// assert!(p.value.as_slice()[0].abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the given learning rate and the standard
    /// moment coefficients (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Builder: sets decoupled L2 weight decay.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update, zeroes gradients, re-applies masks.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list changes shape between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.numel()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "parameter list changed between steps"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for ((p, m), v) in params
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            assert_eq!(m.len(), p.numel(), "parameter shape changed between steps");
            let grad = p.grad.as_slice().to_vec();
            let values = p.value.as_mut_slice();
            for (((w, g), mi), vi) in values
                .iter_mut()
                .zip(grad.iter())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                let g_eff = g + self.weight_decay * *w;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g_eff;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g_eff * g_eff;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.zero_grad();
            p.apply_mask();
        }
    }
}

/// Learning-rate schedule, evaluated per epoch.
///
/// # Example
///
/// ```
/// use rtoss_nn::optim::LrSchedule;
///
/// let cosine = LrSchedule::Cosine { total_epochs: 10, min_lr: 0.001 };
/// assert!(cosine.lr_at(0.1, 9) < cosine.lr_at(0.1, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant,
    /// Multiply by `factor` every `every` epochs.
    StepDecay {
        /// Epochs between decays (must be non-zero).
        every: usize,
        /// Multiplicative decay factor.
        factor: f32,
    },
    /// Cosine annealing from the base LR down to `min_lr` over
    /// `total_epochs`.
    Cosine {
        /// Horizon of the anneal.
        total_epochs: usize,
        /// Final learning rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based) given a base rate.
    ///
    /// # Panics
    ///
    /// Panics if a `StepDecay` has `every == 0`.
    pub fn lr_at(&self, base_lr: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every > 0, "step decay interval must be non-zero");
                base_lr * factor.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine {
                total_epochs,
                min_lr,
            } => {
                if total_epochs <= 1 {
                    return min_lr;
                }
                let t = (epoch.min(total_epochs - 1)) as f32 / (total_epochs - 1) as f32;
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::Tensor;

    #[test]
    fn plain_sgd_descends_quadratic() {
        // minimise f(w) = 0.5 w² → grad = w.
        let mut p = Param::new(Tensor::full(&[1], 10.0));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let w = p.value.as_slice()[0];
            p.grad = Tensor::full(&[1], w);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.as_slice()[0].abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mom: f32| {
            let mut p = Param::new(Tensor::full(&[1], 10.0));
            let mut opt = Sgd::new(0.01).momentum(mom);
            for _ in 0..50 {
                let w = p.value.as_slice()[0];
                p.grad = Tensor::full(&[1], w);
                opt.step(&mut [&mut p]);
            }
            p.value.as_slice()[0].abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn masked_weights_stay_zero_through_updates() {
        let mut p = Param::new(Tensor::ones(&[4]));
        p.set_mask(Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4]).unwrap())
            .unwrap();
        let mut opt = Sgd::new(0.5).momentum(0.9);
        for _ in 0..5 {
            p.grad = Tensor::full(&[4], -1.0); // pushes weights up
            opt.step(&mut [&mut p]);
        }
        let v = p.value.as_slice();
        assert_eq!(v[1], 0.0);
        assert_eq!(v[3], 0.0);
        assert!(v[0] > 1.0 && v[2] > 1.0);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Param::new(Tensor::full(&[1], 1.0));
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        p.grad = Tensor::zeros(&[1]);
        opt.step(&mut [&mut p]);
        assert!(p.value.as_slice()[0] < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lr() {
        Sgd::new(0.0);
    }

    #[test]
    fn adam_descends_ill_conditioned_quadratic() {
        // f(w) = 0.5*(1000 w0² + w1²): plain SGD struggles, Adam's
        // per-coordinate scaling handles it.
        let mut p = Param::new(Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap());
        let mut opt = Adam::new(0.05);
        for _ in 0..400 {
            let w = p.value.as_slice().to_vec();
            p.grad = Tensor::from_vec(vec![1000.0 * w[0], w[1]], &[2]).unwrap();
            opt.step(&mut [&mut p]);
        }
        let w = p.value.as_slice();
        assert!(w[0].abs() < 1e-2 && w[1].abs() < 0.3, "{w:?}");
    }

    #[test]
    fn adam_respects_masks() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.set_mask(Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap())
            .unwrap();
        let mut opt = Adam::new(0.1);
        for _ in 0..10 {
            p.grad = Tensor::full(&[2], -1.0);
            opt.step(&mut [&mut p]);
        }
        assert_eq!(p.value.as_slice()[1], 0.0);
        assert!(p.value.as_slice()[0] > 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn adam_rejects_zero_lr() {
        Adam::new(0.0);
    }

    #[test]
    fn schedules_behave() {
        assert_eq!(LrSchedule::Constant.lr_at(0.1, 50), 0.1);
        let step = LrSchedule::StepDecay {
            every: 10,
            factor: 0.5,
        };
        assert_eq!(step.lr_at(0.1, 0), 0.1);
        assert!((step.lr_at(0.1, 10) - 0.05).abs() < 1e-8);
        assert!((step.lr_at(0.1, 25) - 0.025).abs() < 1e-8);
        let cos = LrSchedule::Cosine {
            total_epochs: 11,
            min_lr: 0.0,
        };
        assert!((cos.lr_at(0.1, 0) - 0.1).abs() < 1e-6);
        assert!(cos.lr_at(0.1, 10) < 1e-6);
        assert!((cos.lr_at(0.1, 5) - 0.05).abs() < 1e-3); // midpoint
                                                          // Past the horizon stays at min.
        assert!(cos.lr_at(0.1, 99) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn step_decay_zero_interval_panics() {
        LrSchedule::StepDecay {
            every: 0,
            factor: 0.5,
        }
        .lr_at(0.1, 1);
    }
}
