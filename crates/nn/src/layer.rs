use crate::{NnError, Param};
use rtoss_tensor::Tensor;

/// Coarse classification of a layer, used by the pruning framework to
/// find convolution layers and by the hardware model to cost operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LayerKind {
    /// 2-D convolution (the pruning target).
    Conv,
    /// Batch normalisation.
    BatchNorm,
    /// Pointwise non-linearity.
    Activation,
    /// Spatial pooling.
    Pool,
    /// Spatial upsampling.
    Upsample,
    /// Fully-connected layer.
    Linear,
}

/// A differentiable single-input layer.
///
/// `forward` caches whatever the matching `backward` needs; `backward`
/// consumes the cache, accumulates parameter gradients, and returns the
/// gradient with respect to the layer input.
///
/// Implementations must be deterministic given the same inputs and
/// internal state.
pub trait Layer: std::fmt::Debug {
    /// Runs the layer on `x`, caching activations for `backward`.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has an incompatible shape.
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError>;

    /// Propagates `grad_out` back through the layer, accumulating
    /// parameter gradients and returning the input gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if called before `forward`, or
    /// a tensor error if `grad_out` has the wrong shape.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError>;

    /// Mutable access to the layer's trainable parameters (empty for
    /// parameter-free layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// The layer's coarse kind.
    fn kind(&self) -> LayerKind;

    /// Switches between training and evaluation behaviour (batch-norm
    /// statistics). The default is a no-op.
    fn set_training(&mut self, _training: bool) {}

    /// Drops cached activations to free memory after a training step.
    /// The default is a no-op.
    fn clear_cache(&mut self) {}

    /// Downcast to [`Conv2d`](crate::layers::Conv2d) (pruning target).
    fn as_conv2d(&self) -> Option<&crate::layers::Conv2d> {
        None
    }

    /// Mutable downcast to [`Conv2d`](crate::layers::Conv2d).
    fn as_conv2d_mut(&mut self) -> Option<&mut crate::layers::Conv2d> {
        None
    }

    /// Downcast to [`BatchNorm2d`](crate::layers::BatchNorm2d)
    /// (Network Slimming's pruning signal).
    fn as_batchnorm(&self) -> Option<&crate::layers::BatchNorm2d> {
        None
    }

    /// Mutable downcast to [`BatchNorm2d`](crate::layers::BatchNorm2d).
    fn as_batchnorm_mut(&mut self) -> Option<&mut crate::layers::BatchNorm2d> {
        None
    }

    /// Downcast to [`Activation`](crate::layers::Activation).
    fn as_activation(&self) -> Option<&crate::layers::Activation> {
        None
    }

    /// Downcast to [`MaxPool2d`](crate::layers::MaxPool2d).
    fn as_maxpool(&self) -> Option<&crate::layers::MaxPool2d> {
        None
    }

    /// Downcast to [`UpsampleNearest2x`](crate::layers::UpsampleNearest2x).
    fn as_upsample(&self) -> Option<&crate::layers::UpsampleNearest2x> {
        None
    }

    /// Downcast to [`Linear`](crate::layers::Linear).
    fn as_linear(&self) -> Option<&crate::layers::Linear> {
        None
    }
}
