use rtoss_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error produced by layers, graphs, and training utilities.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// `backward` was called before `forward` (no cached activations).
    NoForwardCache {
        /// Layer that was asked to run backward.
        layer: String,
    },
    /// A graph-level invariant was violated (unknown node, cycle,
    /// wrong input arity, ...).
    Graph {
        /// Human-readable description of the violation.
        msg: String,
    },
    /// A loss function received inconsistent predictions/targets.
    Loss {
        /// Human-readable description of the violation.
        msg: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::NoForwardCache { layer } => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::Graph { msg } => write!(f, "graph error: {msg}"),
            NnError::Loss { msg } => write!(f, "loss error: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        let te = TensorError::DataLenMismatch {
            expected: 1,
            actual: 2,
        };
        let ne: NnError = te.clone().into();
        assert!(ne.to_string().contains("tensor error"));
        assert!(Error::source(&ne).is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
