//! Energy estimation: `E = P_static · t + e_mac · billed_MACs +
//! e_byte · weight_bytes`.

use crate::device::{DeviceModel, Workload};
use serde::{Deserialize, Serialize};

/// Per-component energy estimate for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Static (idle-power × latency) component, joules.
    pub static_j: f64,
    /// Compute (per-MAC) component, joules.
    pub compute_j: f64,
    /// Memory (weight-traffic) component, joules.
    pub memory_j: f64,
}

impl EnergyBreakdown {
    /// Computes the breakdown for a workload on a device.
    pub fn compute(device: &DeviceModel, w: &Workload) -> Self {
        let t = device.latency_s(w);
        EnergyBreakdown {
            static_j: device.static_power_w * t,
            compute_j: device.energy_per_mac * w.billed_macs(),
            memory_j: device.energy_per_byte * w.weight_bytes as f64,
        }
    }

    /// Computes the **per-frame** breakdown when `batch` frames are
    /// served in one micro-batched pass.
    ///
    /// The static component covers the batched pass's latency split
    /// evenly across frames, and the weight-traffic component is paid
    /// once per pass; only the compute component is per-frame. With
    /// `batch == 1` this equals [`compute`](Self::compute).
    pub fn compute_batched(device: &DeviceModel, w: &Workload, batch: usize) -> Self {
        let b = batch.max(1) as f64;
        let t = device.batched_latency_s(w, batch);
        EnergyBreakdown {
            static_j: device.static_power_w * t / b,
            compute_j: device.energy_per_mac * w.billed_macs(),
            memory_j: device.energy_per_byte * w.weight_bytes as f64 / b,
        }
    }

    /// Total energy, joules.
    pub fn total_j(&self) -> f64 {
        self.static_j + self.compute_j + self.memory_j
    }

    /// Implied average power, watts, given the workload latency.
    pub fn average_power_w(&self, latency_s: f64) -> f64 {
        self.total_j() / latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SparsityStructure;

    fn yolo(ratio: f64) -> Workload {
        Workload {
            dense_macs: 8_300_000_000,
            effective_macs: (8_300_000_000f64 / ratio) as u64,
            weight_bytes: (28_080_000f64 / ratio) as u64,
            structure: if ratio > 1.0 {
                SparsityStructure::SemiStructured
            } else {
                SparsityStructure::Dense
            },
        }
    }

    #[test]
    fn energy_decreases_with_compression() {
        let dev = DeviceModel::rtx_2080ti();
        let e1 = dev.energy_j(&yolo(1.0));
        let e2 = dev.energy_j(&yolo(2.9));
        let e3 = dev.energy_j(&yolo(4.4));
        assert!(e1 > e2 && e2 > e3, "{e1} {e2} {e3}");
    }

    #[test]
    fn table3_energy_anchor_2ep() {
        // Paper Table 3: YOLOv5s R-TOSS-2EP on 2080 Ti ≈ 0.454 J.
        let dev = DeviceModel::rtx_2080ti();
        let e = dev.energy_j(&yolo(4.4));
        assert!((e - 0.454).abs() / 0.454 < 0.40, "energy {e} J");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let dev = DeviceModel::jetson_tx2();
        let w = yolo(2.9);
        let b = EnergyBreakdown::compute(&dev, &w);
        assert!((b.total_j() - (b.static_j + b.compute_j + b.memory_j)).abs() < 1e-12);
        assert!(b.static_j > 0.0 && b.compute_j > 0.0 && b.memory_j > 0.0);
    }

    #[test]
    fn batching_amortises_static_and_memory_energy() {
        let dev = DeviceModel::jetson_tx2();
        let w = yolo(1.0);
        let single = EnergyBreakdown::compute(&dev, &w);
        let b1 = EnergyBreakdown::compute_batched(&dev, &w, 1);
        assert!((b1.total_j() - single.total_j()).abs() < 1e-12);
        let mut prev = single.total_j();
        for batch in [2usize, 4, 8] {
            let e = EnergyBreakdown::compute_batched(&dev, &w, batch).total_j();
            assert!(e < prev, "batch {batch}: {e} !< {prev}");
            prev = e;
        }
        // Compute energy is irreducible: per-frame total stays above it.
        assert!(prev > EnergyBreakdown::compute_batched(&dev, &w, 8).compute_j * 0.999);
    }

    #[test]
    fn average_power_is_physical() {
        let dev = DeviceModel::rtx_2080ti();
        let w = yolo(1.0);
        let t = dev.latency_s(&w);
        let p = EnergyBreakdown::compute(&dev, &w).average_power_w(t);
        // A 2080 Ti under inference load draws tens to ~260 W.
        assert!(p > 40.0 && p < 300.0, "power {p} W");
    }
}
