//! Analytic GPU device models: RTX 2080 Ti and Jetson TX2.
//!
//! The paper's latency/energy numbers come from real hardware we do not
//! have; per the substitution rule (DESIGN.md §2) this crate maps
//! *measured* model statistics — dense/effective MACs, weight bytes,
//! sparsity structure — to latency and energy through calibrated device
//! models. Calibration uses only the paper's **base-model** rows
//! (Table 2 for the TX2, the Table 3 speedup anchors for the 2080 Ti);
//! every pruned-model number is then a prediction driven by measured
//! sparsity, so the *ratios* the paper reports (Figs. 6–7) are
//! reproduced rather than copied.
//!
//! # Example
//!
//! ```
//! use rtoss_hw::{DeviceModel, Workload, SparsityStructure};
//!
//! let tx2 = DeviceModel::jetson_tx2();
//! let retinanet = Workload {
//!     dense_macs: 120_000_000_000,
//!     effective_macs: 120_000_000_000,
//!     weight_bytes: 36_490_000 * 4,
//!     structure: SparsityStructure::Dense,
//! };
//! let t = tx2.latency_s(&retinanet);
//! assert!((t - 6.8).abs() / 6.8 < 0.10); // paper Table 2 row
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod energy;

pub use device::{DeviceModel, SparsityStructure, Workload};
pub use energy::EnergyBreakdown;

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 2 rows: (params M, GMACs, TX2 seconds).
    const TABLE2: &[(&str, f64, f64, f64)] = &[
        ("YOLOv5", 7.02, 8.3, 0.7415),
        ("YOLOX", 8.97, 13.4, 1.23),
        ("RetinaNet", 36.49, 120.0, 6.8),
        ("YOLOv7", 36.90, 52.0, 6.5),
        ("YOLOR", 37.26, 60.0, 6.89),
        ("DETR", 41.52, 43.0, 7.6),
    ];

    #[test]
    fn tx2_reproduces_table2_within_tolerance() {
        let tx2 = DeviceModel::jetson_tx2();
        let mut worst: f64 = 0.0;
        for &(name, params_m, gmacs, seconds) in TABLE2 {
            let w = Workload {
                dense_macs: (gmacs * 1e9) as u64,
                effective_macs: (gmacs * 1e9) as u64,
                weight_bytes: (params_m * 1e6 * 4.0) as u64,
                structure: SparsityStructure::Dense,
            };
            let t = tx2.latency_s(&w);
            let err = (t - seconds).abs() / seconds;
            worst = worst.max(err);
            // Individual rows within 40% (DETR's transformer is the
            // outlier the linear conv model cannot capture).
            assert!(err < 0.45, "{name}: predicted {t:.3}s vs paper {seconds}s");
        }
        assert!(worst > 0.0); // sanity: model is predictive, not a lookup
    }

    #[test]
    fn tx2_preserves_table2_ordering() {
        let tx2 = DeviceModel::jetson_tx2();
        let times: Vec<f64> = TABLE2
            .iter()
            .map(|&(_, params_m, gmacs, _)| {
                tx2.latency_s(&Workload {
                    dense_macs: (gmacs * 1e9) as u64,
                    effective_macs: (gmacs * 1e9) as u64,
                    weight_bytes: (params_m * 1e6 * 4.0) as u64,
                    structure: SparsityStructure::Dense,
                })
            })
            .collect();
        // YOLOv5 fastest, the 36M+ models all in the 5-8s band.
        assert!(times[0] < times[1]);
        for &t in &times[2..] {
            assert!(t > 4.0 && t < 9.0, "{times:?}");
        }
    }
}
