//! Device models and the latency estimator.

use serde::{Deserialize, Serialize};

/// How a workload's sparsity is structured — determines how much of the
/// theoretical MAC reduction the hardware can realise (§II.B: irregular
/// sparsity "affects memory performance due to changes in data access
/// locality", while structured and semi-structured sparsity map onto
/// hardware acceleration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SparsityStructure {
    /// No pruning.
    Dense,
    /// Whole filters/channels removed: the dense kernels simply shrink —
    /// full realisation of the MAC reduction.
    Structured,
    /// Kernel-pattern sparsity: regular inner loops, grouped kernels —
    /// near-full realisation.
    SemiStructured,
    /// Element-wise irregular sparsity: gather overheads and load
    /// imbalance eat much of the reduction.
    Unstructured,
}

impl SparsityStructure {
    /// Fraction of the *skipped* MACs whose cost is actually recovered.
    pub fn realization(self) -> f64 {
        match self {
            SparsityStructure::Dense => 1.0,
            SparsityStructure::Structured => 1.0,
            SparsityStructure::SemiStructured => 0.92,
            SparsityStructure::Unstructured => 0.45,
        }
    }
}

/// One inference workload: dense and post-pruning effective MAC counts,
/// weight traffic, and sparsity structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// MACs of the unpruned model.
    pub dense_macs: u64,
    /// MACs touching non-zero weights after pruning
    /// (equals `dense_macs` for an unpruned model).
    pub effective_macs: u64,
    /// Weight bytes that must move per frame (compressed size after
    /// pruning, dense size before).
    pub weight_bytes: u64,
    /// Sparsity structure of the pruned model.
    pub structure: SparsityStructure,
}

impl Workload {
    /// The MAC count the device will effectively pay for, given how much
    /// of the sparsity its execution can realise.
    pub fn billed_macs(&self) -> f64 {
        let dense = self.dense_macs as f64;
        let eff = self.effective_macs as f64;
        let skipped = (dense - eff).max(0.0);
        dense - skipped * self.structure.realization()
    }
}

/// A calibrated GPU device model.
///
/// Latency: `t = billed_macs / mac_throughput + weight_bytes /
/// weight_bandwidth` — a two-term model fitted to the paper's
/// base-model rows (see crate docs). Energy: see
/// [`EnergyBreakdown`](crate::EnergyBreakdown).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Device name as printed in reports.
    pub name: String,
    /// Effective MAC throughput (MACs/s) under the paper's eager
    /// PyTorch deployment.
    pub mac_throughput: f64,
    /// Effective weight-streaming bandwidth (bytes/s).
    pub weight_bandwidth: f64,
    /// Idle/static power draw (W) attributed to the inference process.
    pub static_power_w: f64,
    /// Dynamic energy per billed MAC (J).
    pub energy_per_mac: f64,
    /// Dynamic energy per weight byte moved (J).
    pub energy_per_byte: f64,
}

impl DeviceModel {
    /// NVIDIA RTX 2080 Ti, calibrated to the paper's Table 3 anchors
    /// (YOLOv5s BM ≈ 12.8 ms, RetinaNet BM ≈ 136 ms; energy rows of
    /// Table 3).
    pub fn rtx_2080ti() -> Self {
        DeviceModel {
            name: "RTX 2080 Ti".to_string(),
            mac_throughput: 1.10e12,
            weight_bandwidth: 5.35e9,
            static_power_w: 50.0,
            energy_per_mac: 6.8e-11,
            energy_per_byte: 2.0e-9,
        }
    }

    /// NVIDIA Jetson TX2, calibrated by relative least squares over the
    /// paper's six Table 2 rows (t ≈ 0.108 s per M params + 0.0254 s
    /// per GMAC; worst row error 31%, RetinaNet within 3%).
    pub fn jetson_tx2() -> Self {
        DeviceModel {
            name: "Jetson TX2".to_string(),
            mac_throughput: 39.3e9,
            weight_bandwidth: 37.0e6,
            static_power_w: 4.0,
            energy_per_mac: 1.5e-11,
            energy_per_byte: 6.0e-9,
        }
    }

    /// Predicted latency in seconds for one frame.
    pub fn latency_s(&self, w: &Workload) -> f64 {
        w.billed_macs() / self.mac_throughput + w.weight_bytes as f64 / self.weight_bandwidth
    }

    /// Predicted latency in milliseconds.
    pub fn latency_ms(&self, w: &Workload) -> f64 {
        self.latency_s(w) * 1e3
    }

    /// Predicted inference rate in frames per second.
    pub fn fps(&self, w: &Workload) -> f64 {
        1.0 / self.latency_s(w)
    }

    /// Predicted energy in joules for one frame.
    pub fn energy_j(&self, w: &Workload) -> f64 {
        crate::energy::EnergyBreakdown::compute(self, w).total_j()
    }

    /// Predicted latency in seconds for a micro-batch of `batch` frames
    /// served in one pass.
    ///
    /// Compute scales with the batch, but the weights stream from memory
    /// once per pass rather than once per frame — the amortisation that
    /// makes micro-batching worthwhile on bandwidth-bound devices.
    pub fn batched_latency_s(&self, w: &Workload, batch: usize) -> f64 {
        let b = batch.max(1) as f64;
        b * w.billed_macs() / self.mac_throughput + w.weight_bytes as f64 / self.weight_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn yolo_dense() -> Workload {
        Workload {
            dense_macs: 8_300_000_000,
            effective_macs: 8_300_000_000,
            weight_bytes: 28_080_000,
            structure: SparsityStructure::Dense,
        }
    }

    fn yolo_pruned(ratio: f64, structure: SparsityStructure) -> Workload {
        Workload {
            dense_macs: 8_300_000_000,
            effective_macs: (8_300_000_000f64 / ratio) as u64,
            weight_bytes: (28_080_000f64 / ratio) as u64,
            structure,
        }
    }

    #[test]
    fn pruning_reduces_latency() {
        let dev = DeviceModel::rtx_2080ti();
        let dense = dev.latency_ms(&yolo_dense());
        let pruned = dev.latency_ms(&yolo_pruned(4.4, SparsityStructure::SemiStructured));
        assert!(pruned < dense);
        let speedup = dense / pruned;
        // Paper: 1.97× on the 2080 Ti for YOLOv5s 2EP.
        assert!(speedup > 1.5 && speedup < 4.5, "speedup {speedup}");
    }

    #[test]
    fn semi_structured_beats_unstructured_at_equal_sparsity() {
        let dev = DeviceModel::jetson_tx2();
        let semi = dev.latency_ms(&yolo_pruned(2.5, SparsityStructure::SemiStructured));
        let unstructured = dev.latency_ms(&yolo_pruned(2.5, SparsityStructure::Unstructured));
        assert!(
            semi < unstructured,
            "semi {semi} ms !< unstructured {unstructured} ms"
        );
    }

    #[test]
    fn billed_macs_respects_realization() {
        let w = yolo_pruned(2.0, SparsityStructure::Unstructured);
        // Half the MACs skipped, 45% realised → billed = 1 - 0.5*0.45.
        let expect = 8.3e9 * (1.0 - 0.5 * 0.45);
        assert!((w.billed_macs() - expect).abs() / expect < 0.01);
        let dense = yolo_dense();
        assert!((dense.billed_macs() - 8.3e9).abs() < 1.0);
    }

    #[test]
    fn rtx_is_much_faster_than_tx2() {
        let w = yolo_dense();
        let t_rtx = DeviceModel::rtx_2080ti().latency_s(&w);
        let t_tx2 = DeviceModel::jetson_tx2().latency_s(&w);
        assert!(t_tx2 / t_rtx > 20.0, "rtx {t_rtx} tx2 {t_tx2}");
    }

    #[test]
    fn rtx_2080ti_base_model_anchor() {
        // Table 3 anchor: YOLOv5s BM ≈ 12.8 ms on the 2080 Ti.
        let t = DeviceModel::rtx_2080ti().latency_ms(&yolo_dense());
        assert!((t - 12.8).abs() / 12.8 < 0.15, "predicted {t} ms");
    }

    #[test]
    fn serde_round_trip() {
        let dev = DeviceModel::jetson_tx2();
        let json = serde_json::to_string(&dev).unwrap();
        let back: DeviceModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dev);
    }

    #[test]
    fn fps_is_inverse_latency() {
        let dev = DeviceModel::rtx_2080ti();
        let w = yolo_dense();
        assert!((dev.fps(&w) * dev.latency_s(&w) - 1.0).abs() < 1e-9);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn workload_strategy() -> impl Strategy<Value = Workload> {
            (
                1u64..200_000_000_000,
                0.0f64..=1.0,
                1u64..500_000_000,
                prop_oneof![
                    Just(SparsityStructure::Dense),
                    Just(SparsityStructure::Structured),
                    Just(SparsityStructure::SemiStructured),
                    Just(SparsityStructure::Unstructured),
                ],
            )
                .prop_map(|(dense, density, bytes, structure)| Workload {
                    dense_macs: dense,
                    effective_macs: (dense as f64 * density) as u64,
                    weight_bytes: bytes,
                    structure,
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn latency_and_energy_are_positive_and_finite(w in workload_strategy()) {
                for dev in [DeviceModel::rtx_2080ti(), DeviceModel::jetson_tx2()] {
                    let t = dev.latency_s(&w);
                    let e = dev.energy_j(&w);
                    prop_assert!(t > 0.0 && t.is_finite());
                    prop_assert!(e > 0.0 && e.is_finite());
                }
            }

            #[test]
            fn billed_macs_bounded_by_dense_and_effective(w in workload_strategy()) {
                let billed = w.billed_macs();
                prop_assert!(billed <= w.dense_macs as f64 + 1.0);
                prop_assert!(billed >= w.effective_macs as f64 - 1.0);
            }

            #[test]
            fn more_pruning_never_slower(w in workload_strategy()) {
                // Shrinking effective MACs and bytes can only help.
                let mut tighter = w;
                tighter.effective_macs = w.effective_macs / 2;
                tighter.weight_bytes = (w.weight_bytes / 2).max(1);
                for dev in [DeviceModel::rtx_2080ti(), DeviceModel::jetson_tx2()] {
                    prop_assert!(dev.latency_s(&tighter) <= dev.latency_s(&w) + 1e-12);
                    prop_assert!(dev.energy_j(&tighter) <= dev.energy_j(&w) + 1e-12);
                }
            }
        }
    }
}
