//! KITTI-style difficulty tiers and per-difficulty evaluation.
//!
//! The real KITTI benchmark scores detectors separately on Easy /
//! Moderate / Hard splits defined by bounding-box height, occlusion and
//! truncation. Our synthetic scenes carry exact geometry, so the same
//! tiering applies: small or occluded objects are harder, and pruning
//! damage shows up there first (the paper's Fig. 8 highlights a *tiny*
//! car for exactly this reason).

use crate::bbox::{Detection, GroundTruth};
use crate::map::{evaluate_map, MapReport};

/// KITTI-style difficulty tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Difficulty {
    /// Large, unoccluded objects.
    Easy,
    /// Mid-sized or partially occluded objects.
    Moderate,
    /// Small or heavily occluded objects.
    Hard,
}

impl Difficulty {
    /// All tiers, easiest first.
    pub const ALL: [Difficulty; 3] = [Difficulty::Easy, Difficulty::Moderate, Difficulty::Hard];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Difficulty::Easy => "Easy",
            Difficulty::Moderate => "Moderate",
            Difficulty::Hard => "Hard",
        }
    }

    /// Classifies a ground truth by normalised box height and occlusion
    /// fraction (KITTI's min-height / max-occlusion thresholds, mapped
    /// to our normalised coordinates).
    pub fn of(bbox_height: f32, occlusion: f32) -> Self {
        if bbox_height >= 0.16 && occlusion <= 0.05 {
            Difficulty::Easy
        } else if bbox_height >= 0.10 && occlusion <= 0.35 {
            Difficulty::Moderate
        } else {
            Difficulty::Hard
        }
    }
}

/// A ground truth annotated with its difficulty inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieredTruth {
    /// The annotation.
    pub truth: GroundTruth,
    /// Fraction of the object covered by another object, in `[0, 1]`.
    pub occlusion: f32,
}

impl TieredTruth {
    /// The tier this truth belongs to.
    pub fn difficulty(&self) -> Difficulty {
        Difficulty::of(self.truth.bbox.h, self.occlusion)
    }
}

/// Per-difficulty mAP results (KITTI's reporting format).
#[derive(Debug, Clone, PartialEq)]
pub struct TieredMapReport {
    /// mAP per tier, in `Difficulty::ALL` order. `None` when the split
    /// has no ground truths.
    pub per_tier: Vec<Option<MapReport>>,
}

impl TieredMapReport {
    /// The report for one tier, if that tier had ground truths.
    pub fn tier(&self, d: Difficulty) -> Option<&MapReport> {
        let idx = Difficulty::ALL.iter().position(|&t| t == d)?;
        self.per_tier[idx].as_ref()
    }
}

/// Evaluates mAP per difficulty tier. For each tier, only ground truths
/// of that tier count (detections are shared — a detection matching an
/// out-of-tier truth is neither a TP nor an FP for that tier, which we
/// approximate by dropping truths outside the tier).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn evaluate_map_tiered(
    detections: &[Vec<Detection>],
    truths: &[Vec<TieredTruth>],
    num_classes: usize,
    iou_threshold: f32,
) -> TieredMapReport {
    assert_eq!(detections.len(), truths.len(), "images must align");
    let per_tier = Difficulty::ALL
        .iter()
        .map(|&tier| {
            let filtered: Vec<Vec<GroundTruth>> = truths
                .iter()
                .map(|ts| {
                    ts.iter()
                        .filter(|t| t.difficulty() == tier)
                        .map(|t| t.truth)
                        .collect()
                })
                .collect();
            if filtered.iter().all(Vec::is_empty) {
                None
            } else {
                Some(evaluate_map(
                    detections,
                    &filtered,
                    num_classes,
                    iou_threshold,
                ))
            }
        })
        .collect();
    TieredMapReport { per_tier }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;

    fn truth(h: f32, occ: f32) -> TieredTruth {
        TieredTruth {
            truth: GroundTruth {
                bbox: BBox::new(0.5, 0.5, 0.2, h),
                class: 0,
            },
            occlusion: occ,
        }
    }

    #[test]
    fn tier_classification() {
        assert_eq!(Difficulty::of(0.3, 0.0), Difficulty::Easy);
        assert_eq!(Difficulty::of(0.12, 0.0), Difficulty::Moderate);
        assert_eq!(Difficulty::of(0.3, 0.2), Difficulty::Moderate);
        assert_eq!(Difficulty::of(0.05, 0.0), Difficulty::Hard);
        assert_eq!(Difficulty::of(0.3, 0.8), Difficulty::Hard);
        assert_eq!(truth(0.2, 0.0).difficulty(), Difficulty::Easy);
    }

    #[test]
    fn tiered_map_separates_scales() {
        // One easy (big) and one hard (tiny) truth; detector only finds
        // the big one → Easy mAP 1.0, Hard mAP 0.0.
        let truths = vec![vec![truth(0.3, 0.0), {
            let mut t = truth(0.05, 0.0);
            t.truth.bbox = BBox::new(0.1, 0.1, 0.05, 0.05);
            t
        }]];
        let dets = vec![vec![Detection {
            bbox: BBox::new(0.5, 0.5, 0.2, 0.3),
            score: 0.9,
            class: 0,
        }]];
        let r = evaluate_map_tiered(&dets, &truths, 1, 0.5);
        assert!((r.tier(Difficulty::Easy).unwrap().map - 1.0).abs() < 1e-9);
        assert!((r.tier(Difficulty::Hard).unwrap().map).abs() < 1e-9);
        assert!(r.tier(Difficulty::Moderate).is_none());
    }

    #[test]
    fn empty_tier_is_none() {
        let r = evaluate_map_tiered(&[vec![]], &[vec![]], 1, 0.5);
        assert!(r.per_tier.iter().all(Option::is_none));
    }

    #[test]
    fn names() {
        assert_eq!(Difficulty::Easy.name(), "Easy");
        assert_eq!(Difficulty::ALL.len(), 3);
    }
}
