//! PPM image output with box overlays (used to regenerate Fig. 8's
//! qualitative comparison).

use crate::bbox::BBox;
use rtoss_tensor::Tensor;
use std::io::{self, Write};
use std::path::Path;

/// An overlay box with a colour and a label.
#[derive(Debug, Clone)]
pub struct Overlay {
    /// The box to draw (normalised coordinates).
    pub bbox: BBox,
    /// RGB colour in `[0, 1]`.
    pub color: [f32; 3],
    /// Label written into the caption list (PPM has no text).
    pub label: String,
}

/// Renders a CHW image `(3, S, S)` in `[0, 1]` with box outlines into a
/// binary PPM (P6) file.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be written, or
/// `InvalidInput` if the tensor is not `(3, S, S)`.
pub fn write_ppm_with_boxes(path: &Path, image: &Tensor, overlays: &[Overlay]) -> io::Result<()> {
    if image.rank() != 3 || image.shape()[0] != 3 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("expected (3, H, W) image, got {:?}", image.shape()),
        ));
    }
    let (h, w) = (image.shape()[1], image.shape()[2]);
    let mut rgb = image.as_slice().to_vec();

    let mut draw_px = |x: usize, y: usize, color: [f32; 3]| {
        if x < w && y < h {
            for c in 0..3 {
                rgb[(c * h + y) * w + x] = color[c];
            }
        }
    };
    for ov in overlays {
        let (x1, y1, x2, y2) = ov.bbox.corners();
        let (px1, py1) = (
            (x1.max(0.0) * w as f32) as usize,
            (y1.max(0.0) * h as f32) as usize,
        );
        let (px2, py2) = (
            ((x2.min(1.0) * w as f32) as usize).min(w.saturating_sub(1)),
            ((y2.min(1.0) * h as f32) as usize).min(h.saturating_sub(1)),
        );
        for x in px1..=px2 {
            draw_px(x, py1, ov.color);
            draw_px(x, py2, ov.color);
        }
        for y in py1..=py2 {
            draw_px(px1, y, ov.color);
            draw_px(px2, y, ov.color);
        }
    }

    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P6\n{w} {h}\n255")?;
    let mut buf = Vec::with_capacity(3 * h * w);
    for y in 0..h {
        for x in 0..w {
            for c in 0..3 {
                buf.push((rgb[(c * h + y) * w + x].clamp(0.0, 1.0) * 255.0) as u8);
            }
        }
    }
    f.write_all(&buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_valid_ppm() {
        let dir = std::env::temp_dir().join("rtoss_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ppm");
        let img = Tensor::full(&[3, 8, 8], 0.5);
        let ovs = vec![Overlay {
            bbox: BBox::new(0.5, 0.5, 0.5, 0.5),
            color: [1.0, 0.0, 0.0],
            label: "Car 0.9".into(),
        }];
        write_ppm_with_boxes(&path, &img, &ovs).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n8 8\n255\n"));
        assert_eq!(bytes.len(), 11 + 3 * 64);
        // Some pixel got the red outline.
        assert!(bytes[11..].chunks(3).any(|p| p == [255, 0, 0]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_shape() {
        let dir = std::env::temp_dir();
        let img = Tensor::zeros(&[1, 8, 8]);
        assert!(write_ppm_with_boxes(&dir.join("x.ppm"), &img, &[]).is_err());
    }

    #[test]
    fn out_of_frame_boxes_are_clipped() {
        let dir = std::env::temp_dir().join("rtoss_ppm_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.ppm");
        let img = Tensor::zeros(&[3, 8, 8]);
        let ovs = vec![Overlay {
            bbox: BBox::new(0.95, 0.95, 0.5, 0.5),
            color: [0.0, 1.0, 0.0],
            label: "edge".into(),
        }];
        write_ppm_with_boxes(&path, &img, &ovs).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
