//! Bounding boxes, intersection-over-union, and non-maximum suppression.

/// An axis-aligned box in normalised centre/size coordinates.
///
/// # Example
///
/// ```
/// use rtoss_data::BBox;
///
/// let a = BBox::new(0.5, 0.5, 0.4, 0.4);
/// assert!((a.iou(&a) - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Centre x (normalised).
    pub cx: f32,
    /// Centre y (normalised).
    pub cy: f32,
    /// Width (normalised).
    pub w: f32,
    /// Height (normalised).
    pub h: f32,
}

impl BBox {
    /// Creates a box; negative sizes are clamped to zero.
    pub fn new(cx: f32, cy: f32, w: f32, h: f32) -> Self {
        BBox {
            cx,
            cy,
            w: w.max(0.0),
            h: h.max(0.0),
        }
    }

    /// Corner representation `(x1, y1, x2, y2)`.
    pub fn corners(&self) -> (f32, f32, f32, f32) {
        (
            self.cx - self.w / 2.0,
            self.cy - self.h / 2.0,
            self.cx + self.w / 2.0,
            self.cy + self.h / 2.0,
        )
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Intersection-over-union with another box, in `[0, 1]`.
    pub fn iou(&self, other: &BBox) -> f32 {
        let (ax1, ay1, ax2, ay2) = self.corners();
        let (bx1, by1, bx2, by2) = other.corners();
        let ix = (ax2.min(bx2) - ax1.max(bx1)).max(0.0);
        let iy = (ay2.min(by2) - ay1.max(by1)).max(0.0);
        let inter = ix * iy;
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

/// A scored, classified detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Detected box.
    pub bbox: BBox,
    /// Confidence score in `[0, 1]`.
    pub score: f32,
    /// Class index.
    pub class: usize,
}

/// A ground-truth annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruth {
    /// Annotated box.
    pub bbox: BBox,
    /// Class index.
    pub class: usize,
}

/// Class-aware non-maximum suppression: keeps the highest-scoring box of
/// every overlapping (IoU > `iou_threshold`) same-class cluster.
///
/// Detections are returned sorted by descending score.
///
/// # Example
///
/// ```
/// use rtoss_data::{nms, BBox, Detection};
///
/// let dets = vec![
///     Detection { bbox: BBox::new(0.5, 0.5, 0.2, 0.2), score: 0.9, class: 0 },
///     Detection { bbox: BBox::new(0.51, 0.5, 0.2, 0.2), score: 0.6, class: 0 },
/// ];
/// assert_eq!(nms(&dets, 0.5).len(), 1);
/// ```
pub fn nms(detections: &[Detection], iou_threshold: f32) -> Vec<Detection> {
    let mut sorted: Vec<Detection> = detections.to_vec();
    sorted.sort_by(|a, b| b.score.total_cmp(&a.score));
    let mut keep: Vec<Detection> = Vec::new();
    for d in sorted {
        let suppressed = keep
            .iter()
            .any(|k| k.class == d.class && k.bbox.iou(&d.bbox) > iou_threshold);
        if !suppressed {
            keep.push(d);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_identity_and_disjoint() {
        let a = BBox::new(0.3, 0.3, 0.2, 0.2);
        let b = BBox::new(0.8, 0.8, 0.1, 0.1);
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        // Two unit-area-0.04 boxes offset by half a width: inter = 0.02*0.2?
        let a = BBox::new(0.5, 0.5, 0.2, 0.2);
        let b = BBox::new(0.6, 0.5, 0.2, 0.2);
        // intersection = 0.1 * 0.2 = 0.02; union = 0.04+0.04-0.02 = 0.06.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-5);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-7, "symmetry");
    }

    #[test]
    fn iou_is_bounded() {
        let a = BBox::new(0.5, 0.5, 0.3, 0.3);
        for &(x, y) in &[(0.1f32, 0.2f32), (0.5, 0.5), (0.9, 0.1)] {
            let b = BBox::new(x, y, 0.25, 0.15);
            let v = a.iou(&b);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn zero_area_box() {
        let a = BBox::new(0.5, 0.5, 0.0, 0.0);
        let b = BBox::new(0.5, 0.5, 0.2, 0.2);
        assert_eq!(a.iou(&b), 0.0);
        assert_eq!(a.iou(&a), 0.0);
    }

    #[test]
    fn negative_size_clamped() {
        let a = BBox::new(0.5, 0.5, -0.2, 0.3);
        assert_eq!(a.w, 0.0);
    }

    #[test]
    fn nms_keeps_highest_and_respects_classes() {
        let dets = vec![
            Detection {
                bbox: BBox::new(0.5, 0.5, 0.2, 0.2),
                score: 0.7,
                class: 0,
            },
            Detection {
                bbox: BBox::new(0.5, 0.5, 0.2, 0.2),
                score: 0.9,
                class: 0,
            },
            // Same place but different class: survives.
            Detection {
                bbox: BBox::new(0.5, 0.5, 0.2, 0.2),
                score: 0.5,
                class: 1,
            },
            // Far away same class: survives.
            Detection {
                bbox: BBox::new(0.1, 0.1, 0.1, 0.1),
                score: 0.4,
                class: 0,
            },
        ];
        let kept = nms(&dets, 0.5);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].score, 0.9);
        assert!(kept.iter().any(|d| d.class == 1));
    }

    #[test]
    fn nms_empty_input() {
        assert!(nms(&[], 0.5).is_empty());
    }

    #[test]
    fn nms_output_sorted_by_score() {
        let dets: Vec<Detection> = (0..10)
            .map(|i| Detection {
                bbox: BBox::new(0.05 + 0.09 * i as f32, 0.5, 0.05, 0.05),
                score: (i as f32) / 10.0,
                class: 0,
            })
            .collect();
        let kept = nms(&dets, 0.5);
        for w in kept.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
