//! Procedural KITTI-like traffic scene generator.
//!
//! Scenes mimic the statistics that matter for the paper's evaluation:
//! road/sky backgrounds, and objects of three KITTI classes — cars
//! (wide, dark-bodied), pedestrians (tall, narrow) and cyclists
//! (intermediate, two-wheeled) — placed in the lower (road) half with
//! class-typical aspect ratios and exact ground-truth boxes. Pixel noise
//! and brightness jitter prevent trivial memorisation.

use crate::bbox::{BBox, GroundTruth};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rtoss_tensor::Tensor;

/// The KITTI-derived object classes used throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KittiClass {
    /// Passenger car (wide, low).
    Car,
    /// Pedestrian (narrow, tall).
    Pedestrian,
    /// Cyclist (intermediate).
    Cyclist,
}

impl KittiClass {
    /// Number of classes.
    pub const COUNT: usize = 3;

    /// Class index (stable across the workspace).
    pub fn index(self) -> usize {
        match self {
            KittiClass::Car => 0,
            KittiClass::Pedestrian => 1,
            KittiClass::Cyclist => 2,
        }
    }

    /// Class from index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= KittiClass::COUNT`.
    pub fn from_index(i: usize) -> Self {
        match i {
            0 => KittiClass::Car,
            1 => KittiClass::Pedestrian,
            2 => KittiClass::Cyclist,
            _ => panic!("class index {i} out of range"),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            KittiClass::Car => "Car",
            KittiClass::Pedestrian => "Pedestrian",
            KittiClass::Cyclist => "Cyclist",
        }
    }
}

/// Configuration for scene generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneConfig {
    /// Square image extent in pixels.
    pub img_size: usize,
    /// Minimum objects per scene.
    pub min_objects: usize,
    /// Maximum objects per scene.
    pub max_objects: usize,
    /// Standard deviation of additive pixel noise.
    pub noise_std: f32,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            img_size: 64,
            min_objects: 1,
            max_objects: 3,
            noise_std: 0.02,
        }
    }
}

/// One generated scene: a CHW RGB image in `[0, 1]` plus ground truth.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Image tensor `(3, S, S)`.
    pub image: Tensor,
    /// Ground-truth annotations.
    pub truths: Vec<GroundTruth>,
}

fn paint_rect(img: &mut [f32], s: usize, x1: f32, y1: f32, x2: f32, y2: f32, rgb: [f32; 3]) {
    let (px1, py1) = (
        ((x1 * s as f32) as usize).min(s - 1),
        ((y1 * s as f32) as usize).min(s - 1),
    );
    let (px2, py2) = (
        ((x2 * s as f32) as usize).min(s),
        ((y2 * s as f32) as usize).min(s),
    );
    for c in 0..3 {
        for y in py1..py2 {
            for x in px1..px2 {
                img[(c * s + y) * s + x] = rgb[c];
            }
        }
    }
}

/// Generates one scene from a dedicated RNG.
pub fn generate_scene<R: Rng>(cfg: &SceneConfig, rng: &mut R) -> Scene {
    let s = cfg.img_size;
    let mut img = vec![0.0f32; 3 * s * s];

    // Sky: blue-ish gradient over the top 45%.
    let horizon = 0.45;
    let brightness: f32 = rng.gen_range(0.8..1.2);
    for y in 0..s {
        let fy = y as f32 / s as f32;
        let (r, g, b) = if fy < horizon {
            let t = fy / horizon;
            (0.45 - 0.1 * t, 0.6 - 0.1 * t, 0.85 - 0.15 * t)
        } else {
            // Road: grey, darker with distance.
            let t = (fy - horizon) / (1.0 - horizon);
            (0.32 + 0.1 * t, 0.32 + 0.1 * t, 0.33 + 0.1 * t)
        };
        for x in 0..s {
            img[y * s + x] = (r * brightness).clamp(0.0, 1.0);
            img[s * s + y * s + x] = (g * brightness).clamp(0.0, 1.0);
            img[2 * s * s + y * s + x] = (b * brightness).clamp(0.0, 1.0);
        }
    }
    // Lane markings.
    let lane_x = rng.gen_range(0.4..0.6);
    for y in (s as f32 * horizon) as usize..s {
        if (y / 3) % 2 == 0 {
            let x = (lane_x * s as f32) as usize;
            for c in 0..3 {
                img[(c * s + y) * s + x.min(s - 1)] = 0.9;
            }
        }
    }

    let n_objects = rng.gen_range(cfg.min_objects..=cfg.max_objects);
    let mut truths = Vec::with_capacity(n_objects);
    for _ in 0..n_objects {
        let class = KittiClass::from_index(rng.gen_range(0..KittiClass::COUNT));
        // Class-typical normalised sizes (KITTI-ish aspect ratios).
        let (w, h) = match class {
            KittiClass::Car => (rng.gen_range(0.2..0.38), rng.gen_range(0.1..0.18)),
            KittiClass::Pedestrian => (rng.gen_range(0.06..0.1), rng.gen_range(0.18..0.3)),
            KittiClass::Cyclist => (rng.gen_range(0.1..0.16), rng.gen_range(0.14..0.22)),
        };
        // Objects sit on the road (lower half), fully inside the frame.
        let cx = rng.gen_range(w / 2.0..1.0 - w / 2.0);
        let cy = rng.gen_range((horizon + h / 2.0).min(0.9)..1.0 - h / 2.0);
        let (x1, y1, x2, y2) = BBox::new(cx, cy, w, h).corners();
        match class {
            KittiClass::Car => {
                // Dark body with a lighter window band on top.
                let body: [f32; 3] = [
                    rng.gen_range(0.05..0.25),
                    rng.gen_range(0.05..0.3),
                    rng.gen_range(0.5..0.9),
                ];
                paint_rect(&mut img, s, x1, y1, x2, y2, body);
                paint_rect(
                    &mut img,
                    s,
                    x1 + w * 0.2,
                    y1,
                    x2 - w * 0.2,
                    y1 + h * 0.35,
                    [0.75, 0.85, 0.95],
                );
            }
            KittiClass::Pedestrian => {
                // Bright warm vertical figure with a darker head.
                let body = [
                    rng.gen_range(0.7..0.95),
                    rng.gen_range(0.15..0.35),
                    rng.gen_range(0.1..0.3),
                ];
                paint_rect(&mut img, s, x1, y1 + h * 0.25, x2, y2, body);
                paint_rect(
                    &mut img,
                    s,
                    x1 + w * 0.2,
                    y1,
                    x2 - w * 0.2,
                    y1 + h * 0.25,
                    [0.85, 0.7, 0.55],
                );
            }
            KittiClass::Cyclist => {
                // Green frame with two dark wheels.
                let frame = [
                    rng.gen_range(0.1..0.3),
                    rng.gen_range(0.6..0.9),
                    rng.gen_range(0.15..0.35),
                ];
                paint_rect(&mut img, s, x1, y1, x2, y1 + h * 0.6, frame);
                paint_rect(
                    &mut img,
                    s,
                    x1,
                    y1 + h * 0.6,
                    x1 + w * 0.4,
                    y2,
                    [0.05, 0.05, 0.05],
                );
                paint_rect(
                    &mut img,
                    s,
                    x2 - w * 0.4,
                    y1 + h * 0.6,
                    x2,
                    y2,
                    [0.05, 0.05, 0.05],
                );
            }
        }
        truths.push(GroundTruth {
            bbox: BBox::new(cx, cy, w, h),
            class: class.index(),
        });
    }

    // Additive noise.
    if cfg.noise_std > 0.0 {
        for v in &mut img {
            *v = (*v + cfg.noise_std * (rng.gen_range(-1.0f32..1.0) + rng.gen_range(-1.0f32..1.0)))
                .clamp(0.0, 1.0);
        }
    }

    Scene {
        image: Tensor::from_vec(img, &[3, s, s]).expect("scene buffer matches shape"),
        truths,
    }
}

impl Scene {
    /// Annotates each ground truth with its occlusion fraction: objects
    /// are painted in order, so a later object covering part of an
    /// earlier one occludes it. Returns KITTI-style tiered truths for
    /// [`evaluate_map_tiered`](crate::difficulty::evaluate_map_tiered).
    pub fn tiered_truths(&self) -> Vec<crate::difficulty::TieredTruth> {
        let overlap_fraction = |a: &BBox, b: &BBox| -> f32 {
            let (ax1, ay1, ax2, ay2) = a.corners();
            let (bx1, by1, bx2, by2) = b.corners();
            let ix = (ax2.min(bx2) - ax1.max(bx1)).max(0.0);
            let iy = (ay2.min(by2) - ay1.max(by1)).max(0.0);
            if a.area() <= 0.0 {
                0.0
            } else {
                (ix * iy) / a.area()
            }
        };
        self.truths
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let occlusion = self.truths[i + 1..]
                    .iter()
                    .map(|later| overlap_fraction(&t.bbox, &later.bbox))
                    .fold(0.0f32, f32::max);
                crate::difficulty::TieredTruth {
                    truth: *t,
                    occlusion,
                }
            })
            .collect()
    }

    /// Horizontally mirrors the scene (image and boxes) — the standard
    /// detector augmentation.
    pub fn flip_horizontal(&self) -> Scene {
        let (c, h, w) = (
            self.image.shape()[0],
            self.image.shape()[1],
            self.image.shape()[2],
        );
        let src = self.image.as_slice();
        let mut out = vec![0.0f32; src.len()];
        for ci in 0..c {
            for y in 0..h {
                let row = (ci * h + y) * w;
                for x in 0..w {
                    out[row + x] = src[row + (w - 1 - x)];
                }
            }
        }
        Scene {
            image: Tensor::from_vec(out, self.image.shape())
                .expect("flip preserves the buffer size"),
            truths: self
                .truths
                .iter()
                .map(|t| GroundTruth {
                    bbox: BBox::new(1.0 - t.bbox.cx, t.bbox.cy, t.bbox.w, t.bbox.h),
                    class: t.class,
                })
                .collect(),
        }
    }
}

/// Generates a deterministic dataset of `n` scenes from `seed`.
pub fn generate_dataset(cfg: &SceneConfig, n: usize, seed: u64) -> Vec<Scene> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| generate_scene(cfg, &mut rng)).collect()
}

/// Doubles a dataset with horizontal flips (deterministic augmentation).
pub fn augment_with_flips(scenes: &[Scene]) -> Vec<Scene> {
    let mut out = Vec::with_capacity(scenes.len() * 2);
    for s in scenes {
        out.push(s.clone());
        out.push(s.flip_horizontal());
    }
    out
}

/// Stacks scene images into a batch tensor `(N, 3, S, S)`.
///
/// # Panics
///
/// Panics if `scenes` is empty or images disagree in size.
pub fn batch_images(scenes: &[Scene]) -> Tensor {
    assert!(!scenes.is_empty(), "cannot batch zero scenes");
    let shape = scenes[0].image.shape().to_vec();
    let per = scenes[0].image.numel();
    let mut data = Vec::with_capacity(scenes.len() * per);
    for sc in scenes {
        assert_eq!(
            sc.image.shape(),
            shape.as_slice(),
            "inconsistent image sizes"
        );
        data.extend_from_slice(sc.image.as_slice());
    }
    Tensor::from_vec(data, &[scenes.len(), shape[0], shape[1], shape[2]])
        .expect("batch buffer matches shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = SceneConfig::default();
        let a = generate_dataset(&cfg, 3, 7);
        let b = generate_dataset(&cfg, 3, 7);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.image.as_slice(), y.image.as_slice());
            assert_eq!(x.truths, y.truths);
        }
        let c = generate_dataset(&cfg, 3, 8);
        assert_ne!(a[0].image.as_slice(), c[0].image.as_slice());
    }

    #[test]
    fn pixels_in_unit_range() {
        let sc = generate_dataset(&SceneConfig::default(), 2, 1);
        for s in &sc {
            assert!(s.image.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn boxes_are_inside_frame_and_on_road() {
        let scenes = generate_dataset(&SceneConfig::default(), 20, 2);
        for sc in &scenes {
            for t in &sc.truths {
                let (x1, y1, x2, y2) = t.bbox.corners();
                assert!(x1 >= -1e-5 && y1 >= -1e-5 && x2 <= 1.0 + 1e-5 && y2 <= 1.0 + 1e-5);
                assert!(t.bbox.cy > 0.4, "object in the sky: {t:?}");
                assert!(t.class < KittiClass::COUNT);
            }
        }
    }

    #[test]
    fn object_count_respects_config() {
        let cfg = SceneConfig {
            min_objects: 2,
            max_objects: 4,
            ..SceneConfig::default()
        };
        for sc in generate_dataset(&cfg, 10, 3) {
            assert!((2..=4).contains(&sc.truths.len()));
        }
    }

    #[test]
    fn classes_render_distinct_pixels() {
        // A car scene and a pedestrian scene should differ substantially.
        let cfg = SceneConfig {
            noise_std: 0.0,
            ..SceneConfig::default()
        };
        let scenes = generate_dataset(&cfg, 30, 4);
        let cars: Vec<&Scene> = scenes
            .iter()
            .filter(|s| s.truths.iter().all(|t| t.class == 0) && s.truths.len() == 1)
            .collect();
        let peds: Vec<&Scene> = scenes
            .iter()
            .filter(|s| s.truths.iter().all(|t| t.class == 1) && s.truths.len() == 1)
            .collect();
        if let (Some(c), Some(p)) = (cars.first(), peds.first()) {
            let diff: f32 = c
                .image
                .as_slice()
                .iter()
                .zip(p.image.as_slice())
                .map(|(&a, &b)| (a - b).abs())
                .sum();
            assert!(diff > 1.0, "car and pedestrian scenes look identical");
        }
    }

    #[test]
    fn batching_shapes() {
        let scenes = generate_dataset(&SceneConfig::default(), 4, 5);
        let b = batch_images(&scenes);
        assert_eq!(b.shape(), &[4, 3, 64, 64]);
        assert_eq!(&b.as_slice()[..64 * 64 * 3], scenes[0].image.as_slice());
    }

    #[test]
    fn class_round_trip() {
        for i in 0..KittiClass::COUNT {
            assert_eq!(KittiClass::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_class_index_panics() {
        KittiClass::from_index(3);
    }

    #[test]
    fn flip_mirrors_boxes_and_pixels() {
        let sc = &generate_dataset(&SceneConfig::default(), 1, 6)[0];
        let fl = sc.flip_horizontal();
        assert_eq!(fl.truths.len(), sc.truths.len());
        for (a, b) in sc.truths.iter().zip(&fl.truths) {
            assert!((a.bbox.cx + b.bbox.cx - 1.0).abs() < 1e-6);
            assert_eq!(a.bbox.cy, b.bbox.cy);
            assert_eq!(a.class, b.class);
        }
        // Flipping twice restores the image exactly.
        let back = fl.flip_horizontal();
        assert_eq!(back.image.as_slice(), sc.image.as_slice());
    }

    #[test]
    fn augmentation_doubles_the_dataset() {
        let scenes = generate_dataset(&SceneConfig::default(), 3, 7);
        let aug = augment_with_flips(&scenes);
        assert_eq!(aug.len(), 6);
        assert_eq!(aug[0].image.as_slice(), scenes[0].image.as_slice());
        assert_ne!(aug[1].image.as_slice(), scenes[0].image.as_slice());
    }

    #[test]
    fn tiered_truths_detect_overlap() {
        // Hand-build a scene with an occluded object.
        let scene = Scene {
            image: Tensor::zeros(&[3, 8, 8]),
            truths: vec![
                GroundTruth {
                    bbox: crate::BBox::new(0.5, 0.5, 0.4, 0.4),
                    class: 0,
                },
                GroundTruth {
                    bbox: crate::BBox::new(0.5, 0.5, 0.2, 0.2),
                    class: 1,
                },
            ],
        };
        let tiered = scene.tiered_truths();
        // First object is 25% covered by the second (painted later).
        assert!((tiered[0].occlusion - 0.25).abs() < 1e-5);
        // Last-painted object is never occluded.
        assert_eq!(tiered[1].occlusion, 0.0);
    }
}
