//! Mean average precision (mAP) evaluation.
//!
//! Implements the standard all-point-interpolated AP at a configurable
//! IoU threshold (the paper reports mAP with IoU 0.5). Detections are
//! matched greedily in descending score order; each ground truth can be
//! matched at most once.

use crate::bbox::{Detection, GroundTruth};

/// Per-class and overall mAP results.
#[derive(Debug, Clone, PartialEq)]
pub struct MapReport {
    /// Average precision per class index (`None` if the class has no
    /// ground truths in the dataset).
    pub per_class: Vec<Option<f64>>,
    /// Mean over classes that have ground truths, in `[0, 1]`.
    pub map: f64,
}

impl MapReport {
    /// mAP in percent (as the paper's tables print it).
    pub fn map_percent(&self) -> f64 {
        self.map * 100.0
    }
}

/// Evaluates mAP over a dataset.
///
/// `detections[i]` / `truths[i]` belong to image `i`; class indices must
/// be `< num_classes`.
///
/// # Panics
///
/// Panics if the two slices have different lengths or any class index is
/// out of range.
pub fn evaluate_map(
    detections: &[Vec<Detection>],
    truths: &[Vec<GroundTruth>],
    num_classes: usize,
    iou_threshold: f32,
) -> MapReport {
    assert_eq!(
        detections.len(),
        truths.len(),
        "detections and truths must cover the same images"
    );
    let mut per_class = Vec::with_capacity(num_classes);
    let mut sum = 0.0;
    let mut counted = 0usize;
    for c in 0..num_classes {
        let ap = average_precision_for_class(detections, truths, c, iou_threshold);
        if let Some(v) = ap {
            sum += v;
            counted += 1;
        }
        per_class.push(ap);
    }
    MapReport {
        per_class,
        map: if counted == 0 {
            0.0
        } else {
            sum / counted as f64
        },
    }
}

fn average_precision_for_class(
    detections: &[Vec<Detection>],
    truths: &[Vec<GroundTruth>],
    class: usize,
    iou_threshold: f32,
) -> Option<f64> {
    // Gather ground truths of this class per image.
    let gt_per_image: Vec<Vec<&GroundTruth>> = truths
        .iter()
        .map(|ts| ts.iter().filter(|t| t.class == class).collect())
        .collect();
    let total_gt: usize = gt_per_image.iter().map(Vec::len).sum();
    if total_gt == 0 {
        return None;
    }

    // All detections of this class, tagged with their image.
    let mut dets: Vec<(usize, &Detection)> = detections
        .iter()
        .enumerate()
        .flat_map(|(i, ds)| ds.iter().filter(|d| d.class == class).map(move |d| (i, d)))
        .collect();
    dets.sort_by(|a, b| b.1.score.total_cmp(&a.1.score));

    let mut matched: Vec<Vec<bool>> = gt_per_image.iter().map(|g| vec![false; g.len()]).collect();
    let mut tp = Vec::with_capacity(dets.len());
    for (img, det) in dets {
        let mut best = (0.0f32, None::<usize>);
        for (gi, gt) in gt_per_image[img].iter().enumerate() {
            if matched[img][gi] {
                continue;
            }
            let iou = det.bbox.iou(&gt.bbox);
            if iou > best.0 {
                best = (iou, Some(gi));
            }
        }
        match best {
            (iou, Some(gi)) if iou >= iou_threshold => {
                matched[img][gi] = true;
                tp.push(true);
            }
            _ => tp.push(false),
        }
    }

    // Precision/recall curve + all-point interpolation.
    let mut cum_tp = 0usize;
    let mut precisions = Vec::with_capacity(tp.len());
    let mut recalls = Vec::with_capacity(tp.len());
    for (i, &is_tp) in tp.iter().enumerate() {
        if is_tp {
            cum_tp += 1;
        }
        precisions.push(cum_tp as f64 / (i + 1) as f64);
        recalls.push(cum_tp as f64 / total_gt as f64);
    }
    // Make precision monotone non-increasing from the right.
    for i in (0..precisions.len().saturating_sub(1)).rev() {
        if precisions[i] < precisions[i + 1] {
            precisions[i] = precisions[i + 1];
        }
    }
    // Integrate over recall.
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for (p, r) in precisions.iter().zip(recalls.iter()) {
        ap += p * (r - prev_recall);
        prev_recall = *r;
    }
    Some(ap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;

    fn gt(cx: f32, cy: f32, class: usize) -> GroundTruth {
        GroundTruth {
            bbox: BBox::new(cx, cy, 0.2, 0.2),
            class,
        }
    }

    fn det(cx: f32, cy: f32, score: f32, class: usize) -> Detection {
        Detection {
            bbox: BBox::new(cx, cy, 0.2, 0.2),
            score,
            class,
        }
    }

    #[test]
    fn perfect_detections_score_one() {
        let truths = vec![vec![gt(0.3, 0.3, 0), gt(0.7, 0.7, 1)]];
        let dets = vec![vec![det(0.3, 0.3, 0.9, 0), det(0.7, 0.7, 0.8, 1)]];
        let r = evaluate_map(&dets, &truths, 2, 0.5);
        assert!((r.map - 1.0).abs() < 1e-9, "map {}", r.map);
        assert!((r.map_percent() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn missed_detection_halves_recall() {
        let truths = vec![vec![gt(0.3, 0.3, 0), gt(0.7, 0.7, 0)]];
        let dets = vec![vec![det(0.3, 0.3, 0.9, 0)]];
        let r = evaluate_map(&dets, &truths, 1, 0.5);
        // One of two GTs found at precision 1 → AP = 0.5.
        assert!((r.map - 0.5).abs() < 1e-9, "map {}", r.map);
    }

    #[test]
    fn false_positive_lowers_precision() {
        let truths = vec![vec![gt(0.3, 0.3, 0)]];
        // High-scoring FP first, then the TP.
        let dets = vec![vec![det(0.8, 0.8, 0.95, 0), det(0.3, 0.3, 0.9, 0)]];
        let r = evaluate_map(&dets, &truths, 1, 0.5);
        // Recall 1 reached at precision 1/2.
        assert!((r.map - 0.5).abs() < 1e-9, "map {}", r.map);
    }

    #[test]
    fn duplicate_detections_count_once() {
        let truths = vec![vec![gt(0.3, 0.3, 0)]];
        let dets = vec![vec![det(0.3, 0.3, 0.9, 0), det(0.31, 0.3, 0.8, 0)]];
        let r = evaluate_map(&dets, &truths, 1, 0.5);
        // Second detection is an FP (GT already matched); AP stays 1.0
        // because recall 1 is reached before the FP.
        assert!((r.map - 1.0).abs() < 1e-9, "map {}", r.map);
    }

    #[test]
    fn wrong_class_never_matches() {
        let truths = vec![vec![gt(0.3, 0.3, 0)]];
        let dets = vec![vec![det(0.3, 0.3, 0.9, 1)]];
        let r = evaluate_map(&dets, &truths, 2, 0.5);
        assert_eq!(r.map, 0.0);
        assert_eq!(r.per_class[0], Some(0.0));
        assert_eq!(r.per_class[1], None); // no class-1 ground truths
    }

    #[test]
    fn iou_threshold_gates_matches() {
        let truths = vec![vec![gt(0.3, 0.3, 0)]];
        // Slightly offset detection: IoU ≈ 0.45.
        let dets = vec![vec![det(0.36, 0.32, 0.9, 0)]];
        let loose = evaluate_map(&dets, &truths, 1, 0.3);
        let strict = evaluate_map(&dets, &truths, 1, 0.6);
        assert!(loose.map > 0.9);
        assert_eq!(strict.map, 0.0);
    }

    #[test]
    fn empty_everything() {
        let r = evaluate_map(&[], &[], 3, 0.5);
        assert_eq!(r.map, 0.0);
        assert_eq!(r.per_class, vec![None, None, None]);
    }

    #[test]
    #[should_panic(expected = "same images")]
    fn mismatched_lengths_panic() {
        evaluate_map(&[vec![]], &[], 1, 0.5);
    }
}
