//! Synthetic KITTI-like data substrate and detection evaluation.
//!
//! The paper trains and evaluates on the KITTI automotive dataset, which
//! is not available here; per the substitution rule (DESIGN.md §2) this
//! crate generates procedural traffic scenes — cars, pedestrians and
//! cyclists rendered on a road/sky background with exact ground-truth
//! boxes — and provides the full evaluation pipeline the paper's numbers
//! flow through: IoU, class-aware NMS, precision/recall, and mAP@0.5.
//!
//! # Example
//!
//! ```
//! use rtoss_data::scene::{generate_dataset, SceneConfig};
//!
//! let scenes = generate_dataset(&SceneConfig::default(), 4, 42);
//! assert_eq!(scenes.len(), 4);
//! assert!(!scenes[0].truths.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbox;
pub mod difficulty;
pub mod map;
pub mod ppm;
pub mod scene;

pub use bbox::{nms, BBox, Detection, GroundTruth};
pub use difficulty::{evaluate_map_tiered, Difficulty, TieredMapReport, TieredTruth};
pub use map::{evaluate_map, MapReport};
pub use scene::{augment_with_flips, generate_dataset, KittiClass, Scene, SceneConfig};
