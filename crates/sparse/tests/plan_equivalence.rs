//! Property test: the compiled execution plan is **bit-identical** to
//! the per-call interpreter.
//!
//! This is the plan compiler's contract (and what `rtoss-verify`'s
//! RV052 re-checks statically on seeded engines): epilogue fusion,
//! arena slot reuse, and output moves may change *how* a forward pass
//! runs, but never a single output bit — across entry patterns
//! (dense / 4EP / 3EP / 2EP), thread counts, and batch sizes.

use proptest::prelude::*;
use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_models::{retinanet_twin, yolov5s_twin};
use rtoss_sparse::{ExecConfig, SparseModel};
use rtoss_tensor::init;

/// `None` = dense (unpruned) engine.
const FORMATS: [Option<EntryPattern>; 4] = [
    None,
    Some(EntryPattern::Four),
    Some(EntryPattern::Three),
    Some(EntryPattern::Two),
];

fn build_engine(twin: usize, format: Option<EntryPattern>, seed: u64) -> SparseModel {
    let mut m = if twin == 0 {
        yolov5s_twin(4, 2, seed).expect("twin builds")
    } else {
        retinanet_twin(4, 2, seed).expect("twin builds")
    };
    // Non-trivial BN stats so the folded affine is not a no-op.
    let x = init::uniform(&mut init::rng(seed ^ 1), &[2, 3, 32, 32], 0.0, 1.0);
    m.graph.set_training(true);
    m.graph.forward(&x).expect("train pass");
    m.graph.set_training(false);
    if let Some(entry) = format {
        RTossPruner::new(entry)
            .prune_graph(&mut m.graph)
            .expect("prune");
    }
    SparseModel::compile(&m.graph).expect("compile")
}

proptest! {
    // Each case runs 2 twins x 4 formats; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn planned_forward_is_bit_identical_to_interpreter(
        seed in 0u64..1000,
        threads_idx in 0usize..2,
        batch_idx in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_idx];
        let batch = [1usize, 3][batch_idx];
        let exec = ExecConfig::with_threads(threads);
        let probe = init::uniform(&mut init::rng(seed), &[batch, 3, 32, 32], 0.0, 1.0);
        for twin in 0..2usize {
            for format in FORMATS {
                let engine = build_engine(twin, format, 100 + seed % 7);
                let planned = engine.forward_with(&probe, &exec).expect("planned");
                let interp = engine
                    .forward_interpreted_with(&probe, &exec)
                    .expect("interpreted");
                prop_assert_eq!(planned.len(), interp.len());
                for (p, i) in planned.iter().zip(&interp) {
                    prop_assert_eq!(p.shape(), i.shape());
                    prop_assert_eq!(
                        p.as_slice(),
                        i.as_slice(),
                        "twin={} format={:?} threads={} batch={}",
                        twin,
                        format,
                        threads,
                        batch
                    );
                }
            }
        }
    }
}
