//! Bounds the cost of the per-layer tracing probes when tracing is off.
//!
//! Every executor node pays one `span_lazy` probe per forward pass.
//! This test measures the amortized disabled-probe cost directly (it is
//! a couple of flag loads, ~nanoseconds) and asserts that even a
//! generous over-count of probes per forward stays under 1 % of a real
//! pruned forward pass — i.e. leaving the instrumentation compiled in
//! costs nothing measurable in production.

use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_sparse::SparseModel;
use rtoss_tensor::{ExecConfig, Tensor};
use std::time::Instant;

#[test]
fn disabled_tracing_overhead_is_under_one_percent_of_forward() {
    rtoss_obs::set_enabled(false);
    let mut model = rtoss_models::yolov5s_twin(4, 2, 7).expect("twin builds");
    RTossPruner::new(EntryPattern::Two)
        .prune_graph(&mut model.graph)
        .expect("prunes");
    let engine = SparseModel::compile(&model.graph).expect("compiles");
    let exec = ExecConfig::with_threads(1);
    let input = Tensor::zeros(&[1, 3, 32, 32]);

    // Best-of-N timing for both sides: the test suite runs many
    // binaries concurrently, and a descheduled loop would otherwise
    // inflate one measurement arbitrarily. The minimum over batches is
    // the intrinsic cost, which is what the 1% bound is about.
    engine.forward_with(&input, &exec).expect("warmup forward");
    const REPS: u32 = 3;
    let forward_ns = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            engine.forward_with(&input, &exec).expect("forward");
            start.elapsed().as_nanos() as f64
        })
        .fold(f64::INFINITY, f64::min);

    // Amortized cost of one disabled probe. The closure mirrors the
    // executor's real per-node argument construction.
    const BATCHES: u32 = 5;
    const PROBES: u32 = 200_000;
    let mut probe_ns = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for i in 0..PROBES {
            let _guard = rtoss_obs::span_lazy(|| {
                (
                    format!("layer:probe-{i}"),
                    vec![("i", rtoss_obs::ArgValue::U64(u64::from(i)))],
                )
            });
            std::hint::black_box(i);
        }
        probe_ns = probe_ns.min(start.elapsed().as_nanos() as f64 / f64::from(PROBES));
    }

    // The twin executes ~30 instrumented nodes per forward; 100 is a
    // >3x over-count, and even then the probes must vanish next to the
    // math (unoptimized probe cost is ~40 ns, so the bound holds in
    // debug builds too).
    let per_forward_overhead_ns = 100.0 * probe_ns;
    assert!(
        per_forward_overhead_ns < 0.01 * forward_ns,
        "disabled probes cost {per_forward_overhead_ns:.0} ns per forward \
         (probe {probe_ns:.2} ns), over 1% of a {forward_ns:.0} ns forward pass"
    );

    // The fleet telemetry layer adds windowed-series probes on the same
    // hot paths (admission gate, respond path). Hold the disabled
    // recorders to the same budget: a serving request pays at most a
    // handful of series probes, so 100 per forward is again a gross
    // over-count.
    rtoss_obs::set_series_enabled(false);
    let spec = rtoss_obs::timeseries::WindowSpec::default();
    let counter = rtoss_obs::timeseries::WindowedCounter::new(spec);
    let set = rtoss_obs::timeseries::WindowedSet::new(spec, &["offered", "admitted"]);
    let mut series_ns = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for i in 0..PROBES {
            let ts = u64::from(i) * 1_000;
            counter.add_at(ts, u64::from(i));
            set.incr_pair_at(ts, 0, 1);
            std::hint::black_box(i);
        }
        series_ns = series_ns.min(start.elapsed().as_nanos() as f64 / f64::from(PROBES));
    }
    let per_forward_series_ns = 100.0 * series_ns;
    assert!(
        per_forward_series_ns < 0.01 * forward_ns,
        "disabled series probes cost {per_forward_series_ns:.0} ns per forward \
         (probe {series_ns:.2} ns), over 1% of a {forward_ns:.0} ns forward pass"
    );
}
