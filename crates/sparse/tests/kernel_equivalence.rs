//! Property tests for the register-tiled conv microkernels.
//!
//! Two contracts, randomized over shapes, strides, paddings, entry
//! patterns, bias/epilogue mixes, and thread widths:
//!
//! 1. **Pack round-trip** — both kernel-major packs (pattern and COO)
//!    reconstruct the pruned dense weights *bitwise* through
//!    `to_dense()`: the pack layout loses nothing and invents nothing.
//!    (RV090 re-checks this statically per compiled layer.)
//! 2. **Kernel equivalence** — every tiled executor variant (pattern
//!    microkernel, COO, dense) produces bitwise the output of the
//!    scalar reference executor at every thread width. This is the
//!    randomized face of RV092: any divergence in canonical
//!    accumulation order, padded staging, or ragged-edge writeback
//!    shows up as a bit flip, not a tolerance failure.

use proptest::prelude::*;
use rtoss_core::pattern::canonical_set;
use rtoss_core::prune3x3::prune_3x3_weights;
use rtoss_sparse::exec::{
    conv2d_dense_into_with, conv2d_pattern_scalar_into_with, conv2d_pattern_sparse_into_with,
    conv2d_unstructured_into_with,
};
use rtoss_sparse::{PatternCompressedConv, UnstructuredSparseConv};
use rtoss_tensor::exec::Epilogue;
use rtoss_tensor::ops::out_extent;
use rtoss_tensor::{init, EpilogueAct, ExecConfig, Tensor};

/// Random pruned 3×3 weights: `o`×`i` kernels kept to `k_entries` taps.
fn pruned(o: usize, i: usize, k_entries: usize, seed: u64) -> Tensor {
    let mut w = init::uniform(&mut init::rng(seed), &[o, i, 3, 3], -1.0, 1.0);
    prune_3x3_weights(&mut w, &canonical_set(k_entries).unwrap()).unwrap();
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packs_round_trip_to_dense(
        o in 1usize..9,
        i in 1usize..7,
        k_entries in 2usize..5,
        seed in 0u64..1000,
    ) {
        let w = pruned(o, i, k_entries, 0xF00D ^ seed);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        prop_assert_eq!(
            pc.pack().to_dense(o, i, 3).as_slice(),
            w.as_slice(),
            "pattern pack: o={} i={} {}EP", o, i, k_entries
        );
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        prop_assert_eq!(
            un.pack().to_dense(o, i, 3).as_slice(),
            w.as_slice(),
            "coo pack: o={} i={} {}EP", o, i, k_entries
        );
    }

    #[test]
    fn tiled_kernel_variants_bit_identical_to_scalar(
        o in 1usize..8,
        i in 1usize..6,
        h in 3usize..20,
        wd in 3usize..20,
        batch in 1usize..3,
        stride in 1usize..3,
        pad in 0usize..2,
        k_entries in 2usize..5,
        bias_sel in 0usize..2,
        epi_sel in 0usize..2,
        seed in 0u64..1000,
    ) {
        let w = pruned(o, i, k_entries, 0xBEEF ^ seed);
        let x = init::uniform(&mut init::rng(seed ^ 7), &[batch, i, h, wd], -1.0, 1.0);
        let with_bias = bias_sel == 1;
        let with_epilogue = epi_sel == 1;
        let bias: Option<Vec<f32>> =
            with_bias.then(|| (0..o).map(|v| v as f32 * 0.1 - 0.2).collect());
        let scale: Vec<f32> = (0..o).map(|v| 0.5 + v as f32 * 0.25).collect();
        let shift: Vec<f32> = (0..o).map(|v| v as f32 * -0.3).collect();
        let epi = if with_epilogue {
            Epilogue { affine: Some((&scale, &shift)), act: Some(EpilogueAct::Relu) }
        } else {
            Epilogue::NONE
        };
        let label = format!(
            "o={o} i={i} {h}x{wd} b={batch} s{stride}p{pad} {k_entries}EP \
             bias={with_bias} epi={with_epilogue}"
        );
        let pc = PatternCompressedConv::from_dense(&w, stride, pad).unwrap();
        let un = UnstructuredSparseConv::from_dense(&w, stride, pad).unwrap();
        let oh = out_extent(h, 3, stride, pad).unwrap();
        let ow = out_extent(wd, 3, stride, pad).unwrap();
        let n_out = batch * o * oh * ow;
        let mut want = vec![f32::NAN; n_out];
        conv2d_pattern_scalar_into_with(
            x.as_slice(), x.shape(), &pc, bias.as_deref(), &epi, &mut want,
            &ExecConfig::serial(),
        ).unwrap();
        for threads in 1usize..=4 {
            let cfg = ExecConfig::with_threads(threads);
            // NAN-dirty buffers prove every element is overwritten.
            let mut got = vec![f32::NAN; n_out];
            conv2d_pattern_sparse_into_with(
                x.as_slice(), x.shape(), &pc, bias.as_deref(), &epi, &mut got, &cfg,
            ).unwrap();
            prop_assert_eq!(&got, &want, "pattern vs scalar, {} t={}", label, threads);
            let mut got = vec![f32::NAN; n_out];
            conv2d_unstructured_into_with(
                x.as_slice(), x.shape(), &un, bias.as_deref(), &epi, &mut got, &cfg,
            ).unwrap();
            prop_assert_eq!(&got, &want, "coo vs scalar, {} t={}", label, threads);
            let mut got = vec![f32::NAN; n_out];
            conv2d_dense_into_with(
                x.as_slice(), x.shape(), &w, stride, pad, bias.as_deref(), &epi, &mut got,
                &cfg,
            ).unwrap();
            prop_assert_eq!(&got, &want, "dense vs scalar, {} t={}", label, threads);
        }
    }
}
