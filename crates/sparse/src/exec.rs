//! Sparse convolution executors.
//!
//! Every executor computes exactly the same result as
//! [`rtoss_tensor::ops::conv2d`] on the masked dense weights (up to
//! f32 summation order); they differ in how they traverse the
//! surviving weights:
//!
//! - [`conv2d_pattern_sparse`]: register-tiled microkernel path over
//!   the layer's [`PatternPack`] — per [`NR`]-wide output-row segment
//!   a stack accumulator tile takes every kernel's taps through the
//!   arity-monomorphized [`rtoss_tensor::microkernel`] bodies, then
//!   writes back once with the fused epilogue. Regular,
//!   cache-friendly, and work ∝ surviving weights.
//! - [`conv2d_unstructured`]: the same tile walk over a [`CooPack`],
//!   but every `(oc, ic)` run dispatches through the arity-*generic*
//!   body — no fixed-tap monomorphization, modelling the
//!   irregularity penalty the paper attributes to unstructured
//!   sparsity (§II.B).
//! - [`conv2d_dense`]: all `k×k` taps of every kernel, zeros
//!   included — the autotuner's dense candidate for layers that kept
//!   most of their weights.
//! - [`conv2d_pattern_scalar_into_with`]: the scalar reference — one
//!   row-sweep per tap, no tiling. The proptests and RV092 pin every
//!   tiled variant bit-identical to this.
//!
//! # Canonical accumulation order
//!
//! All four paths accumulate each output element as `bias`, then taps
//! in ascending `(ic, ky, kx)` order (the pack order). f32 addition
//! does not commute in rounding, so sharing one chain is what makes
//! the paths bit-identical to each other — and therefore lets the
//! plan-time format autotuner swap kernels per layer without changing
//! a single output bit. The dense path additionally adds `0.0 * x`
//! for pruned taps, which is bitwise inert except when an output
//! element is exactly `±0.0` *and* the layer bias is `-0.0` — the
//! executors' contract excludes negative-zero biases.
//!
//! Every executor tiles its output into `(batch, out-channel)` planes
//! and runs the tiles across scoped threads (`*_with` variants take an
//! [`ExecConfig`]; the plain variants use the process default). Tiles
//! own disjoint `&mut` output slices, and each plane accumulates in the
//! serial sweep's floating-point order, so results are bit-identical
//! for every thread count.
//!
//! [`PatternPack`]: crate::pack::PatternPack
//! [`CooPack`]: crate::pack::CooPack
//! [`NR`]: rtoss_tensor::microkernel::NR

use crate::format::{PatternCompressedConv, UnstructuredSparseConv};
use crate::pack::PatternPack;
use rtoss_tensor::exec::{run_tiles, Epilogue, ExecConfig};
use rtoss_tensor::microkernel::{
    accum_kernel, accum_taps, accum_taps_dyn, pad_plane_into, padded_plane_len, writeback,
    FastDivmod, Tile, MR, NR,
};
use rtoss_tensor::ops::out_extent;
use rtoss_tensor::{Tensor, TensorError};

fn check_input(
    shape: &[usize],
    in_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    op: &'static str,
) -> Result<(usize, usize, usize, usize, usize), TensorError> {
    if shape.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: shape.len(),
            op,
        });
    }
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    if c != in_ch {
        return Err(TensorError::Invalid {
            op,
            msg: format!("input has {c} channels, layer expects {in_ch}"),
        });
    }
    let oh = out_extent(h, kernel, stride, pad).ok_or_else(|| TensorError::Invalid {
        op,
        msg: "kernel does not fit input".into(),
    })?;
    let ow = out_extent(w, kernel, stride, pad).ok_or_else(|| TensorError::Invalid {
        op,
        msg: "kernel does not fit input".into(),
    })?;
    Ok((n, h, w, oh, ow))
}

/// Accumulates `val * x_row` into `out_row` for one (kernel-cell, output
/// row) pair. Padding bounds are hoisted out of the inner loop: the
/// valid `ox` range is computed once, and the stride-1 common case runs
/// a branch-free contiguous saxpy. The scalar-reference inner loop.
#[allow(clippy::too_many_arguments)]
#[inline]
fn accumulate_row(
    out_row: &mut [f32],
    x_plane: &[f32],
    w_in: usize,
    iy: isize,
    h_in: usize,
    kx: usize,
    stride: usize,
    pad: usize,
    val: f32,
) {
    if iy < 0 || iy >= h_in as isize {
        return;
    }
    let ow = out_row.len();
    // Valid ox satisfy 0 <= ox*stride + kx - pad < w_in.
    let ox_start = pad.saturating_sub(kx).div_ceil(stride).min(ow);
    let ox_end = ((w_in + pad).saturating_sub(kx).div_ceil(stride)).min(ow);
    if ox_start >= ox_end {
        return;
    }
    let x_row = &x_plane[iy as usize * w_in..(iy as usize + 1) * w_in];
    let ix_start = ox_start * stride + kx - pad;
    if stride == 1 {
        let len = ox_end - ox_start;
        let xs = &x_row[ix_start..ix_start + len];
        let os = &mut out_row[ox_start..ox_end];
        for (o, &xv) in os.iter_mut().zip(xs.iter()) {
            *o += val * xv;
        }
    } else {
        let mut ix = ix_start;
        for o in &mut out_row[ox_start..ox_end] {
            *o += val * x_row[ix];
            ix += stride;
        }
    }
}

/// Output shape `[n, out_ch, oh, ow]` of a sparse convolution over an
/// input of `x_shape`, validating geometry without executing anything.
/// The execution plan calls this once at plan time so per-call forwards
/// skip shape inference entirely.
///
/// # Errors
///
/// Returns an error if the input rank/channels do not match the layer
/// or the kernel does not fit.
#[allow(clippy::too_many_arguments)]
pub fn conv_output_shape(
    x_shape: &[usize],
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    op: &'static str,
) -> Result<[usize; 4], TensorError> {
    let (n, _h, _w, oh, ow) = check_input(x_shape, in_ch, kernel, stride, pad, op)?;
    Ok([n, out_ch, oh, ow])
}

/// Geometry every `*_into_with` executor shares, resolved once by
/// [`check_conv_into`].
#[derive(Debug, Clone, Copy)]
struct ConvGeom {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    o: usize,
    oh: usize,
    ow: usize,
    k: usize,
    stride: usize,
    pad: usize,
}

/// Validates input geometry plus the bias/epilogue/output-buffer
/// lengths shared by every into-variant.
#[allow(clippy::too_many_arguments)]
fn check_conv_into(
    op: &'static str,
    x_shape: &[usize],
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    bias: Option<&[f32]>,
    epilogue: &Epilogue<'_>,
    out_len: usize,
) -> Result<ConvGeom, TensorError> {
    let (n, h, w, oh, ow) = check_input(x_shape, in_ch, kernel, stride, pad, op)?;
    if let Some(b) = bias {
        if b.len() != out_ch {
            return Err(TensorError::Invalid {
                op,
                msg: format!("bias length {} != out channels {out_ch}", b.len()),
            });
        }
    }
    if let Some((scale, shift)) = epilogue.affine {
        if scale.len() != out_ch || shift.len() != out_ch {
            return Err(TensorError::Invalid {
                op,
                msg: format!(
                    "epilogue affine lengths {}/{} != out channels {out_ch}",
                    scale.len(),
                    shift.len()
                ),
            });
        }
    }
    let want_len = n * out_ch * oh * ow;
    if out_len != want_len {
        return Err(TensorError::Invalid {
            op,
            msg: format!("output buffer holds {out_len} elements, need {want_len}"),
        });
    }
    Ok(ConvGeom {
        n,
        c: in_ch,
        h,
        w,
        o: out_ch,
        oh,
        ow,
        k: kernel,
        stride,
        pad,
    })
}

/// Shared Tensor-returning entry point: shape-check, zeroed buffer,
/// delegate to the `*_into_with` body, wrap the result. Every format's
/// convenience wrapper goes through here instead of repeating the
/// boilerplate.
#[allow(clippy::too_many_arguments)]
fn conv_entry(
    x: &Tensor,
    op: &'static str,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    run: impl FnOnce(&mut [f32]) -> Result<[usize; 4], TensorError>,
) -> Result<Tensor, TensorError> {
    let shape = conv_output_shape(x.shape(), in_ch, out_ch, kernel, stride, pad, op)?;
    let mut out = vec![0.0f32; shape.iter().product()];
    run(&mut out)?;
    Tensor::from_vec(out, &shape)
}

/// Register-tiled `(batch, out-channel)`-plane driver shared by the
/// pattern, COO, and dense executors. Stages the input into
/// zero-padded planes (one pass — see the microkernel module docs),
/// then walks each output plane in [`MR`]×[`NR`] tiles and hands each
/// tile to `tile_fn(oc, tile, x_batch, out_plane)`. Block and plane
/// indices are decomposed with [`FastDivmod`] — no hardware divide on
/// the walk.
///
/// `tile_fn` owns the whole tile body: it creates the accumulator
/// block, runs the format's canonical tap chain over it, and writes
/// back with the fused epilogue. That ownership is deliberate — the
/// block must live and die inside one function frame whose callees
/// are all `#[inline(always)]`, so its address never crosses a real
/// call boundary and LLVM can promote it to vector registers (see the
/// microkernel module docs). Passing `&mut` accumulators *into* a
/// closure parameter defeats that: the closure is big enough that the
/// inliner may keep the call, and an escaped alloca is stack-bound.
///
/// `x_batch` is the staged batch slice; in-channel plane `ic` starts
/// at `ic * padded_plane_len(...)` within it (the executors compute
/// the same stride from the shared geometry).
fn run_tiled_conv(
    x: &[f32],
    g: ConvGeom,
    out: &mut [f32],
    threads: usize,
    tile_fn: impl Fn(usize, &Tile, &[f32], &mut [f32]) + Sync,
) {
    let plane = g.oh * g.ow;
    let segs_per_row = g.ow.div_ceil(NR).max(1);
    let row_blocks = g.oh.div_ceil(MR).max(1);
    let seg_div = FastDivmod::new(segs_per_row as u32);
    let oc_div = FastDivmod::new(g.o as u32);
    let hw = g.h * g.w;
    let php = padded_plane_len(g.h, g.w, g.pad, g.stride, g.k);
    let mut staged = vec![0.0f32; g.n * g.c * php];
    for (p, dst) in staged.chunks_mut(php).enumerate() {
        pad_plane_into(dst, &x[p * hw..(p + 1) * hw], g.h, g.w, g.pad);
    }
    let xp = &staged[..];
    let tiles: Vec<(usize, &mut [f32])> = out.chunks_mut(plane).enumerate().collect();
    run_tiles(tiles, threads, |(tile_ix, out_plane)| {
        let (ni, oc) = {
            let (q, r) = oc_div.divmod(tile_ix as u32);
            (q as usize, r as usize)
        };
        // Each staged plane carries its own slack tail (included in
        // `php`), so ragged tiles stay within their plane's slice.
        let x_batch = &xp[ni * g.c * php..];
        for s in 0..(row_blocks * segs_per_row) as u32 {
            let (by, sx) = seg_div.divmod(s);
            let oy0 = by as usize * MR;
            let ox0 = sx as usize * NR;
            let tile = Tile {
                wp: g.w + 2 * g.pad,
                oy0,
                mr: MR.min(g.oh - oy0),
                ox0,
                nr: NR.min(g.ow - ox0),
                stride: g.stride,
            };
            tile_fn(oc, &tile, x_batch, out_plane);
        }
    });
}

/// Executes a pattern-compressed convolution: `x (N,C,H,W) → (N,O,oh,ow)`.
///
/// # Errors
///
/// Returns an error if the input rank/channels do not match the layer
/// or the kernel does not fit.
pub fn conv2d_pattern_sparse(
    x: &Tensor,
    layer: &PatternCompressedConv,
    bias: Option<&[f32]>,
) -> Result<Tensor, TensorError> {
    conv2d_pattern_sparse_with(x, layer, bias, &ExecConfig::default())
}

/// [`conv2d_pattern_sparse`] with an explicit [`ExecConfig`].
///
/// The output is tiled into `(batch, out-channel)` planes dispatched
/// across `exec.threads` scoped threads. Each plane accumulates its
/// kernels in the canonical pack order, so every thread count produces
/// bit-identical results.
///
/// # Errors
///
/// Same conditions as [`conv2d_pattern_sparse`].
pub fn conv2d_pattern_sparse_with(
    x: &Tensor,
    layer: &PatternCompressedConv,
    bias: Option<&[f32]>,
    exec: &ExecConfig,
) -> Result<Tensor, TensorError> {
    conv_entry(
        x,
        "conv2d_pattern_sparse",
        layer.in_channels(),
        layer.out_channels(),
        layer.kernel_size(),
        layer.stride(),
        layer.padding(),
        |out| {
            conv2d_pattern_sparse_into_with(
                x.as_slice(),
                x.shape(),
                layer,
                bias,
                &Epilogue::NONE,
                out,
                exec,
            )
        },
    )
}

/// Write-into-buffer variant of [`conv2d_pattern_sparse_with`] with an
/// [`Epilogue`] hook: the compiled execution plan's pattern-format
/// conv step, running the register-tiled monomorphized microkernels
/// over the layer's prebuilt [`PatternPack`].
///
/// `x`/`x_shape` describe the input (an arena slice — no `Tensor`
/// allocation on the hot path); the result is written into `out`, which
/// must hold exactly `n * out_channels * oh * ow` elements. Every
/// element of `out` is overwritten (bias or zero fill first), so a
/// reused arena buffer needs no clearing. The epilogue runs per output
/// segment at tile writeback — hot in registers, composing with the
/// scoped-thread tiling, and bit-identical for every thread count
/// (each plane is processed by exactly one worker in the serial
/// sweep's order).
///
/// Returns the output shape `[n, out_channels, oh, ow]`.
///
/// # Errors
///
/// Same conditions as [`conv2d_pattern_sparse`], plus mismatched
/// epilogue or output-buffer lengths.
///
/// [`PatternPack`]: crate::pack::PatternPack
#[allow(clippy::too_many_arguments)]
pub fn conv2d_pattern_sparse_into_with(
    x: &[f32],
    x_shape: &[usize],
    layer: &PatternCompressedConv,
    bias: Option<&[f32]>,
    epilogue: &Epilogue<'_>,
    out: &mut [f32],
    exec: &ExecConfig,
) -> Result<[usize; 4], TensorError> {
    let g = check_conv_into(
        "conv2d_pattern_sparse",
        x_shape,
        layer.in_channels(),
        layer.out_channels(),
        layer.kernel_size(),
        layer.stride(),
        layer.padding(),
        bias,
        epilogue,
        out.len(),
    )?;
    debug_validate_pattern(layer);
    let pack = layer.pack();
    // Legal layers have a uniform per-kernel tap count (RV001), so the
    // arity dispatch hoists out of the tile walk entirely: every tile
    // runs one monomorphized unrolled body with no per-kernel match.
    match pack.uniform_arity() {
        Some(1) => run_pattern_arity::<1>(x, g, bias, epilogue, out, exec.threads, pack),
        Some(2) => run_pattern_arity::<2>(x, g, bias, epilogue, out, exec.threads, pack),
        Some(3) => run_pattern_arity::<3>(x, g, bias, epilogue, out, exec.threads, pack),
        Some(4) => run_pattern_arity::<4>(x, g, bias, epilogue, out, exec.threads, pack),
        Some(5) => run_pattern_arity::<5>(x, g, bias, epilogue, out, exec.threads, pack),
        _ => {
            // Mixed or empty pack (corruption fixtures): per-kernel
            // dispatch through the shared match.
            let php = padded_plane_len(g.h, g.w, g.pad, g.stride, g.k);
            let c = g.c;
            let ow = g.ow;
            run_tiled_conv(x, g, out, exec.threads, |oc, tile, x_batch, out_plane| {
                let mut acc = [[bias.map_or(0.0, |b| b[oc]); NR]; MR];
                for (ic, taps, vals) in pack.oc_kernels(oc) {
                    if ic >= c {
                        continue; // corrupt layer; RV011 rejects pre-flight
                    }
                    accum_kernel(&mut acc, &x_batch[ic * php..], tile, taps, vals);
                }
                writeback(out_plane, ow, tile, &acc, oc, epilogue);
            });
        }
    }
    Ok([g.n, g.o, g.oh, g.ow])
}

/// Pattern tile walk monomorphized on the layer's uniform tap arity
/// `T`: the per-kernel loop body is a single unrolled `T`-tap
/// accumulation, no arity match inside the walk. Same canonical order
/// (and therefore bitwise output) as the generic path.
fn run_pattern_arity<const T: usize>(
    x: &[f32],
    g: ConvGeom,
    bias: Option<&[f32]>,
    epilogue: &Epilogue<'_>,
    out: &mut [f32],
    threads: usize,
    pack: &PatternPack,
) {
    let php = padded_plane_len(g.h, g.w, g.pad, g.stride, g.k);
    let c = g.c;
    let ow = g.ow;
    run_tiled_conv(x, g, out, threads, |oc, tile, x_batch, out_plane| {
        let mut acc = [[bias.map_or(0.0, |b| b[oc]); NR]; MR];
        for (ic, taps, vals) in pack.oc_kernels(oc) {
            if ic >= c {
                continue; // corrupt layer; RV011 rejects pre-flight
            }
            accum_taps::<T>(&mut acc, &x_batch[ic * php..], tile, taps, vals);
        }
        writeback(out_plane, ow, tile, &acc, oc, epilogue);
    });
}

/// Scalar-reference twin of [`conv2d_pattern_sparse_into_with`]: same
/// canonical accumulation order (pack order — `bias`, then taps by
/// ascending `(ic, ky, kx)`), but one whole-plane row sweep per tap
/// and a per-plane epilogue instead of register tiling. Every tiled
/// variant is pinned bit-identical to this by the kernel proptests and
/// RV092; `kernel_bench` uses it as the speed baseline.
///
/// # Errors
///
/// Same conditions as [`conv2d_pattern_sparse_into_with`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_pattern_scalar_into_with(
    x: &[f32],
    x_shape: &[usize],
    layer: &PatternCompressedConv,
    bias: Option<&[f32]>,
    epilogue: &Epilogue<'_>,
    out: &mut [f32],
    exec: &ExecConfig,
) -> Result<[usize; 4], TensorError> {
    let g = check_conv_into(
        "conv2d_pattern_scalar",
        x_shape,
        layer.in_channels(),
        layer.out_channels(),
        layer.kernel_size(),
        layer.stride(),
        layer.padding(),
        bias,
        epilogue,
        out.len(),
    )?;
    debug_validate_pattern(layer);
    let plane = g.oh * g.ow;
    let hw = g.h * g.w;
    let pack = layer.pack();
    let tiles: Vec<(usize, &mut [f32])> = out.chunks_mut(plane).enumerate().collect();
    run_tiles(tiles, exec.threads, |(tile, out_plane)| {
        let (ni, oc) = (tile / g.o, tile % g.o);
        // The buffer may be a reused arena slot: fill unconditionally.
        out_plane.fill(bias.map_or(0.0, |b| b[oc]));
        for (ic, taps, vals) in pack.oc_kernels(oc) {
            if ic >= g.c {
                continue;
            }
            let x_plane = &x[(ni * g.c + ic) * hw..(ni * g.c + ic + 1) * hw];
            for (&(ky, kx), &val) in taps.iter().zip(vals) {
                for oy in 0..g.oh {
                    let iy = (oy * g.stride + ky as usize) as isize - g.pad as isize;
                    accumulate_row(
                        &mut out_plane[oy * g.ow..(oy + 1) * g.ow],
                        x_plane,
                        g.w,
                        iy,
                        g.h,
                        kx as usize,
                        g.stride,
                        g.pad,
                        val,
                    );
                }
            }
        }
        epilogue.apply(oc, out_plane);
    });
    Ok([g.n, g.o, g.oh, g.ow])
}

/// Executes an unstructured (COO) sparse convolution.
///
/// # Errors
///
/// Returns an error if the input rank/channels do not match the layer
/// or the kernel does not fit.
pub fn conv2d_unstructured(
    x: &Tensor,
    layer: &UnstructuredSparseConv,
    bias: Option<&[f32]>,
) -> Result<Tensor, TensorError> {
    conv2d_unstructured_with(x, layer, bias, &ExecConfig::default())
}

/// [`conv2d_unstructured`] with an explicit [`ExecConfig`].
///
/// Same `(batch, out-channel)`-plane tiling as the pattern executor;
/// each plane replays its COO runs in entry order, so results are
/// bit-identical for every thread count.
///
/// # Errors
///
/// Same conditions as [`conv2d_unstructured`].
pub fn conv2d_unstructured_with(
    x: &Tensor,
    layer: &UnstructuredSparseConv,
    bias: Option<&[f32]>,
    exec: &ExecConfig,
) -> Result<Tensor, TensorError> {
    conv_entry(
        x,
        "conv2d_unstructured",
        layer.in_channels(),
        layer.out_channels(),
        layer.kernel_size(),
        layer.stride(),
        layer.padding(),
        |out| {
            conv2d_unstructured_into_with(
                x.as_slice(),
                x.shape(),
                layer,
                bias,
                &Epilogue::NONE,
                out,
                exec,
            )
        },
    )
}

/// Write-into-buffer variant of [`conv2d_unstructured_with`] with an
/// [`Epilogue`] hook; the COO twin of
/// [`conv2d_pattern_sparse_into_with`] (same buffer contract, same
/// register-tiled walk) — but every `(oc, ic)` run goes through the
/// arity-*generic* microkernel body: the run length is data-dependent,
/// so there is no fixed-arity monomorphization to dispatch into. That
/// is the irregular path the paper contrasts pattern grouping against.
///
/// Returns the output shape `[n, out_channels, oh, ow]`.
///
/// # Errors
///
/// Same conditions as [`conv2d_unstructured`], plus mismatched epilogue
/// or output-buffer lengths.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_unstructured_into_with(
    x: &[f32],
    x_shape: &[usize],
    layer: &UnstructuredSparseConv,
    bias: Option<&[f32]>,
    epilogue: &Epilogue<'_>,
    out: &mut [f32],
    exec: &ExecConfig,
) -> Result<[usize; 4], TensorError> {
    let g = check_conv_into(
        "conv2d_unstructured",
        x_shape,
        layer.in_channels(),
        layer.out_channels(),
        layer.kernel_size(),
        layer.stride(),
        layer.padding(),
        bias,
        epilogue,
        out.len(),
    )?;
    // Debug-build checkpoint: a corrupt artifact (out-of-bounds channel
    // or offset) would otherwise surface as wrong output. Release
    // builds rely on the opt-in `rtoss-verify` pre-flight pass instead
    // of paying this on every forward.
    #[cfg(debug_assertions)]
    {
        let violations = layer.validate();
        debug_assert!(
            violations.is_empty(),
            "conv2d_unstructured on invalid layer: {violations:?}"
        );
    }
    let php = padded_plane_len(g.h, g.w, g.pad, g.stride, g.k);
    let c = g.c;
    let ow = g.ow;
    let pack = layer.pack();
    run_tiled_conv(x, g, out, exec.threads, |oc, tile, x_batch, out_plane| {
        let mut acc = [[bias.map_or(0.0, |b| b[oc]); NR]; MR];
        for (ic, taps, vals) in pack.oc_runs(oc) {
            if ic >= c {
                continue; // corrupt layer; RV013 rejects pre-flight
            }
            // Data-dependent arity: always the generic body.
            accum_taps_dyn(&mut acc, &x_batch[ic * php..], tile, taps, vals);
        }
        writeback(out_plane, ow, tile, &acc, oc, epilogue);
    });
    Ok([g.n, g.o, g.oh, g.ow])
}

/// Executes a dense conv through the canonical-order tiled path.
///
/// # Errors
///
/// Same conditions as [`conv2d_dense_with`].
pub fn conv2d_dense(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
) -> Result<Tensor, TensorError> {
    conv2d_dense_with(x, w, bias, stride, pad, &ExecConfig::default())
}

/// [`conv2d_dense`] with an explicit [`ExecConfig`].
///
/// This is the autotuner's dense candidate, **not** a replacement for
/// [`rtoss_tensor::ops::conv2d`]: it accumulates bias-first in the
/// canonical `(ic, ky, kx)` tap order (zero taps included, which is
/// bitwise inert — see the module docs), so its output is
/// bit-identical to the sparse executors on the same weights, whereas
/// the im2col+GEMM path adds bias after the matmul and rounds
/// differently.
///
/// # Errors
///
/// Returns an error if the weight is not rank-4 square or the input
/// does not match it.
pub fn conv2d_dense_with(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    exec: &ExecConfig,
) -> Result<Tensor, TensorError> {
    let (o, c, k) = check_dense_weight(w)?;
    conv_entry(x, "conv2d_dense", c, o, k, stride, pad, |out| {
        conv2d_dense_into_with(
            x.as_slice(),
            x.shape(),
            w,
            stride,
            pad,
            bias,
            &Epilogue::NONE,
            out,
            exec,
        )
    })
}

fn check_dense_weight(w: &Tensor) -> Result<(usize, usize, usize), TensorError> {
    let ws = w.shape();
    if ws.len() != 4 || ws[2] != ws[3] {
        return Err(TensorError::Invalid {
            op: "conv2d_dense",
            msg: format!("expected rank-4 square-kernel weights, got {ws:?}"),
        });
    }
    Ok((ws[0], ws[1], ws[2]))
}

/// Write-into-buffer dense conv in the canonical accumulation order —
/// the execution plan's dense-format conv step (see
/// [`conv2d_dense_with`] for why this exists alongside the im2col
/// path). All `k×k` taps run through the same register-tiled walk as
/// the sparse formats; for 3×3 kernels that is the monomorphized
/// 9-tap body.
///
/// Returns the output shape `[n, out_channels, oh, ow]`.
///
/// # Errors
///
/// Returns an error on non-square weights, mismatched input geometry,
/// or mismatched epilogue/output-buffer lengths.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_dense_into_with(
    x: &[f32],
    x_shape: &[usize],
    w: &Tensor,
    stride: usize,
    pad: usize,
    bias: Option<&[f32]>,
    epilogue: &Epilogue<'_>,
    out: &mut [f32],
    exec: &ExecConfig,
) -> Result<[usize; 4], TensorError> {
    let (o, c, k) = check_dense_weight(w)?;
    let g = check_conv_into(
        "conv2d_dense",
        x_shape,
        c,
        o,
        k,
        stride,
        pad,
        bias,
        epilogue,
        out.len(),
    )?;
    let kk = k * k;
    // The full tap window in canonical (ky, kx) order, shared by every
    // kernel — the dense analogue of a pattern group's offset slice.
    let full_taps: Vec<(u8, u8)> = (0..k as u8)
        .flat_map(|ky| (0..k as u8).map(move |kx| (ky, kx)))
        .collect();
    let wd = w.as_slice();
    let php = padded_plane_len(g.h, g.w, g.pad, g.stride, g.k);
    let ow = g.ow;
    run_tiled_conv(x, g, out, exec.threads, |oc, tile, x_batch, out_plane| {
        let mut acc = [[bias.map_or(0.0, |b| b[oc]); NR]; MR];
        for ic in 0..c {
            let vals = &wd[(oc * c + ic) * kk..(oc * c + ic + 1) * kk];
            accum_kernel(&mut acc, &x_batch[ic * php..], tile, &full_taps, vals);
        }
        writeback(out_plane, ow, tile, &acc, oc, epilogue);
    });
    Ok([g.n, g.o, g.oh, g.ow])
}

/// Debug-build checkpoint: a corrupt artifact (out-of-bounds channel
/// or offset) would otherwise surface as silently-wrong output in the
/// tiled workers. Release builds rely on the opt-in `rtoss-verify`
/// pre-flight pass instead of paying this on every forward.
fn debug_validate_pattern(layer: &PatternCompressedConv) {
    #[cfg(debug_assertions)]
    {
        let violations = layer.validate();
        debug_assert!(
            violations.is_empty(),
            "pattern executor on invalid layer: {violations:?}"
        );
    }
    let _ = layer;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::pattern::canonical_set;
    use rtoss_core::prune3x3::prune_3x3_weights;
    use rtoss_tensor::{init, ops};

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (i, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!((x - y).abs() < tol, "idx {i}: {x} vs {y}");
        }
    }

    fn pruned(k_entries: usize, o: usize, i: usize, seed: u64) -> Tensor {
        let mut w = init::uniform(&mut init::rng(seed), &[o, i, 3, 3], -1.0, 1.0);
        let set = canonical_set(k_entries).unwrap();
        prune_3x3_weights(&mut w, &set).unwrap();
        w
    }

    #[test]
    fn pattern_sparse_matches_dense() {
        for &(stride, pad) in &[(1usize, 1usize), (2, 1), (1, 0)] {
            let w = pruned(3, 6, 4, 11);
            let x = init::uniform(&mut init::rng(12), &[2, 4, 9, 9], -1.0, 1.0);
            let bias: Vec<f32> = (0..6).map(|v| v as f32 * 0.1).collect();
            let dense = ops::conv2d(&x, &w, Some(&bias), stride, pad).unwrap();
            let pc = PatternCompressedConv::from_dense(&w, stride, pad).unwrap();
            let sparse = conv2d_pattern_sparse(&x, &pc, Some(&bias)).unwrap();
            assert_close(&sparse, &dense, 1e-4);
        }
    }

    #[test]
    fn unstructured_matches_dense() {
        let w = pruned(2, 5, 3, 13);
        let x = init::uniform(&mut init::rng(14), &[1, 3, 7, 7], -1.0, 1.0);
        let dense = ops::conv2d(&x, &w, None, 1, 1).unwrap();
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        let sparse = conv2d_unstructured(&x, &un, None).unwrap();
        assert_close(&sparse, &dense, 1e-4);
    }

    #[test]
    fn all_formats_bit_identical_on_same_weights() {
        for &(stride, pad, batch) in &[(1usize, 1usize, 2usize), (2, 1, 1), (1, 0, 1)] {
            let w = pruned(2, 8, 5, 15);
            let x = init::uniform(&mut init::rng(16), &[batch, 5, 12, 11], -1.0, 1.0);
            let bias: Vec<f32> = (0..8).map(|v| v as f32 * 0.1 - 0.3).collect();
            let pc = PatternCompressedConv::from_dense(&w, stride, pad).unwrap();
            let un = UnstructuredSparseConv::from_dense(&w, stride, pad).unwrap();
            let cfg = ExecConfig::serial();
            let a = conv2d_pattern_sparse_with(&x, &pc, Some(&bias), &cfg).unwrap();
            let b = conv2d_unstructured_with(&x, &un, Some(&bias), &cfg).unwrap();
            assert_eq!(a.as_slice(), b.as_slice(), "pattern vs coo s{stride}p{pad}");
            let mut d = vec![0.0f32; a.numel()];
            conv2d_dense_into_with(
                x.as_slice(),
                x.shape(),
                &w,
                stride,
                pad,
                Some(&bias),
                &Epilogue::NONE,
                &mut d,
                &cfg,
            )
            .unwrap();
            assert_eq!(a.as_slice(), &d[..], "pattern vs dense s{stride}p{pad}");
            let mut sc = vec![0.0f32; a.numel()];
            conv2d_pattern_scalar_into_with(
                x.as_slice(),
                x.shape(),
                &pc,
                Some(&bias),
                &Epilogue::NONE,
                &mut sc,
                &cfg,
            )
            .unwrap();
            assert_eq!(a.as_slice(), &sc[..], "tiled vs scalar s{stride}p{pad}");
        }
    }

    #[test]
    fn one_by_one_sparse_conv() {
        let mut w = init::uniform(&mut init::rng(17), &[6, 4, 1, 1], -1.0, 1.0);
        for idx in [0usize, 5, 10, 15, 20] {
            w.as_mut_slice()[idx] = 0.0;
        }
        let x = init::uniform(&mut init::rng(18), &[1, 4, 6, 6], -1.0, 1.0);
        let dense = ops::conv2d(&x, &w, None, 1, 0).unwrap();
        let pc = PatternCompressedConv::from_dense(&w, 1, 0).unwrap();
        assert_close(&conv2d_pattern_sparse(&x, &pc, None).unwrap(), &dense, 1e-4);
    }

    #[test]
    fn parallel_executors_bit_identical_to_serial() {
        for &(stride, pad, batch) in &[(1usize, 1usize, 1usize), (2, 1, 3), (1, 0, 2)] {
            let w = pruned(3, 7, 5, 21);
            let x = init::uniform(&mut init::rng(22), &[batch, 5, 9, 11], -1.0, 1.0);
            let bias: Vec<f32> = (0..7).map(|v| v as f32 * 0.2 - 0.5).collect();
            let pc = PatternCompressedConv::from_dense(&w, stride, pad).unwrap();
            let un = UnstructuredSparseConv::from_dense(&w, stride, pad).unwrap();
            let serial_pc =
                conv2d_pattern_sparse_with(&x, &pc, Some(&bias), &ExecConfig::serial()).unwrap();
            let serial_un =
                conv2d_unstructured_with(&x, &un, Some(&bias), &ExecConfig::serial()).unwrap();
            for threads in [2usize, 3, 5, 8] {
                let cfg = ExecConfig::with_threads(threads);
                let par_pc = conv2d_pattern_sparse_with(&x, &pc, Some(&bias), &cfg).unwrap();
                let par_un = conv2d_unstructured_with(&x, &un, Some(&bias), &cfg).unwrap();
                assert_eq!(
                    serial_pc.as_slice(),
                    par_pc.as_slice(),
                    "pattern t={threads}"
                );
                assert_eq!(serial_un.as_slice(), par_un.as_slice(), "coo t={threads}");
            }
        }
    }

    #[test]
    fn into_variants_with_fused_epilogue_match_separate_passes() {
        let w = pruned(3, 6, 4, 31);
        let x = init::uniform(&mut init::rng(32), &[2, 4, 9, 9], -1.0, 1.0);
        let bias: Vec<f32> = (0..6).map(|v| v as f32 * 0.1 - 0.2).collect();
        let scale: Vec<f32> = (0..6).map(|v| 0.5 + v as f32 * 0.3).collect();
        let shift: Vec<f32> = (0..6).map(|v| v as f32 * -0.4).collect();
        let relu: fn(f32) -> f32 = |v| v.max(0.0);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        // Reference: unfused conv, then standalone affine + activation
        // passes in the order the epilogue uses. (All formats share the
        // canonical accumulation order, so one reference serves both.)
        let plane = 9 * 9;
        let unfused_then_epilogue = |conv: &Tensor| {
            let mut want = conv.as_slice().to_vec();
            for (tile, p) in want.chunks_mut(plane).enumerate() {
                let oc = tile % 6;
                for v in p.iter_mut() {
                    *v = relu(scale[oc] * *v + shift[oc]);
                }
            }
            want
        };
        let want = unfused_then_epilogue(&conv2d_pattern_sparse(&x, &pc, Some(&bias)).unwrap());
        let want_un = unfused_then_epilogue(&conv2d_unstructured(&x, &un, Some(&bias)).unwrap());
        assert_eq!(want, want_un, "formats share the canonical order");
        let epi = Epilogue {
            affine: Some((&scale, &shift)),
            act: Some(rtoss_tensor::EpilogueAct::Relu),
        };
        for threads in [1usize, 2, 4, 7] {
            let cfg = ExecConfig::with_threads(threads);
            // Dirty buffers prove every element is overwritten.
            let mut got = vec![f32::NAN; 2 * 6 * plane];
            let shape = conv2d_pattern_sparse_into_with(
                x.as_slice(),
                x.shape(),
                &pc,
                Some(&bias),
                &epi,
                &mut got,
                &cfg,
            )
            .unwrap();
            assert_eq!(shape, [2, 6, 9, 9]);
            assert_eq!(got, want, "pattern t={threads}");
            let mut got_un = vec![f32::NAN; 2 * 6 * plane];
            conv2d_unstructured_into_with(
                x.as_slice(),
                x.shape(),
                &un,
                Some(&bias),
                &epi,
                &mut got_un,
                &cfg,
            )
            .unwrap();
            assert_eq!(got_un, want_un, "coo t={threads}");
        }
    }

    #[test]
    fn into_variants_reject_bad_buffers_and_epilogues() {
        let w = pruned(3, 4, 2, 33);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        let x = init::uniform(&mut init::rng(34), &[1, 2, 5, 5], -1.0, 1.0);
        let cfg = ExecConfig::serial();
        let mut short = vec![0.0f32; 3];
        assert!(conv2d_pattern_sparse_into_with(
            x.as_slice(),
            x.shape(),
            &pc,
            None,
            &Epilogue::NONE,
            &mut short,
            &cfg,
        )
        .is_err());
        let bad_scale = [1.0f32; 3]; // layer has 4 out channels
        let bad_shift = [0.0f32; 3];
        let mut out = vec![0.0f32; 4 * 25];
        assert!(conv2d_pattern_sparse_into_with(
            x.as_slice(),
            x.shape(),
            &pc,
            None,
            &Epilogue {
                affine: Some((&bad_scale, &bad_shift)),
                act: None,
            },
            &mut out,
            &cfg,
        )
        .is_err());
        // Dense path: non-square weights rejected.
        let wbad = Tensor::zeros(&[4, 2, 3, 5]);
        assert!(conv2d_dense_into_with(
            x.as_slice(),
            x.shape(),
            &wbad,
            1,
            1,
            None,
            &Epilogue::NONE,
            &mut out,
            &cfg,
        )
        .is_err());
    }

    #[test]
    fn rejects_wrong_channels_and_bias() {
        let w = pruned(3, 4, 2, 19);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        let x = Tensor::zeros(&[1, 3, 6, 6]);
        assert!(conv2d_pattern_sparse(&x, &pc, None).is_err());
        let x = Tensor::zeros(&[1, 2, 6, 6]);
        assert!(conv2d_pattern_sparse(&x, &pc, Some(&[0.0])).is_err());
    }

    #[test]
    fn fully_pruned_layer_outputs_bias() {
        let w = Tensor::zeros(&[2, 2, 3, 3]);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        let x = init::uniform(&mut init::rng(20), &[1, 2, 4, 4], -1.0, 1.0);
        let y = conv2d_pattern_sparse(&x, &pc, Some(&[1.5, -0.5])).unwrap();
        assert!(y.as_slice()[..16].iter().all(|&v| v == 1.5));
        assert!(y.as_slice()[16..].iter().all(|&v| v == -0.5));
    }
}
