//! Sparse convolution executors.
//!
//! Both executors compute exactly the same result as
//! [`rtoss_tensor::ops::conv2d`] on the masked dense weights; they
//! differ in how they traverse the surviving weights:
//!
//! - [`conv2d_pattern_sparse`]: per pattern group, the offset list is
//!   fixed — the inner loop streams a contiguous output row against a
//!   contiguous (shifted) input row, once per non-zero cell. Regular,
//!   cache-friendly, and work ∝ surviving weights.
//! - [`conv2d_unstructured`]: per-weight COO traversal — same work
//!   count, but each weight re-derives its offsets and the accumulation
//!   pattern is irregular, modelling the thread-divergence/locality
//!   penalty the paper attributes to unstructured sparsity (§II.B).
//!
//! Both executors tile their output into `(batch, out-channel)` planes
//! and run the tiles across scoped threads (`*_with` variants take an
//! [`ExecConfig`]; the plain variants use the process default). Tiles
//! own disjoint `&mut` output slices, and each plane accumulates in the
//! serial sweep's floating-point order, so results are bit-identical
//! for every thread count.

use crate::format::{PatternCompressedConv, UnstructuredSparseConv};
use rtoss_tensor::exec::{run_tiles, Epilogue, ExecConfig};
use rtoss_tensor::ops::out_extent;
use rtoss_tensor::{Tensor, TensorError};

fn check_input(
    shape: &[usize],
    in_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    op: &'static str,
) -> Result<(usize, usize, usize, usize, usize), TensorError> {
    if shape.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: shape.len(),
            op,
        });
    }
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    if c != in_ch {
        return Err(TensorError::Invalid {
            op,
            msg: format!("input has {c} channels, layer expects {in_ch}"),
        });
    }
    let oh = out_extent(h, kernel, stride, pad).ok_or_else(|| TensorError::Invalid {
        op,
        msg: "kernel does not fit input".into(),
    })?;
    let ow = out_extent(w, kernel, stride, pad).ok_or_else(|| TensorError::Invalid {
        op,
        msg: "kernel does not fit input".into(),
    })?;
    Ok((n, h, w, oh, ow))
}

/// Accumulates `val * x_row` into `out_row` for one (kernel-cell, output
/// row) pair. Padding bounds are hoisted out of the inner loop: the
/// valid `ox` range is computed once, and the stride-1 common case runs
/// a branch-free contiguous saxpy. Shared by both executors.
#[allow(clippy::too_many_arguments)]
#[inline]
fn accumulate_row(
    out_row: &mut [f32],
    x_plane: &[f32],
    w_in: usize,
    iy: isize,
    h_in: usize,
    kx: usize,
    stride: usize,
    pad: usize,
    val: f32,
) {
    if iy < 0 || iy >= h_in as isize {
        return;
    }
    let ow = out_row.len();
    // Valid ox satisfy 0 <= ox*stride + kx - pad < w_in.
    let ox_start = pad.saturating_sub(kx).div_ceil(stride).min(ow);
    let ox_end = ((w_in + pad).saturating_sub(kx).div_ceil(stride)).min(ow);
    if ox_start >= ox_end {
        return;
    }
    let x_row = &x_plane[iy as usize * w_in..(iy as usize + 1) * w_in];
    let ix_start = ox_start * stride + kx - pad;
    if stride == 1 {
        let len = ox_end - ox_start;
        let xs = &x_row[ix_start..ix_start + len];
        let os = &mut out_row[ox_start..ox_end];
        for (o, &xv) in os.iter_mut().zip(xs.iter()) {
            *o += val * xv;
        }
    } else {
        let mut ix = ix_start;
        for o in &mut out_row[ox_start..ox_end] {
            *o += val * x_row[ix];
            ix += stride;
        }
    }
}

/// Executes a pattern-compressed convolution: `x (N,C,H,W) → (N,O,oh,ow)`.
///
/// # Errors
///
/// Returns an error if the input rank/channels do not match the layer
/// or the kernel does not fit.
pub fn conv2d_pattern_sparse(
    x: &Tensor,
    layer: &PatternCompressedConv,
    bias: Option<&[f32]>,
) -> Result<Tensor, TensorError> {
    conv2d_pattern_sparse_with(x, layer, bias, &ExecConfig::default())
}

/// [`conv2d_pattern_sparse`] with an explicit [`ExecConfig`].
///
/// The output is tiled into `(batch, out-channel)` planes dispatched
/// across `exec.threads` scoped threads. Each plane accumulates its
/// kernels in the same group/kernel/offset order as the serial sweep,
/// so every thread count produces bit-identical results.
///
/// # Errors
///
/// Same conditions as [`conv2d_pattern_sparse`].
pub fn conv2d_pattern_sparse_with(
    x: &Tensor,
    layer: &PatternCompressedConv,
    bias: Option<&[f32]>,
    exec: &ExecConfig,
) -> Result<Tensor, TensorError> {
    let shape = conv_output_shape(
        x.shape(),
        layer.in_channels(),
        layer.out_channels(),
        layer.kernel_size(),
        layer.stride(),
        layer.padding(),
        "conv2d_pattern_sparse",
    )?;
    let mut out = vec![0.0f32; shape.iter().product()];
    conv2d_pattern_sparse_into_with(
        x.as_slice(),
        x.shape(),
        layer,
        bias,
        &Epilogue::NONE,
        &mut out,
        exec,
    )?;
    Tensor::from_vec(out, &shape)
}

/// Output shape `[n, out_ch, oh, ow]` of a sparse convolution over an
/// input of `x_shape`, validating geometry without executing anything.
/// The execution plan calls this once at plan time so per-call forwards
/// skip shape inference entirely.
///
/// # Errors
///
/// Returns an error if the input rank/channels do not match the layer
/// or the kernel does not fit.
#[allow(clippy::too_many_arguments)]
pub fn conv_output_shape(
    x_shape: &[usize],
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    op: &'static str,
) -> Result<[usize; 4], TensorError> {
    let (n, _h, _w, oh, ow) = check_input(x_shape, in_ch, kernel, stride, pad, op)?;
    Ok([n, out_ch, oh, ow])
}

/// Validates bias/epilogue/output-buffer lengths shared by both
/// into-variants.
fn check_into_args(
    op: &'static str,
    o: usize,
    bias: Option<&[f32]>,
    epilogue: &Epilogue<'_>,
    out_len: usize,
    want_len: usize,
) -> Result<(), TensorError> {
    if let Some(b) = bias {
        if b.len() != o {
            return Err(TensorError::Invalid {
                op,
                msg: format!("bias length {} != out channels {o}", b.len()),
            });
        }
    }
    if let Some((scale, shift)) = epilogue.affine {
        if scale.len() != o || shift.len() != o {
            return Err(TensorError::Invalid {
                op,
                msg: format!(
                    "epilogue affine lengths {}/{} != out channels {o}",
                    scale.len(),
                    shift.len()
                ),
            });
        }
    }
    if out_len != want_len {
        return Err(TensorError::Invalid {
            op,
            msg: format!("output buffer holds {out_len} elements, need {want_len}"),
        });
    }
    Ok(())
}

/// Write-into-buffer variant of [`conv2d_pattern_sparse_with`] with an
/// [`Epilogue`] hook: the compiled execution plan's conv step.
///
/// `x`/`x_shape` describe the input (an arena slice — no `Tensor`
/// allocation on the hot path); the result is written into `out`, which
/// must hold exactly `n * out_channels * oh * ow` elements. Every
/// element of `out` is overwritten (bias or zero fill first), so a
/// reused arena buffer needs no clearing. The epilogue runs per output
/// plane after that plane's accumulation, inside the same tile — hot in
/// cache, composing with the scoped-thread tiling, and bit-identical
/// for every thread count (each plane is processed by exactly one
/// worker in the serial sweep's order).
///
/// Returns the output shape `[n, out_channels, oh, ow]`.
///
/// # Errors
///
/// Same conditions as [`conv2d_pattern_sparse`], plus mismatched
/// epilogue or output-buffer lengths.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_pattern_sparse_into_with(
    x: &[f32],
    x_shape: &[usize],
    layer: &PatternCompressedConv,
    bias: Option<&[f32]>,
    epilogue: &Epilogue<'_>,
    out: &mut [f32],
    exec: &ExecConfig,
) -> Result<[usize; 4], TensorError> {
    let (stride, pad, k) = (layer.stride(), layer.padding(), layer.kernel_size());
    let (n, h, w, oh, ow) = check_input(
        x_shape,
        layer.in_channels(),
        k,
        stride,
        pad,
        "conv2d_pattern_sparse",
    )?;
    let (o, c) = (layer.out_channels(), layer.in_channels());
    let plane = oh * ow;
    check_into_args(
        "conv2d_pattern_sparse",
        o,
        bias,
        epilogue,
        out.len(),
        n * o * plane,
    )?;
    // Debug-build checkpoint: a corrupt artifact (out-of-bounds channel
    // or offset) would otherwise surface as an index panic in the tiled
    // workers below. Release builds rely on the opt-in `rtoss-verify`
    // pre-flight pass instead of paying this on every forward.
    #[cfg(debug_assertions)]
    {
        let violations = layer.validate();
        debug_assert!(
            violations.is_empty(),
            "conv2d_pattern_sparse on invalid layer: {violations:?}"
        );
    }
    // Index kernels by output channel, preserving the serial sweep's
    // group-major order so each plane accumulates identically.
    type OcKernel<'a> = (&'a [(usize, usize)], usize, &'a [f32]);
    let mut per_oc: Vec<Vec<OcKernel<'_>>> = vec![Vec::new(); o];
    for g in layer.groups() {
        // The pattern's offsets are fixed for every kernel in the
        // group — this regularity is the point of pattern grouping.
        for (oc, ic, values) in &g.kernels {
            per_oc[*oc].push((g.offsets.as_slice(), *ic, values.as_slice()));
        }
    }
    let tiles: Vec<(usize, &mut [f32])> = out.chunks_mut(plane).enumerate().collect();
    run_tiles(tiles, exec.threads, |(tile, out_plane)| {
        let (ni, oc) = (tile / o, tile % o);
        // The buffer may be a reused arena slot: fill unconditionally.
        out_plane.fill(bias.map_or(0.0, |b| b[oc]));
        for &(offsets, ic, values) in &per_oc[oc] {
            let x_plane = &x[(ni * c + ic) * h * w..(ni * c + ic + 1) * h * w];
            for (&(ky, kx), &val) in offsets.iter().zip(values.iter()) {
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    accumulate_row(
                        &mut out_plane[oy * ow..(oy + 1) * ow],
                        x_plane,
                        w,
                        iy,
                        h,
                        kx,
                        stride,
                        pad,
                        val,
                    );
                }
            }
        }
        epilogue.apply(oc, out_plane);
    });
    Ok([n, o, oh, ow])
}

/// Executes an unstructured (COO) sparse convolution.
///
/// # Errors
///
/// Returns an error if the input rank/channels do not match the layer
/// or the kernel does not fit.
pub fn conv2d_unstructured(
    x: &Tensor,
    layer: &UnstructuredSparseConv,
    bias: Option<&[f32]>,
) -> Result<Tensor, TensorError> {
    conv2d_unstructured_with(x, layer, bias, &ExecConfig::default())
}

/// [`conv2d_unstructured`] with an explicit [`ExecConfig`].
///
/// Same `(batch, out-channel)`-plane tiling as the pattern executor;
/// each plane replays its COO entries in submission order, so results
/// are bit-identical for every thread count.
///
/// # Errors
///
/// Same conditions as [`conv2d_unstructured`].
pub fn conv2d_unstructured_with(
    x: &Tensor,
    layer: &UnstructuredSparseConv,
    bias: Option<&[f32]>,
    exec: &ExecConfig,
) -> Result<Tensor, TensorError> {
    let shape = conv_output_shape(
        x.shape(),
        layer.in_channels(),
        layer.out_channels(),
        layer.kernel_size(),
        layer.stride(),
        layer.padding(),
        "conv2d_unstructured",
    )?;
    let mut out = vec![0.0f32; shape.iter().product()];
    conv2d_unstructured_into_with(
        x.as_slice(),
        x.shape(),
        layer,
        bias,
        &Epilogue::NONE,
        &mut out,
        exec,
    )?;
    Tensor::from_vec(out, &shape)
}

/// Write-into-buffer variant of [`conv2d_unstructured_with`] with an
/// [`Epilogue`] hook; the COO twin of
/// [`conv2d_pattern_sparse_into_with`] (same buffer contract: `out` is
/// fully overwritten, the epilogue runs per output plane inside the
/// tile, bit-identical for every thread count).
///
/// Returns the output shape `[n, out_channels, oh, ow]`.
///
/// # Errors
///
/// Same conditions as [`conv2d_unstructured`], plus mismatched epilogue
/// or output-buffer lengths.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_unstructured_into_with(
    x: &[f32],
    x_shape: &[usize],
    layer: &UnstructuredSparseConv,
    bias: Option<&[f32]>,
    epilogue: &Epilogue<'_>,
    out: &mut [f32],
    exec: &ExecConfig,
) -> Result<[usize; 4], TensorError> {
    let (stride, pad, k) = (layer.stride(), layer.padding(), layer.kernel_size());
    let (n, h, w, oh, ow) = check_input(
        x_shape,
        layer.in_channels(),
        k,
        stride,
        pad,
        "conv2d_unstructured",
    )?;
    let (o, c) = (layer.out_channels(), layer.in_channels());
    let plane = oh * ow;
    check_into_args(
        "conv2d_unstructured",
        o,
        bias,
        epilogue,
        out.len(),
        n * o * plane,
    )?;
    // Debug-build checkpoint; see conv2d_pattern_sparse_into_with.
    #[cfg(debug_assertions)]
    {
        let violations = layer.validate();
        debug_assert!(
            violations.is_empty(),
            "conv2d_unstructured on invalid layer: {violations:?}"
        );
    }
    // Index COO entries by output channel, preserving entry order.
    let mut per_oc: Vec<Vec<(usize, usize, usize, f32)>> = vec![Vec::new(); o];
    for &(oc, ic, ky, kx, val) in layer.entries() {
        per_oc[oc].push((ic, ky, kx, val));
    }
    let tiles: Vec<(usize, &mut [f32])> = out.chunks_mut(plane).enumerate().collect();
    run_tiles(tiles, exec.threads, |(tile, out_plane)| {
        let (ni, oc) = (tile / o, tile % o);
        // The buffer may be a reused arena slot: fill unconditionally.
        out_plane.fill(bias.map_or(0.0, |b| b[oc]));
        // Per-weight dispatch: every entry independently re-derives its
        // geometry — the irregular path.
        for &(ic, ky, kx, val) in &per_oc[oc] {
            let x_plane = &x[(ni * c + ic) * h * w..(ni * c + ic + 1) * h * w];
            for oy in 0..oh {
                let iy = (oy * stride + ky) as isize - pad as isize;
                accumulate_row(
                    &mut out_plane[oy * ow..(oy + 1) * ow],
                    x_plane,
                    w,
                    iy,
                    h,
                    kx,
                    stride,
                    pad,
                    val,
                );
            }
        }
        epilogue.apply(oc, out_plane);
    });
    Ok([n, o, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::pattern::canonical_set;
    use rtoss_core::prune3x3::prune_3x3_weights;
    use rtoss_tensor::{init, ops};

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (i, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!((x - y).abs() < tol, "idx {i}: {x} vs {y}");
        }
    }

    fn pruned(k_entries: usize, o: usize, i: usize, seed: u64) -> Tensor {
        let mut w = init::uniform(&mut init::rng(seed), &[o, i, 3, 3], -1.0, 1.0);
        let set = canonical_set(k_entries).unwrap();
        prune_3x3_weights(&mut w, &set).unwrap();
        w
    }

    #[test]
    fn pattern_sparse_matches_dense() {
        for &(stride, pad) in &[(1usize, 1usize), (2, 1), (1, 0)] {
            let w = pruned(3, 6, 4, 11);
            let x = init::uniform(&mut init::rng(12), &[2, 4, 9, 9], -1.0, 1.0);
            let bias: Vec<f32> = (0..6).map(|v| v as f32 * 0.1).collect();
            let dense = ops::conv2d(&x, &w, Some(&bias), stride, pad).unwrap();
            let pc = PatternCompressedConv::from_dense(&w, stride, pad).unwrap();
            let sparse = conv2d_pattern_sparse(&x, &pc, Some(&bias)).unwrap();
            assert_close(&sparse, &dense, 1e-4);
        }
    }

    #[test]
    fn unstructured_matches_dense() {
        let w = pruned(2, 5, 3, 13);
        let x = init::uniform(&mut init::rng(14), &[1, 3, 7, 7], -1.0, 1.0);
        let dense = ops::conv2d(&x, &w, None, 1, 1).unwrap();
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        let sparse = conv2d_unstructured(&x, &un, None).unwrap();
        assert_close(&sparse, &dense, 1e-4);
    }

    #[test]
    fn executors_agree_with_each_other() {
        let w = pruned(2, 8, 8, 15);
        let x = init::uniform(&mut init::rng(16), &[1, 8, 12, 12], -1.0, 1.0);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        let a = conv2d_pattern_sparse(&x, &pc, None).unwrap();
        let b = conv2d_unstructured(&x, &un, None).unwrap();
        assert_close(&a, &b, 1e-4);
    }

    #[test]
    fn one_by_one_sparse_conv() {
        let mut w = init::uniform(&mut init::rng(17), &[6, 4, 1, 1], -1.0, 1.0);
        for idx in [0usize, 5, 10, 15, 20] {
            w.as_mut_slice()[idx] = 0.0;
        }
        let x = init::uniform(&mut init::rng(18), &[1, 4, 6, 6], -1.0, 1.0);
        let dense = ops::conv2d(&x, &w, None, 1, 0).unwrap();
        let pc = PatternCompressedConv::from_dense(&w, 1, 0).unwrap();
        assert_close(&conv2d_pattern_sparse(&x, &pc, None).unwrap(), &dense, 1e-4);
    }

    #[test]
    fn parallel_executors_bit_identical_to_serial() {
        for &(stride, pad, batch) in &[(1usize, 1usize, 1usize), (2, 1, 3), (1, 0, 2)] {
            let w = pruned(3, 7, 5, 21);
            let x = init::uniform(&mut init::rng(22), &[batch, 5, 9, 11], -1.0, 1.0);
            let bias: Vec<f32> = (0..7).map(|v| v as f32 * 0.2 - 0.5).collect();
            let pc = PatternCompressedConv::from_dense(&w, stride, pad).unwrap();
            let un = UnstructuredSparseConv::from_dense(&w, stride, pad).unwrap();
            let serial_pc =
                conv2d_pattern_sparse_with(&x, &pc, Some(&bias), &ExecConfig::serial()).unwrap();
            let serial_un =
                conv2d_unstructured_with(&x, &un, Some(&bias), &ExecConfig::serial()).unwrap();
            for threads in [2usize, 3, 5, 8] {
                let cfg = ExecConfig::with_threads(threads);
                let par_pc = conv2d_pattern_sparse_with(&x, &pc, Some(&bias), &cfg).unwrap();
                let par_un = conv2d_unstructured_with(&x, &un, Some(&bias), &cfg).unwrap();
                assert_eq!(
                    serial_pc.as_slice(),
                    par_pc.as_slice(),
                    "pattern t={threads}"
                );
                assert_eq!(serial_un.as_slice(), par_un.as_slice(), "coo t={threads}");
            }
        }
    }

    #[test]
    fn into_variants_with_fused_epilogue_match_separate_passes() {
        let w = pruned(3, 6, 4, 31);
        let x = init::uniform(&mut init::rng(32), &[2, 4, 9, 9], -1.0, 1.0);
        let bias: Vec<f32> = (0..6).map(|v| v as f32 * 0.1 - 0.2).collect();
        let scale: Vec<f32> = (0..6).map(|v| 0.5 + v as f32 * 0.3).collect();
        let shift: Vec<f32> = (0..6).map(|v| v as f32 * -0.4).collect();
        let relu: fn(f32) -> f32 = |v| v.max(0.0);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        // Reference per executor: unfused conv, then standalone affine
        // + activation passes in the order the epilogue uses. (The two
        // executors accumulate in different float orders, so each gets
        // its own bit-exact reference.)
        let plane = 9 * 9;
        let unfused_then_epilogue = |conv: &Tensor| {
            let mut want = conv.as_slice().to_vec();
            for (tile, p) in want.chunks_mut(plane).enumerate() {
                let oc = tile % 6;
                for v in p.iter_mut() {
                    *v = relu(scale[oc] * *v + shift[oc]);
                }
            }
            want
        };
        let want = unfused_then_epilogue(&conv2d_pattern_sparse(&x, &pc, Some(&bias)).unwrap());
        let want_un = unfused_then_epilogue(&conv2d_unstructured(&x, &un, Some(&bias)).unwrap());
        let epi = Epilogue {
            affine: Some((&scale, &shift)),
            act: Some(rtoss_tensor::EpilogueAct::Relu),
        };
        for threads in [1usize, 2, 4, 7] {
            let cfg = ExecConfig::with_threads(threads);
            // Dirty buffers prove every element is overwritten.
            let mut got = vec![f32::NAN; 2 * 6 * plane];
            let shape = conv2d_pattern_sparse_into_with(
                x.as_slice(),
                x.shape(),
                &pc,
                Some(&bias),
                &epi,
                &mut got,
                &cfg,
            )
            .unwrap();
            assert_eq!(shape, [2, 6, 9, 9]);
            assert_eq!(got, want, "pattern t={threads}");
            let mut got_un = vec![f32::NAN; 2 * 6 * plane];
            conv2d_unstructured_into_with(
                x.as_slice(),
                x.shape(),
                &un,
                Some(&bias),
                &epi,
                &mut got_un,
                &cfg,
            )
            .unwrap();
            assert_eq!(got_un, want_un, "coo t={threads}");
        }
    }

    #[test]
    fn into_variants_reject_bad_buffers_and_epilogues() {
        let w = pruned(3, 4, 2, 33);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        let x = init::uniform(&mut init::rng(34), &[1, 2, 5, 5], -1.0, 1.0);
        let cfg = ExecConfig::serial();
        let mut short = vec![0.0f32; 3];
        assert!(conv2d_pattern_sparse_into_with(
            x.as_slice(),
            x.shape(),
            &pc,
            None,
            &Epilogue::NONE,
            &mut short,
            &cfg,
        )
        .is_err());
        let bad_scale = [1.0f32; 3]; // layer has 4 out channels
        let bad_shift = [0.0f32; 3];
        let mut out = vec![0.0f32; 4 * 25];
        assert!(conv2d_pattern_sparse_into_with(
            x.as_slice(),
            x.shape(),
            &pc,
            None,
            &Epilogue {
                affine: Some((&bad_scale, &bad_shift)),
                act: None,
            },
            &mut out,
            &cfg,
        )
        .is_err());
    }

    #[test]
    fn rejects_wrong_channels_and_bias() {
        let w = pruned(3, 4, 2, 19);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        let x = Tensor::zeros(&[1, 3, 6, 6]);
        assert!(conv2d_pattern_sparse(&x, &pc, None).is_err());
        let x = Tensor::zeros(&[1, 2, 6, 6]);
        assert!(conv2d_pattern_sparse(&x, &pc, Some(&[0.0])).is_err());
    }

    #[test]
    fn fully_pruned_layer_outputs_bias() {
        let w = Tensor::zeros(&[2, 2, 3, 3]);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        let x = init::uniform(&mut init::rng(20), &[1, 2, 4, 4], -1.0, 1.0);
        let y = conv2d_pattern_sparse(&x, &pc, Some(&[1.5, -0.5])).unwrap();
        assert!(y.as_slice()[..16].iter().all(|&v| v == 1.5));
        assert!(y.as_slice()[16..].iter().all(|&v| v == -0.5));
    }
}
