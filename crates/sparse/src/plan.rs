//! Compile-before-run execution plans for the sparse engine.
//!
//! [`SparseModel::forward_with`] used to be a per-call graph
//! interpreter: every request re-walked the node list, re-validated
//! shapes, heap-allocated a fresh tensor per node, kept every
//! activation alive until the pass ended, and applied batch-norm
//! affines and activations as separate full passes over memory. Mobile
//! pattern-pruning deployments (PatDNN-style compiler stacks) get their
//! speedups from doing all of that work *ahead of time* — and that is
//! what an [`ExecutionPlan`] is:
//!
//! 1. **Shape inference & validation once.** Compiling a plan for an
//!    input shape runs the whole symbolic forward pass; per-call
//!    execution does no shape checks.
//! 2. **Liveness analysis + buffer arena.** The plan computes each
//!    value's last consumer and assigns outputs to reusable arena slots
//!    (best-fit from a free list). A slot is recycled as soon as its
//!    tenant's last consumer has run, so peak activation memory is the
//!    liveness peak, not the sum over all nodes. The plan reports
//!    [`arena_bytes`](ExecutionPlan::arena_bytes) (what a run actually
//!    allocates), [`peak_live_bytes`](ExecutionPlan::peak_live_bytes)
//!    (the liveness-simulation peak), and
//!    [`retained_bytes`](ExecutionPlan::retained_bytes) (what the old
//!    keep-everything interpreter held).
//! 3. **Conv → ChannelAffine → Activation fusion.** A conv whose sole
//!    consumer is a channel affine (folded BN), optionally followed by
//!    a sole-consumer activation, collapses into one conv step with an
//!    [`Epilogue`]: the affine and activation run per output plane
//!    while it is hot in cache, inside the tiled executor, instead of
//!    as two extra passes over the whole tensor.
//!
//! Every transformation is bit-exact: the fused epilogue performs the
//! same `f32` operations in the same order as the standalone passes,
//! the arena ops mirror the interpreter's loops exactly, and the tiled
//! conv executor already guarantees thread-count independence — so
//! planned outputs are **bit-identical** to interpreted outputs for
//! every thread count. `rtoss-verify`'s RV05x family checks the
//! schedule, the arena assignment, and that equivalence on seeded
//! engines.

use crate::exec::{conv2d_pattern_sparse_into_with, conv_output_shape};
use crate::model::{epilogue_act, eval_act, SparseModel, SparseModelError, SparseNode, SparseOp};
use rtoss_nn::layers::ActivationKind;
use rtoss_tensor::exec::{Epilogue, ExecConfig};
use rtoss_tensor::ops::out_extent;
use rtoss_tensor::{Tensor, TensorError};
use std::sync::{Mutex, PoisonError};

/// Arenas kept for reuse across runs; above this the extras are freed.
/// Matches the serving layer's typical worker count so concurrent
/// micro-batch workers each find a warm arena.
const POOL_CAP: usize = 8;

/// Where a plan step reads one of its operands from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepSource {
    /// The caller's input tensor (an `Input` graph node).
    Extern,
    /// The output of an earlier plan step.
    Step(usize),
}

/// One scheduled operation of a compiled plan.
#[derive(Debug)]
struct PlanStep {
    /// Model node this step computes (the conv node for fused chains).
    node: usize,
    /// Model node of a `ChannelAffine` fused into this conv's epilogue.
    fused_affine: Option<usize>,
    /// Activation fused into this conv's epilogue.
    fused_act: Option<ActivationKind>,
    /// Operand sources, in the node's input order.
    inputs: Vec<StepSource>,
    /// Arena slot holding this step's output.
    out_slot: usize,
    /// Output shape, inferred at plan time.
    out_shape: Vec<usize>,
    /// Output element count (`out_shape` product).
    out_len: usize,
    /// Step index of the last consumer; `usize::MAX` marks a retained
    /// output whose slot is never recycled; a step's own index marks a
    /// dead value freed immediately.
    last_use: usize,
}

impl PlanStep {
    fn fused_label(&self) -> &'static str {
        match (self.fused_affine, self.fused_act) {
            (Some(_), Some(_)) => "affine+act",
            (Some(_), None) => "affine",
            (None, Some(_)) => "act",
            (None, None) => "none",
        }
    }
}

/// Summary of one plan step, for verification and reporting. All
/// fields are public so `rtoss-verify` fixtures can construct corrupted
/// summaries that prove the RV05x checks fire.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSummary {
    /// Model node index this step computes.
    pub node: usize,
    /// Source graph node name.
    pub name: String,
    /// Operation kind (`conv`, `maxpool`, …).
    pub kind: &'static str,
    /// Epilogue fusion applied: `none`, `affine`, `act`, `affine+act`.
    pub fused: &'static str,
    /// Producing step index per operand; `None` = the extern input.
    pub inputs: Vec<Option<usize>>,
    /// Arena slot holding the output.
    pub out_slot: usize,
    /// Output element count.
    pub out_len: usize,
    /// Last consuming step index (`usize::MAX` = retained output).
    pub last_use: usize,
}

/// Summary of a compiled plan: the schedule, arena assignment, and
/// memory accounting `rtoss-verify`'s RV05x checks inspect.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSummary {
    /// Input shape the plan was compiled for.
    pub input_shape: Vec<usize>,
    /// Scheduled steps in execution order.
    pub steps: Vec<StepSummary>,
    /// Producing step per declared output; `None` = the extern input.
    pub outputs: Vec<Option<usize>>,
    /// Element capacity of each arena slot.
    pub slot_caps: Vec<usize>,
    /// Bytes a run allocates for the arena (Σ slot capacities × 4).
    pub arena_bytes: u64,
    /// Peak bytes simultaneously live during the liveness simulation.
    pub peak_live_bytes: u64,
    /// Bytes the keep-everything interpreter would retain (Σ step
    /// outputs) — the pre-plan baseline.
    pub retained_bytes: u64,
}

/// A [`SparseModel`] compiled for one input shape: validated schedule,
/// fused conv epilogues, and arena slot assignment. Compile once (per
/// shape), run many times.
#[derive(Debug)]
pub struct ExecutionPlan {
    input_shape: Vec<usize>,
    /// Node count of the model this plan was compiled from; guards
    /// against running a plan against a different engine.
    n_nodes: usize,
    steps: Vec<PlanStep>,
    outputs: Vec<StepSource>,
    slot_caps: Vec<usize>,
    peak_live_bytes: u64,
    retained_bytes: u64,
    /// Recycled arenas (one per concurrent runner), so steady-state
    /// runs allocate only the retained-output buffers.
    pool: Mutex<Vec<Vec<Vec<f32>>>>,
}

/// Fused chain recorded per conv node: the absorbed `ChannelAffine`
/// node (if any), the absorbed activation kind (if any), and the chain
/// tail node whose output the conv step now produces.
type FusedChain = (Option<usize>, Option<ActivationKind>, usize);

fn plan_err(msg: String) -> SparseModelError {
    SparseModelError::Tensor(TensorError::Invalid {
        op: "execution_plan",
        msg,
    })
}

impl ExecutionPlan {
    /// Compiles `model` for `input_shape`: infers and validates every
    /// shape, fuses conv→affine→activation chains, computes liveness,
    /// and assigns arena slots.
    ///
    /// # Errors
    ///
    /// Returns an error when any node's shape constraints fail for this
    /// input shape — the same conditions the interpreter would hit per
    /// call, surfaced once at plan time.
    pub fn compile(model: &SparseModel, input_shape: &[usize]) -> Result<Self, SparseModelError> {
        let nodes = &model.nodes;
        let n = nodes.len();
        let shapes = infer_shapes(nodes, input_shape)?;

        // Sole-consumer map for fusion legality: a node is absorbable
        // when exactly one edge consumes it and it is not an output.
        let mut is_output = vec![false; n];
        for &o in &model.outputs {
            if let Some(f) = is_output.get_mut(o) {
                *f = true;
            }
        }
        let mut consumer_of: Vec<Option<usize>> = vec![None; n];
        for (i, node) in nodes.iter().enumerate() {
            for &j in &node.inputs {
                if let Some(c) = consumer_of.get_mut(j) {
                    *c = Some(i);
                }
            }
        }
        let sole_consumer = |i: usize| -> Option<usize> {
            if model.uses.get(i) == Some(&1) && !is_output[i] {
                consumer_of[i]
            } else {
                None
            }
        };

        // Fusion pass: for each conv, greedily absorb a sole-consumer
        // ChannelAffine, then a sole-consumer Activation, into the
        // conv's epilogue. Absorbed nodes get no step of their own.
        let mut fused_into_conv = vec![false; n];
        let mut fusion: Vec<Option<FusedChain>> = vec![None; n];
        for (i, node) in nodes.iter().enumerate() {
            if !matches!(node.op, SparseOp::Conv { .. }) {
                continue;
            }
            let mut tail = i;
            let mut affine = None;
            let mut act = None;
            if let Some(j) = sole_consumer(tail) {
                if matches!(nodes[j].op, SparseOp::ChannelAffine { .. }) {
                    affine = Some(j);
                    tail = j;
                }
            }
            if let Some(j) = sole_consumer(tail) {
                if let SparseOp::Activation(kind) = nodes[j].op {
                    act = Some(kind);
                    tail = j;
                }
            }
            if let Some(j) = affine {
                fused_into_conv[j] = true;
            }
            if act.is_some() {
                fused_into_conv[tail] = true;
            }
            fusion[i] = Some((affine, act, tail));
        }

        // Scheduling: one step per non-input, non-absorbed node, in
        // node order (already topological — the graph builder only
        // wires existing nodes).
        let mut node_to_step: Vec<Option<usize>> = vec![None; n];
        let mut steps: Vec<PlanStep> = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            if matches!(node.op, SparseOp::Input) || fused_into_conv[i] {
                continue;
            }
            let mut inputs = Vec::with_capacity(node.inputs.len());
            for &j in &node.inputs {
                if j >= i {
                    return Err(plan_err(format!(
                        "node {i} reads node {j}: not topological"
                    )));
                }
                if matches!(nodes[j].op, SparseOp::Input) {
                    inputs.push(StepSource::Extern);
                } else {
                    let s = node_to_step[j]
                        .ok_or_else(|| plan_err(format!("node {i} reads unscheduled node {j}")))?;
                    inputs.push(StepSource::Step(s));
                }
            }
            let (fused_affine, fused_act, tail) = match fusion[i] {
                Some((a, k, t)) => (a, k, t),
                None => (None, None, i),
            };
            let out_shape = shapes[tail].clone();
            let out_len = out_shape.iter().product();
            let s = steps.len();
            steps.push(PlanStep {
                node: i,
                fused_affine,
                fused_act,
                inputs,
                out_slot: usize::MAX,
                out_shape,
                out_len,
                last_use: s,
            });
            node_to_step[i] = Some(s);
            // Consumers of an absorbed chain's tail read the conv step.
            node_to_step[tail] = Some(s);
            if let Some(j) = fused_affine {
                node_to_step[j] = Some(s);
            }
        }

        // Liveness: last consuming step per step; retained outputs
        // never die.
        for s in 0..steps.len() {
            let sources = steps[s].inputs.clone();
            for src in sources {
                if let StepSource::Step(i) = src {
                    steps[i].last_use = steps[i].last_use.max(s);
                }
            }
        }
        let mut outputs = Vec::with_capacity(model.outputs.len());
        for &o in &model.outputs {
            if matches!(nodes.get(o).map(|n| &n.op), Some(SparseOp::Input)) {
                outputs.push(StepSource::Extern);
                continue;
            }
            let s = node_to_step
                .get(o)
                .copied()
                .flatten()
                .ok_or_else(|| plan_err(format!("output node {o} was not scheduled")))?;
            steps[s].last_use = usize::MAX;
            outputs.push(StepSource::Step(s));
        }

        // Arena assignment: best-fit from the free list. The output
        // slot is chosen while the step's inputs are still allocated,
        // so an output never aliases a dying input; dying inputs are
        // then freed for the *next* step.
        let mut slot_caps: Vec<usize> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut live_bytes: u64 = 0;
        let mut peak_live: u64 = 0;
        let mut retained: u64 = 0;
        for s in 0..steps.len() {
            let len = steps[s].out_len;
            retained += 4 * len as u64;
            let slot = match best_fit(&free, &slot_caps, len) {
                Some(pos) => {
                    let slot = free.swap_remove(pos);
                    slot_caps[slot] = slot_caps[slot].max(len);
                    slot
                }
                None => {
                    slot_caps.push(len);
                    slot_caps.len() - 1
                }
            };
            steps[s].out_slot = slot;
            live_bytes += 4 * len as u64;
            peak_live = peak_live.max(live_bytes);
            let mut dying: Vec<usize> = steps[s]
                .inputs
                .iter()
                .filter_map(|src| match src {
                    StepSource::Step(i) if steps[*i].last_use == s => Some(*i),
                    _ => None,
                })
                .collect();
            dying.sort_unstable();
            dying.dedup();
            for i in dying {
                free.push(steps[i].out_slot);
                live_bytes = live_bytes.saturating_sub(4 * steps[i].out_len as u64);
            }
            if steps[s].last_use == s {
                // Dead value (no consumer, not an output): recycle now.
                free.push(slot);
                live_bytes = live_bytes.saturating_sub(4 * len as u64);
            }
        }

        Ok(ExecutionPlan {
            input_shape: input_shape.to_vec(),
            n_nodes: n,
            steps,
            outputs,
            slot_caps,
            peak_live_bytes: peak_live,
            retained_bytes: retained,
            pool: Mutex::new(Vec::new()),
        })
    }

    /// The input shape this plan was compiled for.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Scheduled step count (fused chains count once).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Bytes a run allocates for the activation arena (Σ slot
    /// capacities × 4). This is the plan's measured peak activation
    /// footprint — what the serving metrics export as
    /// `peak_activation_bytes`.
    pub fn arena_bytes(&self) -> u64 {
        4 * self.slot_caps.iter().map(|&c| c as u64).sum::<u64>()
    }

    /// Peak bytes simultaneously live during the liveness simulation
    /// (≤ [`arena_bytes`](Self::arena_bytes), which also pays slot
    /// capacity growth from reuse across different-sized values).
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }

    /// Bytes the keep-everything interpreter would have retained at the
    /// end of a pass (Σ all step outputs) — the pre-plan baseline the
    /// arena numbers are compared against.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    /// The plan's schedule, arena assignment, and memory accounting.
    pub fn summary(&self) -> PlanSummary {
        PlanSummary {
            input_shape: self.input_shape.clone(),
            steps: self
                .steps
                .iter()
                .map(|s| StepSummary {
                    node: s.node,
                    name: String::new(),
                    kind: "",
                    fused: s.fused_label(),
                    inputs: s
                        .inputs
                        .iter()
                        .map(|src| match src {
                            StepSource::Extern => None,
                            StepSource::Step(i) => Some(*i),
                        })
                        .collect(),
                    out_slot: s.out_slot,
                    out_len: s.out_len,
                    last_use: s.last_use,
                })
                .collect(),
            outputs: self
                .outputs
                .iter()
                .map(|src| match src {
                    StepSource::Extern => None,
                    StepSource::Step(i) => Some(*i),
                })
                .collect(),
            slot_caps: self.slot_caps.clone(),
            arena_bytes: self.arena_bytes(),
            peak_live_bytes: self.peak_live_bytes,
            retained_bytes: self.retained_bytes,
        }
    }

    /// Like [`summary`](Self::summary) but with step names and kinds
    /// resolved from the model the plan was compiled from.
    pub fn summary_for(&self, model: &SparseModel) -> PlanSummary {
        let mut s = self.summary();
        for step in &mut s.steps {
            if let Some(node) = model.nodes.get(step.node) {
                step.name = node.name.clone();
                step.kind = node.kind();
            }
        }
        s
    }

    /// Executes the plan. `model` must be the engine this plan was
    /// compiled from (checked cheaply by node count).
    ///
    /// # Errors
    ///
    /// Returns an error if `model` or the input shape does not match
    /// the compiled plan. Per-node shape errors cannot occur here —
    /// they were ruled out at plan time.
    pub fn run(
        &self,
        model: &SparseModel,
        input: &Tensor,
        exec: &ExecConfig,
    ) -> Result<Vec<Tensor>, SparseModelError> {
        if model.nodes.len() != self.n_nodes {
            return Err(plan_err(format!(
                "plan was compiled for a {}-node engine, got {}",
                self.n_nodes,
                model.nodes.len()
            )));
        }
        if input.shape() != self.input_shape {
            return Err(plan_err(format!(
                "plan was compiled for input shape {:?}, got {:?}",
                self.input_shape,
                input.shape()
            )));
        }
        if rtoss_obs::recording() {
            rtoss_obs::emit_instant(
                "plan",
                vec![
                    ("steps", rtoss_obs::ArgValue::U64(self.steps.len() as u64)),
                    ("arena_bytes", rtoss_obs::ArgValue::U64(self.arena_bytes())),
                    (
                        "peak_live_bytes",
                        rtoss_obs::ArgValue::U64(self.peak_live_bytes),
                    ),
                ],
            );
        }
        let mut arena = {
            let mut pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
            pool.pop().unwrap_or_default()
        };
        arena.resize_with(self.slot_caps.len(), Vec::new);
        for (buf, &cap) in arena.iter_mut().zip(&self.slot_caps) {
            if buf.len() < cap {
                // Fresh capacity; every op fully overwrites its output
                // prefix, so no clearing between runs is needed.
                *buf = vec![0.0; cap];
            }
        }

        for (si, step) in self.steps.iter().enumerate() {
            let node = match model.nodes.get(step.node) {
                Some(n) => n,
                None => return Err(plan_err(format!("step {si}: node {} missing", step.node))),
            };
            let _span = step_span(step, node, exec);
            let mut out = match arena.get_mut(step.out_slot) {
                Some(buf) => std::mem::take(buf),
                None => {
                    return Err(plan_err(format!(
                        "step {si}: slot {} missing",
                        step.out_slot
                    )))
                }
            };
            let res = self.exec_step(step, model, node, input, &arena, &mut out, exec);
            if let Some(buf) = arena.get_mut(step.out_slot) {
                *buf = out;
            }
            res?;
        }

        let mut outs = Vec::with_capacity(self.outputs.len());
        for (k, src) in self.outputs.iter().enumerate() {
            let t = match src {
                StepSource::Extern => input.clone(),
                StepSource::Step(i) => {
                    let step = &self.steps[*i];
                    if self.outputs[k + 1..].contains(src) {
                        // Another declared output reads the same step:
                        // copy now, move on the final occurrence.
                        let data = arena
                            .get(step.out_slot)
                            .and_then(|b| b.get(..step.out_len))
                            .ok_or_else(|| plan_err(format!("output step {i} missing")))?;
                        Tensor::from_vec(data.to_vec(), &step.out_shape)?
                    } else {
                        let mut buf = arena
                            .get_mut(step.out_slot)
                            .map(std::mem::take)
                            .ok_or_else(|| plan_err(format!("output step {i} missing")))?;
                        buf.truncate(step.out_len);
                        Tensor::from_vec(buf, &step.out_shape)?
                    }
                }
            };
            outs.push(t);
        }
        let mut pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        if pool.len() < POOL_CAP {
            pool.push(arena);
        }
        Ok(outs)
    }

    /// Executes one step, writing into `out[..out_len]`.
    #[allow(clippy::too_many_arguments)]
    fn exec_step(
        &self,
        step: &PlanStep,
        model: &SparseModel,
        node: &SparseNode,
        input: &Tensor,
        arena: &[Vec<f32>],
        out_buf: &mut [f32],
        exec: &ExecConfig,
    ) -> Result<(), SparseModelError> {
        let out = out_buf
            .get_mut(..step.out_len)
            .ok_or_else(|| plan_err(format!("slot {} under-allocated", step.out_slot)))?;
        let src = |k: usize| -> Result<(&[f32], &[usize]), SparseModelError> {
            match step.inputs.get(k) {
                Some(StepSource::Extern) => Ok((input.as_slice(), input.shape())),
                Some(StepSource::Step(i)) => {
                    let st = self
                        .steps
                        .get(*i)
                        .ok_or_else(|| plan_err(format!("operand step {i} missing")))?;
                    let buf = arena
                        .get(st.out_slot)
                        .and_then(|b| b.get(..st.out_len))
                        .ok_or_else(|| plan_err(format!("operand slot {} missing", st.out_slot)))?;
                    Ok((buf, st.out_shape.as_slice()))
                }
                None => Err(plan_err(format!(
                    "step for node {} lacks operand {k}",
                    step.node
                ))),
            }
        };
        match &node.op {
            SparseOp::Conv { layer, bias } => {
                let affine = match step.fused_affine {
                    Some(j) => match model.nodes.get(j).map(|n| &n.op) {
                        Some(SparseOp::ChannelAffine { scale, shift }) => {
                            Some((scale.as_slice(), shift.as_slice()))
                        }
                        _ => {
                            return Err(plan_err(format!(
                                "fused affine node {j} is not a channel affine"
                            )))
                        }
                    },
                    None => None,
                };
                let (x, xs) = src(0)?;
                let epi = Epilogue {
                    affine,
                    act: step.fused_act.and_then(epilogue_act),
                };
                conv2d_pattern_sparse_into_with(x, xs, layer, Some(bias), &epi, out, exec)?;
            }
            SparseOp::ChannelAffine { scale, shift } => {
                let (x, xs) = src(0)?;
                channel_affine_into(x, xs, scale, shift, out);
            }
            SparseOp::Activation(kind) => {
                let (x, _) = src(0)?;
                let k = *kind;
                for (o, &v) in out.iter_mut().zip(x.iter()) {
                    *o = eval_act(k, v);
                }
            }
            SparseOp::MaxPool { k, stride, pad } => {
                let (x, xs) = src(0)?;
                maxpool2d_into(x, xs, *k, *stride, *pad, &step.out_shape, out);
            }
            SparseOp::Upsample2x => {
                let (x, xs) = src(0)?;
                upsample_nearest2x_into(x, xs, out);
            }
            SparseOp::Add => {
                let (a, _) = src(0)?;
                let (b, _) = src(1)?;
                for ((o, &av), &bv) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
                    *o = av + bv;
                }
            }
            SparseOp::Concat => {
                let mut parts = Vec::with_capacity(step.inputs.len());
                for k in 0..step.inputs.len() {
                    parts.push(src(k)?);
                }
                concat_channels_into(&parts, &step.out_shape, out);
            }
            SparseOp::Input => {
                return Err(plan_err("input node scheduled as a step".into()));
            }
        }
        Ok(())
    }
}

/// Best-fit free-slot lookup: index into `free` of the smallest slot
/// with capacity ≥ `len`, else the largest free slot (grown by the
/// caller), else `None`.
fn best_fit(free: &[usize], caps: &[usize], len: usize) -> Option<usize> {
    let mut fit: Option<(usize, usize)> = None; // (pos, cap)
    let mut largest: Option<(usize, usize)> = None;
    for (pos, &slot) in free.iter().enumerate() {
        let cap = caps[slot];
        if cap >= len && fit.is_none_or(|(_, c)| cap < c) {
            fit = Some((pos, cap));
        }
        if largest.is_none_or(|(_, c)| cap > c) {
            largest = Some((pos, cap));
        }
    }
    fit.or(largest).map(|(pos, _)| pos)
}

/// Plan-time shape inference over the compiled node list — the one
/// place shapes are validated; per-call execution trusts these.
fn infer_shapes(
    nodes: &[SparseNode],
    input_shape: &[usize],
) -> Result<Vec<Vec<usize>>, SparseModelError> {
    let mut shapes: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        let in0 = || -> Result<&Vec<usize>, SparseModelError> {
            node.inputs
                .first()
                .and_then(|&j| shapes.get(j))
                .filter(|s| !s.is_empty())
                .ok_or_else(|| plan_err(format!("node {i} has no resolvable input")))
        };
        let rank4 = |s: &[usize]| -> Result<(usize, usize, usize, usize), SparseModelError> {
            if s.len() != 4 {
                return Err(plan_err(format!("node {i} expects rank 4, got {s:?}")));
            }
            Ok((s[0], s[1], s[2], s[3]))
        };
        let shape = match &node.op {
            SparseOp::Input => input_shape.to_vec(),
            SparseOp::Conv { layer, bias } => {
                if bias.len() != layer.out_channels() {
                    return Err(plan_err(format!(
                        "node {i}: bias length {} != out channels {}",
                        bias.len(),
                        layer.out_channels()
                    )));
                }
                conv_output_shape(
                    in0()?,
                    layer.in_channels(),
                    layer.out_channels(),
                    layer.kernel_size(),
                    layer.stride(),
                    layer.padding(),
                    "execution_plan",
                )?
                .to_vec()
            }
            SparseOp::ChannelAffine { scale, shift } => {
                let s = in0()?.clone();
                let (_, c, _, _) = rank4(&s)?;
                if scale.len() != c || shift.len() != c {
                    return Err(plan_err(format!(
                        "node {i}: affine over {c} channels has {}/{} params",
                        scale.len(),
                        shift.len()
                    )));
                }
                s
            }
            SparseOp::Activation(_) => in0()?.clone(),
            SparseOp::MaxPool { k, stride, pad } => {
                let s = in0()?.clone();
                let (n, c, h, w) = rank4(&s)?;
                let oh = out_extent(h, *k, *stride, *pad)
                    .ok_or_else(|| plan_err(format!("node {i}: pool window does not fit")))?;
                let ow = out_extent(w, *k, *stride, *pad)
                    .ok_or_else(|| plan_err(format!("node {i}: pool window does not fit")))?;
                vec![n, c, oh, ow]
            }
            SparseOp::Upsample2x => {
                let s = in0()?.clone();
                let (n, c, h, w) = rank4(&s)?;
                vec![n, c, 2 * h, 2 * w]
            }
            SparseOp::Add => {
                let a = in0()?.clone();
                let b = node
                    .inputs
                    .get(1)
                    .and_then(|&j| shapes.get(j))
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| plan_err(format!("node {i}: add lacks a second operand")))?;
                if &a != b {
                    return Err(plan_err(format!("node {i}: add of {a:?} vs {b:?}")));
                }
                a
            }
            SparseOp::Concat => {
                let mut it = node.inputs.iter();
                let first = it
                    .next()
                    .and_then(|&j| shapes.get(j))
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| plan_err(format!("node {i}: empty concat")))?;
                let (n, mut c, h, w) = rank4(first)?;
                for &j in it {
                    let s = shapes
                        .get(j)
                        .filter(|s| !s.is_empty())
                        .ok_or_else(|| plan_err(format!("node {i}: unresolved operand {j}")))?;
                    let (nj, cj, hj, wj) = rank4(s)?;
                    if (nj, hj, wj) != (n, h, w) {
                        return Err(plan_err(format!(
                            "node {i}: concat of {s:?} onto (n={n},h={h},w={w})"
                        )));
                    }
                    c += cj;
                }
                vec![n, c, h, w]
            }
        };
        shapes[i] = shape;
    }
    Ok(shapes)
}

/// Per-channel affine into an arena slice, mirroring the interpreter's
/// `channel_affine` loop exactly (same `s * v + b` expression, same
/// traversal order) for bit-identity.
fn channel_affine_into(
    x: &[f32],
    x_shape: &[usize],
    scale: &[f32],
    shift: &[f32],
    out: &mut [f32],
) {
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let plane = h * w;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * plane;
            let (s, b) = (scale[ci], shift[ci]);
            for (o, &v) in out[base..base + plane]
                .iter_mut()
                .zip(&x[base..base + plane])
            {
                *o = s * v + b;
            }
        }
    }
}

/// Max pooling into an arena slice, mirroring
/// [`rtoss_tensor::ops::maxpool2d`]'s comparison order exactly (padded
/// cells skipped; an all-padding window writes 0).
fn maxpool2d_into(
    x: &[f32],
    x_shape: &[usize],
    k: usize,
    stride: usize,
    pad: usize,
    out_shape: &[usize],
    out: &mut [f32],
) {
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let (oh, ow) = (out_shape[2], out_shape[3]);
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = usize::MAX;
                    for ki in 0..k {
                        let iy = (oy * stride + ki) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..k {
                            let ix = (ox * stride + kj) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = plane + iy as usize * w + ix as usize;
                            if x[idx] > best {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = ((ni * c + ci) * oh + oy) * ow + ox;
                    out[oidx] = if best_idx == usize::MAX { 0.0 } else { best };
                }
            }
        }
    }
}

/// Nearest-neighbour 2× upsampling into an arena slice, mirroring
/// [`rtoss_tensor::ops::upsample_nearest2x`].
fn upsample_nearest2x_into(x: &[f32], x_shape: &[usize], out: &mut [f32]) {
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let (oh, ow) = (2 * h, 2 * w);
    for nc in 0..n * c {
        let src = nc * h * w;
        let dst = nc * oh * ow;
        for y in 0..oh {
            for xx in 0..ow {
                out[dst + y * ow + xx] = x[src + (y / 2) * w + (xx / 2)];
            }
        }
    }
}

/// Channel concatenation into an arena slice, mirroring the
/// interpreter's `concat_channels` copy order.
fn concat_channels_into(parts: &[(&[f32], &[usize])], out_shape: &[usize], out: &mut [f32]) {
    let (n, total_c, h, w) = (out_shape[0], out_shape[1], out_shape[2], out_shape[3]);
    let plane = h * w;
    for ni in 0..n {
        let mut c_off = 0;
        for &(x, xs) in parts {
            let c = xs[1];
            let src = &x[ni * c * plane..(ni + 1) * c * plane];
            let dst = (ni * total_c + c_off) * plane;
            out[dst..dst + c * plane].copy_from_slice(src);
            c_off += c;
        }
    }
}

/// Opens the `layer:<name>` trace span for a plan step, carrying the
/// plan metadata (fused epilogue kind, arena slot) alongside the
/// interpreter's per-layer args.
fn step_span(step: &PlanStep, node: &SparseNode, exec: &ExecConfig) -> rtoss_obs::SpanGuard {
    rtoss_obs::span_lazy(|| {
        use rtoss_obs::ArgValue;
        let mut args = vec![
            ("node", ArgValue::U64(step.node as u64)),
            ("kind", ArgValue::Static(node.kind())),
            ("threads", ArgValue::U64(exec.threads as u64)),
            ("fused", ArgValue::Static(step.fused_label())),
            ("slot", ArgValue::U64(step.out_slot as u64)),
        ];
        if let SparseOp::Conv { layer, .. } = &node.op {
            args.push(("oc", ArgValue::U64(layer.out_channels() as u64)));
            args.push(("ic", ArgValue::U64(layer.in_channels() as u64)));
            args.push(("k", ArgValue::U64(layer.kernel_size() as u64)));
            args.push(("format", ArgValue::Static("pattern")));
            args.push(("nnz", ArgValue::U64(layer.stored_weights() as u64)));
        }
        (format!("layer:{}", node.name), args)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::{EntryPattern, Pruner, RTossPruner};
    use rtoss_models::yolov5s_twin;
    use rtoss_nn::layers::{Activation, BatchNorm2d, Conv2d};
    use rtoss_nn::Graph;
    use rtoss_tensor::init;

    /// input → a → {b, c} → add → out: the smallest graph where slot
    /// recycling kicks in.
    fn diamond_engine() -> SparseModel {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 10)), x)
            .unwrap();
        let b = g
            .add_layer("b", Box::new(Conv2d::new(4, 4, 3, 1, 1, 11)), a)
            .unwrap();
        let c = g
            .add_layer("c", Box::new(Conv2d::new(4, 4, 3, 1, 1, 12)), a)
            .unwrap();
        let d = g.add_add("d", b, c).unwrap();
        g.set_outputs(vec![d]).unwrap();
        SparseModel::compile(&g).unwrap()
    }

    #[test]
    fn diamond_graph_recycles_slots() {
        let engine = diamond_engine();
        let plan = ExecutionPlan::compile(&engine, &[1, 3, 8, 8]).unwrap();
        let s = plan.summary_for(&engine);
        // Four steps (a, b, c, add) over fewer arena slots than steps:
        // `a` dies when `c` reads it, so `add` reuses its slot.
        assert_eq!(s.steps.len(), 4);
        assert!(s.slot_caps.len() < s.steps.len(), "no slot reuse: {s:#?}");
        assert!(plan.arena_bytes() < plan.retained_bytes());
        assert!(plan.peak_live_bytes() <= plan.arena_bytes());
        // Slot lifetimes must be disjoint: recompute from the summary.
        for slot in 0..s.slot_caps.len() {
            let mut tenants: Vec<&StepSummary> = s
                .steps
                .iter()
                .enumerate()
                .filter(|(_, st)| st.out_slot == slot)
                .map(|(_, st)| st)
                .collect();
            tenants.sort_by_key(|st| st.node);
            for pair in tenants.windows(2) {
                let (prev, next) = (&pair[0], &pair[1]);
                let next_idx = s.steps.iter().position(|st| st.node == next.node).unwrap();
                assert!(
                    prev.last_use < next_idx,
                    "slot {slot}: {} still live when {} claims it",
                    prev.name,
                    next.name
                );
            }
        }
    }

    #[test]
    fn concat_graph_plans_channel_sum() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 20)), x)
            .unwrap();
        let b = g
            .add_layer("b", Box::new(Conv2d::new(3, 6, 3, 1, 1, 21)), x)
            .unwrap();
        let c = g.add_concat("c", vec![a, b]).unwrap();
        g.set_outputs(vec![c]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let plan = ExecutionPlan::compile(&engine, &[2, 3, 8, 8]).unwrap();
        let s = plan.summary_for(&engine);
        let concat = s.steps.iter().find(|st| st.kind == "concat").unwrap();
        assert_eq!(concat.out_len, 2 * 10 * 8 * 8);
        assert_eq!(concat.last_use, usize::MAX, "output slot is retained");
        // `a` and `b` are both live until the concat runs, and the
        // concat's (larger) output is assigned before they die — three
        // distinct slots, no reuse possible.
        assert_eq!(s.slot_caps.len(), 3);
        let out = engine.forward(&Tensor::ones(&[2, 3, 8, 8])).unwrap();
        assert_eq!(out[0].shape(), &[2, 10, 8, 8]);
    }

    #[test]
    fn conv_bn_act_chain_fuses_into_one_step() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("conv", Box::new(Conv2d::new(3, 4, 3, 1, 1, 30)), x)
            .unwrap();
        let bn = g.add_layer("bn", Box::new(BatchNorm2d::new(4)), a).unwrap();
        let act = g
            .add_layer("act", Box::new(Activation::new(ActivationKind::Silu)), bn)
            .unwrap();
        g.set_outputs(vec![act]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let plan = ExecutionPlan::compile(&engine, &[1, 3, 8, 8]).unwrap();
        assert_eq!(
            plan.num_steps(),
            1,
            "chain should collapse to one conv step"
        );
        let s = plan.summary_for(&engine);
        assert_eq!(s.steps[0].fused, "affine+act");
        assert_eq!(s.steps[0].kind, "conv");
        // Fused output is bit-identical to the unfused interpreter.
        let probe = init::uniform(&mut init::rng(31), &[1, 3, 8, 8], -1.0, 1.0);
        let planned = engine.forward(&probe).unwrap();
        let interp = engine
            .forward_interpreted_with(&probe, &ExecConfig::serial())
            .unwrap();
        assert_eq!(planned[0].as_slice(), interp[0].as_slice());
    }

    #[test]
    fn bn_not_after_conv_is_not_fused() {
        // maxpool → bn: the affine has no conv producer to fuse into.
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("conv", Box::new(Conv2d::new(3, 4, 3, 2, 1, 40)), x)
            .unwrap();
        let p = g
            .add_layer(
                "pool",
                Box::new(rtoss_nn::layers::MaxPool2d::new(2, 2, 0)),
                a,
            )
            .unwrap();
        let bn = g.add_layer("bn", Box::new(BatchNorm2d::new(4)), p).unwrap();
        g.set_outputs(vec![bn]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let plan = ExecutionPlan::compile(&engine, &[1, 3, 16, 16]).unwrap();
        let s = plan.summary_for(&engine);
        assert_eq!(plan.num_steps(), 3);
        assert!(s.steps.iter().all(|st| st.fused == "none"));
        let probe = init::uniform(&mut init::rng(41), &[1, 3, 16, 16], -1.0, 1.0);
        let planned = engine.forward(&probe).unwrap();
        let interp = engine
            .forward_interpreted_with(&probe, &ExecConfig::serial())
            .unwrap();
        assert_eq!(planned[0].as_slice(), interp[0].as_slice());
    }

    #[test]
    fn tapped_intermediate_output_is_retained() {
        // `b` is both consumed by `d` and a declared output: its slot
        // must never be recycled, and the tensor must surface intact.
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 50)), x)
            .unwrap();
        let b = g
            .add_layer("b", Box::new(Conv2d::new(4, 4, 3, 1, 1, 51)), a)
            .unwrap();
        let c = g
            .add_layer("c", Box::new(Conv2d::new(4, 4, 3, 1, 1, 52)), b)
            .unwrap();
        let d = g.add_add("d", b, c).unwrap();
        g.set_outputs(vec![b, d]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let probe = init::uniform(&mut init::rng(53), &[1, 3, 8, 8], -1.0, 1.0);
        let planned = engine.forward(&probe).unwrap();
        let interp = engine
            .forward_interpreted_with(&probe, &ExecConfig::serial())
            .unwrap();
        assert_eq!(planned.len(), 2);
        for (p, i) in planned.iter().zip(&interp) {
            assert_eq!(p.as_slice(), i.as_slice());
        }
    }

    #[test]
    fn plan_cache_reuses_compiled_plans_per_shape() {
        let engine = diamond_engine();
        let p1 = engine.plan_for(&[1, 3, 8, 8]).unwrap();
        let p2 = engine.plan_for(&[1, 3, 8, 8]).unwrap();
        assert!(std::sync::Arc::ptr_eq(&p1, &p2), "same shape, same plan");
        let p3 = engine.plan_for(&[2, 3, 8, 8]).unwrap();
        assert!(!std::sync::Arc::ptr_eq(&p1, &p3));
        assert_eq!(
            engine.peak_activation_bytes(),
            Some(p1.arena_bytes().max(p3.arena_bytes()))
        );
    }

    #[test]
    fn plan_rejects_mismatched_input_shape() {
        let engine = diamond_engine();
        let plan = engine.plan_for(&[1, 3, 8, 8]).unwrap();
        let wrong = Tensor::ones(&[1, 3, 16, 16]);
        assert!(plan.run(&engine, &wrong, &ExecConfig::serial()).is_err());
        // Shape errors surface at plan time, not mid-run.
        assert!(engine.plan_for(&[1, 5, 8, 8]).is_err());
    }

    #[test]
    fn planned_twin_beats_interpreter_on_memory() {
        let mut m = yolov5s_twin(4, 2, 60).unwrap();
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap();
        let plan = engine.plan_for(&[1, 3, 32, 32]).unwrap();
        assert!(
            plan.arena_bytes() < plan.retained_bytes(),
            "arena {} vs retained {}",
            plan.arena_bytes(),
            plan.retained_bytes()
        );
        let s = plan.summary_for(&engine);
        assert!(
            s.steps.iter().any(|st| st.fused == "affine+act"),
            "twin should have fusable conv→bn→act chains"
        );
        assert!(s.steps.len() < engine.conv_layers().len() * 3);
    }

    #[test]
    fn interpreter_frees_activations_without_changing_outputs() {
        // Satellite: the interpreter drops each activation after its
        // last consumer; outputs must be unchanged, and repeated calls
        // must agree exactly (no freed buffer is ever read).
        let mut m = yolov5s_twin(4, 2, 61).unwrap();
        RTossPruner::new(EntryPattern::Three)
            .prune_graph(&mut m.graph)
            .unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap().with_planning(false);
        assert!(!engine.planning());
        let probe = init::uniform(&mut init::rng(62), &[1, 3, 32, 32], 0.0, 1.0);
        let one = engine.forward(&probe).unwrap();
        let two = engine.forward(&probe).unwrap();
        assert!(!one.is_empty());
        assert_eq!(one.len(), two.len());
        for (a, b) in one.iter().zip(&two) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn input_passthrough_output_is_cloned() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 70)), x)
            .unwrap();
        g.set_outputs(vec![x, a]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let probe = init::uniform(&mut init::rng(71), &[1, 3, 8, 8], -1.0, 1.0);
        let planned = engine.forward(&probe).unwrap();
        let interp = engine
            .forward_interpreted_with(&probe, &ExecConfig::serial())
            .unwrap();
        assert_eq!(planned[0].as_slice(), probe.as_slice());
        for (p, i) in planned.iter().zip(&interp) {
            assert_eq!(p.as_slice(), i.as_slice());
        }
    }
}
