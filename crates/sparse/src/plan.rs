//! Compile-before-run execution plans for the sparse engine.
//!
//! [`SparseModel::forward_with`] used to be a per-call graph
//! interpreter: every request re-walked the node list, re-validated
//! shapes, heap-allocated a fresh tensor per node, kept every
//! activation alive until the pass ended, and applied batch-norm
//! affines and activations as separate full passes over memory. Mobile
//! pattern-pruning deployments (PatDNN-style compiler stacks) get their
//! speedups from doing all of that work *ahead of time* — and that is
//! what an [`ExecutionPlan`] is:
//!
//! 1. **Shape inference & validation once.** Compiling a plan for an
//!    input shape runs the whole symbolic forward pass; per-call
//!    execution does no shape checks.
//! 2. **Liveness analysis + buffer arena.** The plan computes each
//!    value's last consumer and assigns outputs to reusable arena slots
//!    (best-fit from a free list). A slot is recycled as soon as its
//!    tenant's last consumer has run, so peak activation memory is the
//!    liveness peak, not the sum over all nodes. The plan reports
//!    [`arena_bytes`](ExecutionPlan::arena_bytes) (what a run actually
//!    allocates), [`peak_live_bytes`](ExecutionPlan::peak_live_bytes)
//!    (the liveness-simulation peak), and
//!    [`retained_bytes`](ExecutionPlan::retained_bytes) (what the old
//!    keep-everything interpreter held).
//! 3. **Conv → ChannelAffine → Activation fusion.** A conv whose sole
//!    consumer is a channel affine (folded BN), optionally followed by
//!    a sole-consumer activation, collapses into one conv step with an
//!    [`Epilogue`]: the affine and activation run per output plane
//!    while it is hot in cache, inside the tiled executor, instead of
//!    as two extra passes over the whole tensor.
//! 4. **Graph-level parallelism.** The compiler groups steps into
//!    dependency levels (every operand of a step lives in a strictly
//!    earlier level), so steps sharing a level are mutually
//!    independent — the YOLOv5s PANet and RetinaNet FPN twins have
//!    genuinely parallel branches. [`run`](ExecutionPlan::run)
//!    executes the levels in order and fans a level's steps out across
//!    the persistent [`WorkerPool`] (`exec.threads` caps the width,
//!    the caller always works too). This replaces the per-call scoped
//!    intra-op tiling that made the planned path *collapse* under
//!    threads (par_scaling before the fix: 0.30x at 2 threads, 0.09x
//!    at 8) — each step now runs its arithmetic serially, and
//!    parallelism comes from the graph instead. The arena planner
//!    cooperates: a slot may be reused only by a step in a strictly
//!    later level than every consumer of the slot's previous tenant,
//!    so steps that can be concurrently live never alias a slot
//!    (checked by RV054).
//!
//! Every transformation is bit-exact: the fused epilogue performs the
//! same `f32` operations in the same order as the standalone passes,
//! the arena ops mirror the interpreter's loops exactly, and level
//! parallelism only changes *which step runs when*, never the
//! arithmetic inside a step — so planned outputs are **bit-identical**
//! to the serial plan and to the interpreter for every thread count.
//! `rtoss-verify`'s RV05x family checks the schedule, the arena
//! assignment, the level structure, and that equivalence on seeded
//! engines.

use crate::exec::{
    conv2d_dense_into_with, conv2d_pattern_sparse_into_with, conv2d_unstructured_into_with,
    conv_output_shape,
};
use crate::format::{PatternCompressedConv, UnstructuredSparseConv};
use crate::model::{epilogue_act, eval_act, SparseModel, SparseModelError, SparseNode, SparseOp};
use crate::pack::coo_from_pattern;
use rtoss_nn::layers::ActivationKind;
use rtoss_tensor::exec::{Epilogue, ExecConfig};
use rtoss_tensor::ops::out_extent;
use rtoss_tensor::pool::{PoolTask, WorkerPool};
use rtoss_tensor::{Tensor, TensorError};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard};

/// Arenas kept for reuse across runs; above this the extras are freed.
/// Matches the serving layer's typical worker count so concurrent
/// micro-batch workers each find a warm arena.
const POOL_CAP: usize = 8;

/// Activation buffers of one in-flight run, one per arena slot. Slots
/// are individually `RwLock`ed so the steps of one dependency level can
/// concurrently write their own slots while reading earlier levels'
/// outputs; the level schedule and the arena's level-disjoint slot
/// assignment guarantee no lock is ever contended for writing, so the
/// locks cost an uncontended atomic each and exist to keep the crate
/// free of `unsafe`.
type Arena = Vec<RwLock<Vec<f32>>>;

/// Which conv kernel the plan selected for one layer — the autotuner's
/// per-layer format decision, resolved at compile time. The COO and
/// dense candidates carry their derived weights so the hot path pays
/// no conversion; all three compute bit-identical outputs (the
/// canonical accumulation order — see `crate::exec`), so the choice is
/// purely a speed decision.
#[derive(Debug)]
enum ConvKernel {
    /// Pattern-tiled microkernels over the layer's own pack (default).
    Pattern,
    /// Arity-generic COO runs over weights derived from the layer.
    Coo(UnstructuredSparseConv),
    /// All-taps dense walk over the reconstructed dense weights.
    Dense(Tensor),
}

impl ConvKernel {
    fn label(&self) -> &'static str {
        match self {
            ConvKernel::Pattern => "pattern",
            ConvKernel::Coo(_) => "coo",
            ConvKernel::Dense(_) => "dense",
        }
    }
}

/// How [`ExecutionPlan::compile_with`] picks each conv layer's format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatChoice {
    /// Let the autotuner decide per layer (heuristic or timed).
    Auto,
    /// Force the pattern-tiled kernel everywhere.
    Pattern,
    /// Force the COO kernel everywhere.
    Coo,
    /// Force the dense kernel everywhere.
    Dense,
}

/// Autotune strategy used when the format choice is [`FormatChoice::Auto`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutotuneMode {
    /// Deterministic density heuristic — no timing, identical plans on
    /// every host (the CI/default mode): dense when the layer kept
    /// more than [`DENSE_DENSITY_THRESHOLD`] of its weights, else
    /// pattern.
    Heuristic,
    /// Min-of-`reps` wall-clock microbenchmark of every candidate on
    /// the layer's real compile shape; the measured ns land in
    /// [`StepSummary::autotune_ns`].
    Timed {
        /// Repetitions per candidate (min is taken; clamped to ≥ 1).
        reps: u32,
    },
}

/// Weight density above which the deterministic heuristic picks the
/// dense kernel: past roughly two thirds the per-kernel dispatch and
/// offset indirection of the sparse walk cost more than the `0.0`
/// multiplies they skip (the fig6 crossover, measured by
/// `kernel_bench`).
pub const DENSE_DENSITY_THRESHOLD: f64 = 0.66;

/// Plan-compile options: per-layer conv format selection.
///
/// The default is read from the environment —
/// `RTOSS_FORMAT={auto,pattern,coo,dense}` (default `auto`) and
/// `RTOSS_AUTOTUNE={off,time[,time:REPS]}` (default `off`, i.e. the
/// deterministic heuristic) — so CI and tests stay reproducible unless
/// timing is asked for explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Conv format selection policy.
    pub format: FormatChoice,
    /// Autotune strategy when `format` is [`FormatChoice::Auto`].
    pub autotune: AutotuneMode,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            format: FormatChoice::Auto,
            autotune: AutotuneMode::Heuristic,
        }
    }
}

impl PlanOptions {
    /// Resolves the options from `RTOSS_FORMAT` / `RTOSS_AUTOTUNE`;
    /// unknown values fall back to the defaults.
    pub fn from_env() -> Self {
        let format = match std::env::var("RTOSS_FORMAT")
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str()
        {
            "pattern" => FormatChoice::Pattern,
            "coo" => FormatChoice::Coo,
            "dense" => FormatChoice::Dense,
            _ => FormatChoice::Auto,
        };
        let autotune = match std::env::var("RTOSS_AUTOTUNE")
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str()
        {
            "time" | "1" | "on" => AutotuneMode::Timed { reps: 3 },
            s if s.starts_with("time:") => AutotuneMode::Timed {
                reps: s["time:".len()..].parse().unwrap_or(3),
            },
            _ => AutotuneMode::Heuristic,
        };
        PlanOptions { format, autotune }
    }
}

/// Where a plan step reads one of its operands from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepSource {
    /// The caller's input tensor (an `Input` graph node).
    Extern,
    /// The output of an earlier plan step.
    Step(usize),
}

/// One scheduled operation of a compiled plan.
#[derive(Debug)]
struct PlanStep {
    /// Model node this step computes (the conv node for fused chains).
    node: usize,
    /// Model node of a `ChannelAffine` fused into this conv's epilogue.
    fused_affine: Option<usize>,
    /// Activation fused into this conv's epilogue.
    fused_act: Option<ActivationKind>,
    /// Operand sources, in the node's input order.
    inputs: Vec<StepSource>,
    /// Arena slot holding this step's output.
    out_slot: usize,
    /// Output shape, inferred at plan time.
    out_shape: Vec<usize>,
    /// Output element count (`out_shape` product).
    out_len: usize,
    /// Step index of the last consumer; `usize::MAX` marks a retained
    /// output whose slot is never recycled; a step's own index marks a
    /// dead value freed immediately.
    last_use: usize,
    /// Dependency level: strictly greater than every step operand's
    /// level; extern-only steps sit at level 0. Steps sharing a level
    /// are mutually independent and may execute concurrently.
    level: usize,
    /// The conv kernel the autotuner selected for this step; `None`
    /// for non-conv steps.
    kernel: Option<ConvKernel>,
    /// Autotune evidence: `(candidate, min-of-reps ns)` per measured
    /// candidate. Empty when the choice was heuristic or forced.
    autotune_ns: Vec<(&'static str, u64)>,
}

impl PlanStep {
    fn fused_label(&self) -> &'static str {
        match (self.fused_affine, self.fused_act) {
            (Some(_), Some(_)) => "affine+act",
            (Some(_), None) => "affine",
            (None, Some(_)) => "act",
            (None, None) => "none",
        }
    }

    /// The selected conv format label; `-` for non-conv steps.
    fn format_label(&self) -> &'static str {
        self.kernel.as_ref().map_or("-", ConvKernel::label)
    }
}

/// Summary of one plan step, for verification and reporting. All
/// fields are public so `rtoss-verify` fixtures can construct corrupted
/// summaries that prove the RV05x checks fire.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSummary {
    /// Model node index this step computes.
    pub node: usize,
    /// Source graph node name.
    pub name: String,
    /// Operation kind (`conv`, `maxpool`, …).
    pub kind: &'static str,
    /// Epilogue fusion applied: `none`, `affine`, `act`, `affine+act`.
    pub fused: &'static str,
    /// Producing step index per operand; `None` = the extern input.
    pub inputs: Vec<Option<usize>>,
    /// Arena slot holding the output.
    pub out_slot: usize,
    /// Output element count.
    pub out_len: usize,
    /// Last consuming step index (`usize::MAX` = retained output).
    pub last_use: usize,
    /// Dependency level (see [`PlanSummary::steps`]): strictly greater
    /// than every step operand's level, so the levelled schedule the
    /// parallel runner executes respects all data dependencies (RV054).
    pub level: usize,
    /// Conv kernel format the autotuner selected (`pattern`, `coo`,
    /// `dense`); `-` for non-conv steps. RV091 checks legality.
    pub format: &'static str,
    /// Autotune evidence: `(candidate, min-of-reps ns)` for every
    /// measured candidate; empty when the choice was heuristic or
    /// forced. When present, RV091 requires `format` to be the
    /// measured minimum.
    pub autotune_ns: Vec<(&'static str, u64)>,
}

/// Summary of a compiled plan: the schedule, arena assignment, and
/// memory accounting `rtoss-verify`'s RV05x checks inspect.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSummary {
    /// Input shape the plan was compiled for.
    pub input_shape: Vec<usize>,
    /// Scheduled steps in execution order.
    pub steps: Vec<StepSummary>,
    /// Producing step per declared output; `None` = the extern input.
    pub outputs: Vec<Option<usize>>,
    /// Element capacity of each arena slot.
    pub slot_caps: Vec<usize>,
    /// Bytes a run allocates for the arena (Σ slot capacities × 4).
    pub arena_bytes: u64,
    /// Peak bytes simultaneously live during the liveness simulation.
    pub peak_live_bytes: u64,
    /// Bytes the keep-everything interpreter would retain (Σ step
    /// outputs) — the pre-plan baseline.
    pub retained_bytes: u64,
}

/// One dependency level's lane assignment at a given width; produced
/// by [`PlanSummary::level_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelDeal {
    /// Steps the caller lane runs in order: the extern-reading steps
    /// that must stay on the caller (the input tensor is borrowed),
    /// then the caller's own chunk of pooled steps.
    pub caller: Vec<usize>,
    /// Chunks handed to pool workers; each inner vec is one task whose
    /// steps run sequentially on whichever worker claims it.
    pub pooled: Vec<Vec<usize>>,
}

/// The caller/worker lane structure [`ExecutionPlan::run_with_pool`]
/// executes at a given width, reconstructed from a [`PlanSummary`].
/// Lanes of one level are mutually unordered (they run concurrently);
/// consecutive levels are separated by a full barrier. This is the
/// happens-before skeleton `rtoss-verify`'s RV070 race analysis checks
/// conflicting arena-slot accesses against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    /// Execution width the dealing was computed for.
    pub width: usize,
    /// Per dependency level, in barrier order.
    pub levels: Vec<LevelDeal>,
}

/// Deals one dependency level across execution lanes exactly as
/// [`ExecutionPlan::run_with_pool`] does: steps reading the borrowed
/// extern input stay on the caller, the rest ("pooled") are dealt
/// round-robin into at most `width` chunks of which chunk 0 also runs
/// on the caller. Levels too small to fan out run entirely on the
/// caller. Returns `(caller_steps, worker_chunks)`; both the runner
/// and [`PlanSummary::level_schedule`] call this, so the analysed and
/// the executed lane structure cannot drift.
fn deal_level(level: &[usize], is_pooled: &dyn Fn(usize) -> bool, width: usize) -> LevelDeal {
    let pooled: Vec<usize> = level.iter().copied().filter(|&si| is_pooled(si)).collect();
    if width < 2 || level.len() < 2 || pooled.len() < 2 {
        // Nothing to fan out (or only one off-caller step):
        // synchronisation would cost more than it buys.
        return LevelDeal {
            caller: level.to_vec(),
            pooled: Vec::new(),
        };
    }
    let n_chunks = width.min(pooled.len());
    let mut chunks: Vec<Vec<usize>> = vec![Vec::new(); n_chunks];
    for (k, &si) in pooled.iter().enumerate() {
        chunks[k % n_chunks].push(si);
    }
    let mut caller: Vec<usize> = level
        .iter()
        .copied()
        .filter(|si| !pooled.contains(si))
        .collect();
    caller.extend(chunks.remove(0));
    LevelDeal {
        caller,
        pooled: chunks,
    }
}

impl PlanSummary {
    /// Step indices grouped by dependency level, each group in schedule
    /// order — the barrier structure the level-parallel runner walks.
    /// Groups are keyed by the *distinct* level values present, so a
    /// corrupted summary with gapped levels still yields a finite,
    /// ordered grouping.
    pub fn level_groups(&self) -> Vec<Vec<usize>> {
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, s) in self.steps.iter().enumerate() {
            groups.entry(s.level).or_default().push(i);
        }
        groups.into_values().collect()
    }

    /// The exact lane assignment [`ExecutionPlan::run_with_pool`]
    /// executes at `width` (clamped to ≥ 1): shares the dealing logic
    /// with the runner itself. Width 1 puts every level entirely on
    /// the caller, matching the runner's serial path.
    pub fn level_schedule(&self, width: usize) -> LevelSchedule {
        let width = width.max(1);
        let is_pooled = |si: usize| self.steps[si].inputs.iter().all(|src| src.is_some());
        let levels = self
            .level_groups()
            .iter()
            .map(|level| deal_level(level, &is_pooled, width))
            .collect();
        LevelSchedule { width, levels }
    }
}

/// A [`SparseModel`] compiled for one input shape: validated schedule,
/// fused conv epilogues, and arena slot assignment. Compile once (per
/// shape), run many times.
#[derive(Debug)]
pub struct ExecutionPlan {
    input_shape: Vec<usize>,
    /// Node count of the model this plan was compiled from; guards
    /// against running a plan against a different engine.
    n_nodes: usize,
    /// `Arc`ed so level-parallel runs can hand `'static` tasks to the
    /// persistent worker pool without copying the schedule.
    steps: Arc<Vec<PlanStep>>,
    /// Step indices grouped by dependency level, in execution order;
    /// level `L` may start only after level `L-1` finished.
    levels: Vec<Vec<usize>>,
    outputs: Vec<StepSource>,
    slot_caps: Vec<usize>,
    peak_live_bytes: u64,
    retained_bytes: u64,
    /// Recycled arenas (one per concurrent runner), so steady-state
    /// runs allocate only the retained-output buffers.
    arenas: Mutex<Vec<Arc<Arena>>>,
}

/// Fused chain recorded per conv node: the absorbed `ChannelAffine`
/// node (if any), the absorbed activation kind (if any), and the chain
/// tail node whose output the conv step now produces.
type FusedChain = (Option<usize>, Option<ActivationKind>, usize);

fn plan_err(msg: String) -> SparseModelError {
    SparseModelError::Tensor(TensorError::Invalid {
        op: "execution_plan",
        msg,
    })
}

impl ExecutionPlan {
    /// Compiles `model` for `input_shape`: infers and validates every
    /// shape, fuses conv→affine→activation chains, computes liveness,
    /// and assigns arena slots.
    ///
    /// # Errors
    ///
    /// Returns an error when any node's shape constraints fail for this
    /// input shape — the same conditions the interpreter would hit per
    /// call, surfaced once at plan time.
    pub fn compile(model: &SparseModel, input_shape: &[usize]) -> Result<Self, SparseModelError> {
        Self::compile_with(model, input_shape, &PlanOptions::from_env())
    }

    /// [`compile`](Self::compile) with explicit [`PlanOptions`] —
    /// benches and the verifier force specific conv formats or timed
    /// autotuning through this entry instead of the environment.
    ///
    /// # Errors
    ///
    /// Same conditions as [`compile`](Self::compile).
    pub fn compile_with(
        model: &SparseModel,
        input_shape: &[usize],
        opts: &PlanOptions,
    ) -> Result<Self, SparseModelError> {
        let nodes = &model.nodes;
        let n = nodes.len();
        let shapes = infer_shapes(nodes, input_shape)?;

        // Sole-consumer map for fusion legality: a node is absorbable
        // when exactly one edge consumes it and it is not an output.
        let mut is_output = vec![false; n];
        for &o in &model.outputs {
            if let Some(f) = is_output.get_mut(o) {
                *f = true;
            }
        }
        let mut consumer_of: Vec<Option<usize>> = vec![None; n];
        for (i, node) in nodes.iter().enumerate() {
            for &j in &node.inputs {
                if let Some(c) = consumer_of.get_mut(j) {
                    *c = Some(i);
                }
            }
        }
        let sole_consumer = |i: usize| -> Option<usize> {
            if model.uses.get(i) == Some(&1) && !is_output[i] {
                consumer_of[i]
            } else {
                None
            }
        };

        // Fusion pass: for each conv, greedily absorb a sole-consumer
        // ChannelAffine, then a sole-consumer Activation, into the
        // conv's epilogue. Absorbed nodes get no step of their own.
        let mut fused_into_conv = vec![false; n];
        let mut fusion: Vec<Option<FusedChain>> = vec![None; n];
        for (i, node) in nodes.iter().enumerate() {
            if !matches!(node.op, SparseOp::Conv { .. }) {
                continue;
            }
            let mut tail = i;
            let mut affine = None;
            let mut act = None;
            if let Some(j) = sole_consumer(tail) {
                if matches!(nodes[j].op, SparseOp::ChannelAffine { .. }) {
                    affine = Some(j);
                    tail = j;
                }
            }
            if let Some(j) = sole_consumer(tail) {
                if let SparseOp::Activation(kind) = nodes[j].op {
                    act = Some(kind);
                    tail = j;
                }
            }
            if let Some(j) = affine {
                fused_into_conv[j] = true;
            }
            if act.is_some() {
                fused_into_conv[tail] = true;
            }
            fusion[i] = Some((affine, act, tail));
        }

        // Scheduling: one step per non-input, non-absorbed node, in
        // node order (already topological — the graph builder only
        // wires existing nodes).
        let mut node_to_step: Vec<Option<usize>> = vec![None; n];
        let mut steps: Vec<PlanStep> = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            if matches!(node.op, SparseOp::Input) || fused_into_conv[i] {
                continue;
            }
            let mut inputs = Vec::with_capacity(node.inputs.len());
            for &j in &node.inputs {
                if j >= i {
                    return Err(plan_err(format!(
                        "node {i} reads node {j}: not topological"
                    )));
                }
                if matches!(nodes[j].op, SparseOp::Input) {
                    inputs.push(StepSource::Extern);
                } else {
                    let s = node_to_step[j]
                        .ok_or_else(|| plan_err(format!("node {i} reads unscheduled node {j}")))?;
                    inputs.push(StepSource::Step(s));
                }
            }
            let (fused_affine, fused_act, tail) = match fusion[i] {
                Some((a, k, t)) => (a, k, t),
                None => (None, None, i),
            };
            let out_shape = shapes[tail].clone();
            let out_len = out_shape.iter().product();
            let s = steps.len();
            // Per-layer format selection (conv steps only): the
            // autotuner sees the layer's *real* compile-time input
            // shape, so the decision reflects the work this step will
            // actually do.
            let (kernel, autotune_ns) = match &node.op {
                SparseOp::Conv { layer, bias } => {
                    let in_shape = node
                        .inputs
                        .first()
                        .and_then(|&j| shapes.get(j))
                        .filter(|sh| !sh.is_empty())
                        .ok_or_else(|| plan_err(format!("conv node {i} has no input shape")))?;
                    let (k, ns) = choose_conv_kernel(layer, bias, in_shape, opts);
                    (Some(k), ns)
                }
                _ => (None, Vec::new()),
            };
            steps.push(PlanStep {
                node: i,
                fused_affine,
                fused_act,
                inputs,
                out_slot: usize::MAX,
                out_shape,
                out_len,
                last_use: s,
                level: 0,
                kernel,
                autotune_ns,
            });
            node_to_step[i] = Some(s);
            // Consumers of an absorbed chain's tail read the conv step.
            node_to_step[tail] = Some(s);
            if let Some(j) = fused_affine {
                node_to_step[j] = Some(s);
            }
        }

        // Liveness: last consuming step per step; retained outputs
        // never die.
        for s in 0..steps.len() {
            let sources = steps[s].inputs.clone();
            for src in sources {
                if let StepSource::Step(i) = src {
                    steps[i].last_use = steps[i].last_use.max(s);
                }
            }
        }
        let mut outputs = Vec::with_capacity(model.outputs.len());
        for &o in &model.outputs {
            if matches!(nodes.get(o).map(|n| &n.op), Some(SparseOp::Input)) {
                outputs.push(StepSource::Extern);
                continue;
            }
            let s = node_to_step
                .get(o)
                .copied()
                .flatten()
                .ok_or_else(|| plan_err(format!("output node {o} was not scheduled")))?;
            steps[s].last_use = usize::MAX;
            outputs.push(StepSource::Step(s));
        }

        // Dependency levels: a step reading only the extern input is
        // level 0, otherwise one more than its deepest operand. The
        // schedule is in step order, so operands always precede their
        // consumers and one forward pass suffices.
        for s in 0..steps.len() {
            let lv = steps[s]
                .inputs
                .iter()
                .filter_map(|src| match src {
                    StepSource::Step(i) => Some(steps[*i].level + 1),
                    StepSource::Extern => None,
                })
                .max()
                .unwrap_or(0);
            steps[s].level = lv;
        }
        let n_levels = steps.iter().map(|st| st.level + 1).max().unwrap_or(0);
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); n_levels];
        for (s, st) in steps.iter().enumerate() {
            levels[st.level].push(s);
        }
        // Deepest consuming *level* per step. Note this is a max over
        // ALL consumers, not the level of the last-indexed one — a
        // smaller-indexed consumer can sit in a deeper level. Retained
        // outputs stay live forever.
        let mut last_level: Vec<usize> = steps.iter().map(|st| st.level).collect();
        for st in &steps {
            for src in &st.inputs {
                if let StepSource::Step(i) = src {
                    last_level[*i] = last_level[*i].max(st.level);
                }
            }
        }
        for (s, st) in steps.iter().enumerate() {
            if st.last_use == usize::MAX {
                last_level[s] = usize::MAX;
            }
        }

        // Arena assignment: best-fit from the free list. The output
        // slot is chosen while the step's inputs are still allocated,
        // so an output never aliases a dying input; dying inputs are
        // then freed for the *next* step. Each freed slot remembers the
        // deepest level that still reads its old tenant, and only steps
        // in strictly later levels may reuse it — so two steps that can
        // execute concurrently (same level, or a consumer racing a
        // later level's writer) never share a slot (RV054). Because the
        // walk stays in schedule order, the serial index rule (RV051)
        // holds automatically.
        let mut slot_caps: Vec<usize> = Vec::new();
        let mut free: Vec<(usize, usize)> = Vec::new(); // (slot, freed-at level)
        let mut live_bytes: u64 = 0;
        let mut peak_live: u64 = 0;
        let mut retained: u64 = 0;
        for s in 0..steps.len() {
            let len = steps[s].out_len;
            retained += 4 * len as u64;
            let slot = match best_fit(&free, &slot_caps, len, steps[s].level) {
                Some(pos) => {
                    let (slot, _) = free.swap_remove(pos);
                    slot_caps[slot] = slot_caps[slot].max(len);
                    slot
                }
                None => {
                    slot_caps.push(len);
                    slot_caps.len() - 1
                }
            };
            steps[s].out_slot = slot;
            live_bytes += 4 * len as u64;
            peak_live = peak_live.max(live_bytes);
            let mut dying: Vec<usize> = steps[s]
                .inputs
                .iter()
                .filter_map(|src| match src {
                    StepSource::Step(i) if steps[*i].last_use == s => Some(*i),
                    _ => None,
                })
                .collect();
            dying.sort_unstable();
            dying.dedup();
            for i in dying {
                free.push((steps[i].out_slot, last_level[i]));
                live_bytes = live_bytes.saturating_sub(4 * steps[i].out_len as u64);
            }
            if steps[s].last_use == s {
                // Dead value (no consumer, not an output): recycle now.
                free.push((slot, last_level[s]));
                live_bytes = live_bytes.saturating_sub(4 * len as u64);
            }
        }

        Ok(ExecutionPlan {
            input_shape: input_shape.to_vec(),
            n_nodes: n,
            steps: Arc::new(steps),
            levels,
            outputs,
            slot_caps,
            peak_live_bytes: peak_live,
            retained_bytes: retained,
            arenas: Mutex::new(Vec::new()),
        })
    }

    /// The input shape this plan was compiled for.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Scheduled step count (fused chains count once).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Bytes a run allocates for the activation arena (Σ slot
    /// capacities × 4). This is the plan's measured peak activation
    /// footprint — what the serving metrics export as
    /// `peak_activation_bytes`.
    pub fn arena_bytes(&self) -> u64 {
        4 * self.slot_caps.iter().map(|&c| c as u64).sum::<u64>()
    }

    /// Peak bytes simultaneously live during the liveness simulation
    /// (≤ [`arena_bytes`](Self::arena_bytes), which also pays slot
    /// capacity growth from reuse across different-sized values).
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }

    /// Bytes the keep-everything interpreter would have retained at the
    /// end of a pass (Σ all step outputs) — the pre-plan baseline the
    /// arena numbers are compared against.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    /// The plan's schedule, arena assignment, and memory accounting.
    pub fn summary(&self) -> PlanSummary {
        PlanSummary {
            input_shape: self.input_shape.clone(),
            steps: self
                .steps
                .iter()
                .map(|s| StepSummary {
                    node: s.node,
                    name: String::new(),
                    kind: "",
                    fused: s.fused_label(),
                    inputs: s
                        .inputs
                        .iter()
                        .map(|src| match src {
                            StepSource::Extern => None,
                            StepSource::Step(i) => Some(*i),
                        })
                        .collect(),
                    out_slot: s.out_slot,
                    out_len: s.out_len,
                    last_use: s.last_use,
                    level: s.level,
                    format: s.format_label(),
                    autotune_ns: s.autotune_ns.clone(),
                })
                .collect(),
            outputs: self
                .outputs
                .iter()
                .map(|src| match src {
                    StepSource::Extern => None,
                    StepSource::Step(i) => Some(*i),
                })
                .collect(),
            slot_caps: self.slot_caps.clone(),
            arena_bytes: self.arena_bytes(),
            peak_live_bytes: self.peak_live_bytes,
            retained_bytes: self.retained_bytes,
        }
    }

    /// Like [`summary`](Self::summary) but with step names and kinds
    /// resolved from the model the plan was compiled from.
    pub fn summary_for(&self, model: &SparseModel) -> PlanSummary {
        let mut s = self.summary();
        for step in &mut s.steps {
            if let Some(node) = model.nodes.get(step.node) {
                step.name = node.name.clone();
                step.kind = node.kind();
            }
        }
        s
    }

    /// Executes the plan. `model` must be the engine this plan was
    /// compiled from (checked cheaply by node count).
    ///
    /// `exec.threads` is the *graph-level* width: how many independent
    /// steps of one dependency level may run concurrently on the
    /// process-global [`WorkerPool`]. Each step's own arithmetic is
    /// always serial, so outputs are bit-identical for every width.
    ///
    /// # Errors
    ///
    /// Returns an error if `model` or the input shape does not match
    /// the compiled plan. Per-node shape errors cannot occur here —
    /// they were ruled out at plan time.
    pub fn run(
        &self,
        model: &SparseModel,
        input: &Tensor,
        exec: &ExecConfig,
    ) -> Result<Vec<Tensor>, SparseModelError> {
        self.run_with_pool(model, input, exec, WorkerPool::global())
    }

    /// [`run`](Self::run) against an explicit worker pool (the public
    /// entry uses the process-global one; tests and verification force
    /// a sized pool to exercise the parallel path on any host).
    ///
    /// Width = `min(exec.threads, pool workers + 1)` — the caller
    /// always works too. Width 1 (always the case when the pool has no
    /// workers, e.g. on a single-core host) takes the plain serial
    /// schedule with zero synchronisation; wider runs execute level by
    /// level, dealing each level's steps into at most `width` chunks:
    /// chunk 0 plus every step that reads the borrowed extern input
    /// stay on the caller, the rest go to the pool, and the caller
    /// steals queued chunks back while waiting so no width is ever
    /// slower than serial by more than the level-barrier handshake.
    pub fn run_with_pool(
        &self,
        model: &SparseModel,
        input: &Tensor,
        exec: &ExecConfig,
        pool: &WorkerPool,
    ) -> Result<Vec<Tensor>, SparseModelError> {
        if model.nodes.len() != self.n_nodes {
            return Err(plan_err(format!(
                "plan was compiled for a {}-node engine, got {}",
                self.n_nodes,
                model.nodes.len()
            )));
        }
        if input.shape() != self.input_shape {
            return Err(plan_err(format!(
                "plan was compiled for input shape {:?}, got {:?}",
                self.input_shape,
                input.shape()
            )));
        }
        let width = exec.threads.max(1).min(pool.workers() + 1);
        if rtoss_obs::recording() {
            rtoss_obs::emit_instant(
                "plan",
                vec![
                    ("steps", rtoss_obs::ArgValue::U64(self.steps.len() as u64)),
                    ("levels", rtoss_obs::ArgValue::U64(self.levels.len() as u64)),
                    ("width", rtoss_obs::ArgValue::U64(width as u64)),
                    ("arena_bytes", rtoss_obs::ArgValue::U64(self.arena_bytes())),
                    (
                        "peak_live_bytes",
                        rtoss_obs::ArgValue::U64(self.peak_live_bytes),
                    ),
                ],
            );
        }
        let arena: Arc<Arena> = {
            let mut arenas = self.arenas.lock().unwrap_or_else(PoisonError::into_inner);
            arenas.pop()
        }
        .filter(|a| a.len() == self.slot_caps.len())
        .unwrap_or_else(|| {
            Arc::new(
                self.slot_caps
                    .iter()
                    .map(|_| RwLock::new(Vec::new()))
                    .collect(),
            )
        });
        for (slot, &cap) in arena.iter().zip(&self.slot_caps) {
            let mut buf = slot.write().unwrap_or_else(PoisonError::into_inner);
            if buf.len() < cap {
                // Fresh capacity; every op fully overwrites its output
                // prefix, so no clearing between runs is needed.
                *buf = vec![0.0; cap];
            }
        }

        // Every step runs with serial intra-op arithmetic — the plan's
        // parallelism is across the graph, not inside a conv.
        let step_exec = ExecConfig::serial();
        if width <= 1 {
            for si in 0..self.steps.len() {
                exec_step(
                    &self.steps,
                    &model.nodes,
                    si,
                    Some(input),
                    &arena,
                    &step_exec,
                )?;
            }
        } else {
            self.run_levels(model, input, &arena, pool, width, &step_exec)?;
        }

        let mut outs = Vec::with_capacity(self.outputs.len());
        for (k, src) in self.outputs.iter().enumerate() {
            let t = match src {
                StepSource::Extern => input.clone(),
                StepSource::Step(i) => {
                    let step = &self.steps[*i];
                    let slot = arena
                        .get(step.out_slot)
                        .ok_or_else(|| plan_err(format!("output step {i} missing")))?;
                    if self.outputs[k + 1..].contains(src) {
                        // Another declared output reads the same step:
                        // copy now, move on the final occurrence.
                        let guard = slot.read().unwrap_or_else(PoisonError::into_inner);
                        let data = guard
                            .get(..step.out_len)
                            .ok_or_else(|| plan_err(format!("output step {i} missing")))?;
                        Tensor::from_vec(data.to_vec(), &step.out_shape)?
                    } else {
                        let mut buf = std::mem::take(
                            &mut *slot.write().unwrap_or_else(PoisonError::into_inner),
                        );
                        if buf.len() < step.out_len {
                            return Err(plan_err(format!("output step {i} missing")));
                        }
                        buf.truncate(step.out_len);
                        Tensor::from_vec(buf, &step.out_shape)?
                    }
                }
            };
            outs.push(t);
        }
        let mut arenas = self.arenas.lock().unwrap_or_else(PoisonError::into_inner);
        if arenas.len() < POOL_CAP {
            arenas.push(arena);
        }
        Ok(outs)
    }

    /// Level-parallel execution: levels run in order, the steps of one
    /// level fan out across the pool. Steps that read the extern input
    /// stay on the caller (the input tensor is borrowed; pool tasks
    /// are `'static`), as does chunk 0 — the caller is one of the
    /// `width` workers, not a coordinator.
    fn run_levels(
        &self,
        model: &SparseModel,
        input: &Tensor,
        arena: &Arc<Arena>,
        pool: &WorkerPool,
        width: usize,
        step_exec: &ExecConfig,
    ) -> Result<(), SparseModelError> {
        for level in &self.levels {
            let is_pooled = |si: usize| {
                self.steps[si]
                    .inputs
                    .iter()
                    .all(|src| !matches!(src, StepSource::Extern))
            };
            let deal = deal_level(level, &is_pooled, width);
            if deal.pooled.is_empty() {
                for &si in &deal.caller {
                    exec_step(&self.steps, &model.nodes, si, Some(input), arena, step_exec)?;
                }
                continue;
            }
            let first_err: Arc<Mutex<Option<SparseModelError>>> = Arc::new(Mutex::new(None));
            let tasks: Vec<PoolTask> = deal
                .pooled
                .into_iter()
                .map(|chunk| {
                    let steps = Arc::clone(&self.steps);
                    let nodes = Arc::clone(&model.nodes);
                    let arena = Arc::clone(arena);
                    let first_err = Arc::clone(&first_err);
                    let step_exec = *step_exec;
                    Box::new(move || {
                        for si in chunk {
                            if let Err(e) = exec_step(&steps, &nodes, si, None, &arena, &step_exec)
                            {
                                let mut slot =
                                    first_err.lock().unwrap_or_else(PoisonError::into_inner);
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                break;
                            }
                        }
                    }) as PoolTask
                })
                .collect();
            let batch = pool.submit(tasks);
            let mut caller_err: Option<SparseModelError> = None;
            for &si in &deal.caller {
                if let Err(e) =
                    exec_step(&self.steps, &model.nodes, si, Some(input), arena, step_exec)
                {
                    caller_err = Some(e);
                    break;
                }
            }
            pool.help();
            batch.wait();
            if let Some(e) = caller_err {
                return Err(e);
            }
            let mut slot = first_err.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(e) = slot.take() {
                return Err(e);
            }
        }
        Ok(())
    }
}

/// Executes one plan step: write-locks the step's output slot,
/// read-locks its operand slots, then runs the node's arithmetic
/// exactly as the interpreter would. Safe to call concurrently for
/// steps of one dependency level — the arena planner guarantees
/// concurrently-live steps never share a slot (and an explicit aliasing
/// check below turns any violation into an error instead of a
/// deadlock). `input` is `None` on pool workers; the level runner keeps
/// extern-reading steps on the caller.
fn exec_step(
    steps: &[PlanStep],
    nodes: &[SparseNode],
    si: usize,
    input: Option<&Tensor>,
    arena: &Arena,
    exec: &ExecConfig,
) -> Result<(), SparseModelError> {
    let step = steps
        .get(si)
        .ok_or_else(|| plan_err(format!("step {si} missing from schedule")))?;
    let node = nodes
        .get(step.node)
        .ok_or_else(|| plan_err(format!("step {si}: node {} missing", step.node)))?;
    let _span = step_span(step, node, exec);
    let mut out_guard = arena
        .get(step.out_slot)
        .ok_or_else(|| plan_err(format!("step {si}: slot {} missing", step.out_slot)))?
        .write()
        .unwrap_or_else(PoisonError::into_inner);
    let out = out_guard
        .get_mut(..step.out_len)
        .ok_or_else(|| plan_err(format!("slot {} under-allocated", step.out_slot)))?;

    // Resolve operand read guards up front so their borrows span the
    // arithmetic below. Reading a slot twice (e.g. `add(b, b)`) is
    // fine — no writer can be queued on an operand slot while its
    // value is live.
    enum Operand<'a> {
        Extern,
        Arena(RwLockReadGuard<'a, Vec<f32>>, &'a PlanStep),
    }
    let mut operands = Vec::with_capacity(step.inputs.len());
    for (k, srcref) in step.inputs.iter().enumerate() {
        match srcref {
            StepSource::Extern => operands.push(Operand::Extern),
            StepSource::Step(i) => {
                let st = steps
                    .get(*i)
                    .ok_or_else(|| plan_err(format!("operand step {i} missing")))?;
                if st.out_slot == step.out_slot {
                    return Err(plan_err(format!(
                        "step {si} operand {k} aliases its output slot {}",
                        step.out_slot
                    )));
                }
                let guard = arena
                    .get(st.out_slot)
                    .ok_or_else(|| plan_err(format!("operand slot {} missing", st.out_slot)))?
                    .read()
                    .unwrap_or_else(PoisonError::into_inner);
                operands.push(Operand::Arena(guard, st));
            }
        }
    }
    let src = |k: usize| -> Result<(&[f32], &[usize]), SparseModelError> {
        match operands.get(k) {
            Some(Operand::Extern) => {
                let x = input.ok_or_else(|| {
                    plan_err(format!("step {si} reads the extern input off the caller"))
                })?;
                Ok((x.as_slice(), x.shape()))
            }
            Some(Operand::Arena(guard, st)) => {
                let buf = guard
                    .get(..st.out_len)
                    .ok_or_else(|| plan_err(format!("operand slot {} missing", st.out_slot)))?;
                Ok((buf, st.out_shape.as_slice()))
            }
            None => Err(plan_err(format!(
                "step for node {} lacks operand {k}",
                step.node
            ))),
        }
    };
    match &node.op {
        SparseOp::Conv { layer, bias } => {
            let affine = match step.fused_affine {
                Some(j) => match nodes.get(j).map(|n| &n.op) {
                    Some(SparseOp::ChannelAffine { scale, shift }) => {
                        Some((scale.as_slice(), shift.as_slice()))
                    }
                    _ => {
                        return Err(plan_err(format!(
                            "fused affine node {j} is not a channel affine"
                        )))
                    }
                },
                None => None,
            };
            let (x, xs) = src(0)?;
            let epi = Epilogue {
                affine,
                act: step.fused_act.and_then(epilogue_act),
            };
            // Dispatch on the autotuned per-layer format. All three
            // kernels share the canonical accumulation order, so this
            // choice never changes an output bit (RV092).
            match &step.kernel {
                Some(ConvKernel::Coo(un)) => {
                    conv2d_unstructured_into_with(x, xs, un, Some(bias), &epi, out, exec)?;
                }
                Some(ConvKernel::Dense(w)) => {
                    conv2d_dense_into_with(
                        x,
                        xs,
                        w,
                        layer.stride(),
                        layer.padding(),
                        Some(bias),
                        &epi,
                        out,
                        exec,
                    )?;
                }
                _ => {
                    conv2d_pattern_sparse_into_with(x, xs, layer, Some(bias), &epi, out, exec)?;
                }
            }
        }
        SparseOp::ChannelAffine { scale, shift } => {
            let (x, xs) = src(0)?;
            channel_affine_into(x, xs, scale, shift, out);
        }
        SparseOp::Activation(kind) => {
            let (x, _) = src(0)?;
            let k = *kind;
            for (o, &v) in out.iter_mut().zip(x.iter()) {
                *o = eval_act(k, v);
            }
        }
        SparseOp::MaxPool { k, stride, pad } => {
            let (x, xs) = src(0)?;
            maxpool2d_into(x, xs, *k, *stride, *pad, &step.out_shape, out);
        }
        SparseOp::Upsample2x => {
            let (x, xs) = src(0)?;
            upsample_nearest2x_into(x, xs, out);
        }
        SparseOp::Add => {
            let (a, _) = src(0)?;
            let (b, _) = src(1)?;
            for ((o, &av), &bv) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
                *o = av + bv;
            }
        }
        SparseOp::Concat => {
            let mut parts = Vec::with_capacity(step.inputs.len());
            for k in 0..step.inputs.len() {
                parts.push(src(k)?);
            }
            concat_channels_into(&parts, &step.out_shape, out);
        }
        SparseOp::Input => {
            return Err(plan_err("input node scheduled as a step".into()));
        }
    }
    Ok(())
}

/// Resolves one conv step's kernel format per the plan options: forced
/// choices convert immediately; `Auto` runs the deterministic density
/// heuristic or the timed microbenchmark. Returns the kernel plus the
/// autotune evidence (empty unless timed).
fn choose_conv_kernel(
    layer: &PatternCompressedConv,
    bias: &[f32],
    in_shape: &[usize],
    opts: &PlanOptions,
) -> (ConvKernel, Vec<(&'static str, u64)>) {
    match opts.format {
        FormatChoice::Pattern => (ConvKernel::Pattern, Vec::new()),
        FormatChoice::Coo => (ConvKernel::Coo(coo_from_pattern(layer)), Vec::new()),
        FormatChoice::Dense => (ConvKernel::Dense(layer.to_dense()), Vec::new()),
        FormatChoice::Auto => match opts.autotune {
            AutotuneMode::Heuristic => {
                let dense_w = (layer.out_channels()
                    * layer.in_channels()
                    * layer.kernel_size()
                    * layer.kernel_size()) as f64;
                let density = if dense_w == 0.0 {
                    0.0
                } else {
                    layer.stored_weights() as f64 / dense_w
                };
                if density > DENSE_DENSITY_THRESHOLD {
                    (ConvKernel::Dense(layer.to_dense()), Vec::new())
                } else {
                    // COO is never the heuristic pick: at equal nnz it
                    // does strictly more dispatch work than pattern.
                    // Only a measurement can justify it.
                    (ConvKernel::Pattern, Vec::new())
                }
            }
            AutotuneMode::Timed { reps } => autotune_timed(layer, bias, in_shape, reps),
        },
    }
}

/// Times every candidate kernel on the layer's real compile shape
/// (min-of-`reps`, serial, deterministic probe data) and returns the
/// fastest plus all measurements. Ties break toward the earlier
/// candidate in `pattern, coo, dense` order; any executor error falls
/// back to the pattern kernel with no evidence.
fn autotune_timed(
    layer: &PatternCompressedConv,
    bias: &[f32],
    in_shape: &[usize],
    reps: u32,
) -> (ConvKernel, Vec<(&'static str, u64)>) {
    let out_shape = match conv_output_shape(
        in_shape,
        layer.in_channels(),
        layer.out_channels(),
        layer.kernel_size(),
        layer.stride(),
        layer.padding(),
        "autotune",
    ) {
        Ok(s) => s,
        Err(_) => return (ConvKernel::Pattern, Vec::new()),
    };
    // Deterministic probe data — the values cannot affect the timing,
    // only the shape does, so the probe needs no RNG plumbing.
    let x: Vec<f32> = (0..in_shape.iter().product::<usize>())
        .map(|i| ((i % 31) as f32) * 0.0625 - 0.9)
        .collect();
    let mut out = vec![0.0f32; out_shape.iter().product()];
    let exec = ExecConfig::serial();
    let coo = coo_from_pattern(layer);
    let dense = layer.to_dense();
    let reps = reps.max(1);
    let mut results: Vec<(&'static str, u64)> = Vec::with_capacity(3);
    let mut failed = false;
    {
        let mut measure = |label: &'static str, run: &mut dyn FnMut(&mut [f32]) -> bool| {
            let mut best = u64::MAX;
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                if !run(&mut out) {
                    failed = true;
                    return;
                }
                best = best.min(t0.elapsed().as_nanos() as u64);
            }
            results.push((label, best));
        };
        measure("pattern", &mut |out| {
            conv2d_pattern_sparse_into_with(
                &x,
                in_shape,
                layer,
                Some(bias),
                &Epilogue::NONE,
                out,
                &exec,
            )
            .is_ok()
        });
        measure("coo", &mut |out| {
            conv2d_unstructured_into_with(
                &x,
                in_shape,
                &coo,
                Some(bias),
                &Epilogue::NONE,
                out,
                &exec,
            )
            .is_ok()
        });
        measure("dense", &mut |out| {
            conv2d_dense_into_with(
                &x,
                in_shape,
                &dense,
                layer.stride(),
                layer.padding(),
                Some(bias),
                &Epilogue::NONE,
                out,
                &exec,
            )
            .is_ok()
        });
    }
    if failed || results.len() != 3 {
        return (ConvKernel::Pattern, Vec::new());
    }
    let mut best = 0;
    for (i, &(_, ns)) in results.iter().enumerate() {
        if ns < results[best].1 {
            best = i;
        }
    }
    let kernel = match results[best].0 {
        "coo" => ConvKernel::Coo(coo),
        "dense" => ConvKernel::Dense(dense),
        _ => ConvKernel::Pattern,
    };
    (kernel, results)
}

/// Best-fit free-slot lookup among slots whose previous tenant's last
/// consumer sits in a level strictly below `level` (so a
/// concurrently-live step can never claim the slot): index into `free`
/// of the smallest eligible slot with capacity ≥ `len`, else the
/// largest eligible slot (grown by the caller), else `None`.
fn best_fit(free: &[(usize, usize)], caps: &[usize], len: usize, level: usize) -> Option<usize> {
    let mut fit: Option<(usize, usize)> = None; // (pos, cap)
    let mut largest: Option<(usize, usize)> = None;
    for (pos, &(slot, freed_level)) in free.iter().enumerate() {
        if freed_level >= level {
            continue;
        }
        let cap = caps[slot];
        if cap >= len && fit.is_none_or(|(_, c)| cap < c) {
            fit = Some((pos, cap));
        }
        if largest.is_none_or(|(_, c)| cap > c) {
            largest = Some((pos, cap));
        }
    }
    fit.or(largest).map(|(pos, _)| pos)
}

/// Plan-time shape inference over the compiled node list — the one
/// place shapes are validated; per-call execution trusts these.
fn infer_shapes(
    nodes: &[SparseNode],
    input_shape: &[usize],
) -> Result<Vec<Vec<usize>>, SparseModelError> {
    let mut shapes: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        let in0 = || -> Result<&Vec<usize>, SparseModelError> {
            node.inputs
                .first()
                .and_then(|&j| shapes.get(j))
                .filter(|s| !s.is_empty())
                .ok_or_else(|| plan_err(format!("node {i} has no resolvable input")))
        };
        let rank4 = |s: &[usize]| -> Result<(usize, usize, usize, usize), SparseModelError> {
            if s.len() != 4 {
                return Err(plan_err(format!("node {i} expects rank 4, got {s:?}")));
            }
            Ok((s[0], s[1], s[2], s[3]))
        };
        let shape = match &node.op {
            SparseOp::Input => input_shape.to_vec(),
            SparseOp::Conv { layer, bias } => {
                if bias.len() != layer.out_channels() {
                    return Err(plan_err(format!(
                        "node {i}: bias length {} != out channels {}",
                        bias.len(),
                        layer.out_channels()
                    )));
                }
                conv_output_shape(
                    in0()?,
                    layer.in_channels(),
                    layer.out_channels(),
                    layer.kernel_size(),
                    layer.stride(),
                    layer.padding(),
                    "execution_plan",
                )?
                .to_vec()
            }
            SparseOp::ChannelAffine { scale, shift } => {
                let s = in0()?.clone();
                let (_, c, _, _) = rank4(&s)?;
                if scale.len() != c || shift.len() != c {
                    return Err(plan_err(format!(
                        "node {i}: affine over {c} channels has {}/{} params",
                        scale.len(),
                        shift.len()
                    )));
                }
                s
            }
            SparseOp::Activation(_) => in0()?.clone(),
            SparseOp::MaxPool { k, stride, pad } => {
                let s = in0()?.clone();
                let (n, c, h, w) = rank4(&s)?;
                let oh = out_extent(h, *k, *stride, *pad)
                    .ok_or_else(|| plan_err(format!("node {i}: pool window does not fit")))?;
                let ow = out_extent(w, *k, *stride, *pad)
                    .ok_or_else(|| plan_err(format!("node {i}: pool window does not fit")))?;
                vec![n, c, oh, ow]
            }
            SparseOp::Upsample2x => {
                let s = in0()?.clone();
                let (n, c, h, w) = rank4(&s)?;
                vec![n, c, 2 * h, 2 * w]
            }
            SparseOp::Add => {
                let a = in0()?.clone();
                let b = node
                    .inputs
                    .get(1)
                    .and_then(|&j| shapes.get(j))
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| plan_err(format!("node {i}: add lacks a second operand")))?;
                if &a != b {
                    return Err(plan_err(format!("node {i}: add of {a:?} vs {b:?}")));
                }
                a
            }
            SparseOp::Concat => {
                let mut it = node.inputs.iter();
                let first = it
                    .next()
                    .and_then(|&j| shapes.get(j))
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| plan_err(format!("node {i}: empty concat")))?;
                let (n, mut c, h, w) = rank4(first)?;
                for &j in it {
                    let s = shapes
                        .get(j)
                        .filter(|s| !s.is_empty())
                        .ok_or_else(|| plan_err(format!("node {i}: unresolved operand {j}")))?;
                    let (nj, cj, hj, wj) = rank4(s)?;
                    if (nj, hj, wj) != (n, h, w) {
                        return Err(plan_err(format!(
                            "node {i}: concat of {s:?} onto (n={n},h={h},w={w})"
                        )));
                    }
                    c += cj;
                }
                vec![n, c, h, w]
            }
        };
        shapes[i] = shape;
    }
    Ok(shapes)
}

/// Per-channel affine into an arena slice, mirroring the interpreter's
/// `channel_affine` loop exactly (same `s * v + b` expression, same
/// traversal order) for bit-identity.
fn channel_affine_into(
    x: &[f32],
    x_shape: &[usize],
    scale: &[f32],
    shift: &[f32],
    out: &mut [f32],
) {
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let plane = h * w;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * plane;
            let (s, b) = (scale[ci], shift[ci]);
            for (o, &v) in out[base..base + plane]
                .iter_mut()
                .zip(&x[base..base + plane])
            {
                *o = s * v + b;
            }
        }
    }
}

/// Max pooling into an arena slice, mirroring
/// [`rtoss_tensor::ops::maxpool2d`]'s comparison order exactly (padded
/// cells skipped; an all-padding window writes 0).
fn maxpool2d_into(
    x: &[f32],
    x_shape: &[usize],
    k: usize,
    stride: usize,
    pad: usize,
    out_shape: &[usize],
    out: &mut [f32],
) {
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let (oh, ow) = (out_shape[2], out_shape[3]);
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = usize::MAX;
                    for ki in 0..k {
                        let iy = (oy * stride + ki) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..k {
                            let ix = (ox * stride + kj) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = plane + iy as usize * w + ix as usize;
                            if x[idx] > best {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = ((ni * c + ci) * oh + oy) * ow + ox;
                    out[oidx] = if best_idx == usize::MAX { 0.0 } else { best };
                }
            }
        }
    }
}

/// Nearest-neighbour 2× upsampling into an arena slice, mirroring
/// [`rtoss_tensor::ops::upsample_nearest2x`].
fn upsample_nearest2x_into(x: &[f32], x_shape: &[usize], out: &mut [f32]) {
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let (oh, ow) = (2 * h, 2 * w);
    for nc in 0..n * c {
        let src = nc * h * w;
        let dst = nc * oh * ow;
        for y in 0..oh {
            for xx in 0..ow {
                out[dst + y * ow + xx] = x[src + (y / 2) * w + (xx / 2)];
            }
        }
    }
}

/// Channel concatenation into an arena slice, mirroring the
/// interpreter's `concat_channels` copy order.
fn concat_channels_into(parts: &[(&[f32], &[usize])], out_shape: &[usize], out: &mut [f32]) {
    let (n, total_c, h, w) = (out_shape[0], out_shape[1], out_shape[2], out_shape[3]);
    let plane = h * w;
    for ni in 0..n {
        let mut c_off = 0;
        for &(x, xs) in parts {
            let c = xs[1];
            let src = &x[ni * c * plane..(ni + 1) * c * plane];
            let dst = (ni * total_c + c_off) * plane;
            out[dst..dst + c * plane].copy_from_slice(src);
            c_off += c;
        }
    }
}

/// Opens the `layer:<name>` trace span for a plan step, carrying the
/// plan metadata (fused epilogue kind, arena slot) alongside the
/// interpreter's per-layer args.
fn step_span(step: &PlanStep, node: &SparseNode, exec: &ExecConfig) -> rtoss_obs::SpanGuard {
    rtoss_obs::span_lazy(|| {
        use rtoss_obs::ArgValue;
        let mut args = vec![
            ("node", ArgValue::U64(step.node as u64)),
            ("kind", ArgValue::Static(node.kind())),
            ("threads", ArgValue::U64(exec.threads as u64)),
            ("fused", ArgValue::Static(step.fused_label())),
            ("slot", ArgValue::U64(step.out_slot as u64)),
        ];
        if let SparseOp::Conv { layer, .. } = &node.op {
            args.push(("oc", ArgValue::U64(layer.out_channels() as u64)));
            args.push(("ic", ArgValue::U64(layer.in_channels() as u64)));
            args.push(("k", ArgValue::U64(layer.kernel_size() as u64)));
            args.push(("format", ArgValue::Static(step.format_label())));
            args.push(("nnz", ArgValue::U64(layer.stored_weights() as u64)));
        }
        (format!("layer:{}", node.name), args)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::{EntryPattern, Pruner, RTossPruner};
    use rtoss_models::yolov5s_twin;
    use rtoss_nn::layers::{Activation, BatchNorm2d, Conv2d};
    use rtoss_nn::Graph;
    use rtoss_tensor::init;

    /// input → a → {b, c} → add → out: the smallest graph where slot
    /// recycling kicks in.
    fn diamond_engine() -> SparseModel {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 10)), x)
            .unwrap();
        let b = g
            .add_layer("b", Box::new(Conv2d::new(4, 4, 3, 1, 1, 11)), a)
            .unwrap();
        let c = g
            .add_layer("c", Box::new(Conv2d::new(4, 4, 3, 1, 1, 12)), a)
            .unwrap();
        let d = g.add_add("d", b, c).unwrap();
        g.set_outputs(vec![d]).unwrap();
        SparseModel::compile(&g).unwrap()
    }

    #[test]
    fn diamond_graph_recycles_slots() {
        let engine = diamond_engine();
        let plan = ExecutionPlan::compile(&engine, &[1, 3, 8, 8]).unwrap();
        let s = plan.summary_for(&engine);
        // Four steps (a, b, c, add) over fewer arena slots than steps:
        // `a` dies when `c` reads it, so `add` reuses its slot.
        assert_eq!(s.steps.len(), 4);
        assert!(s.slot_caps.len() < s.steps.len(), "no slot reuse: {s:#?}");
        assert!(plan.arena_bytes() < plan.retained_bytes());
        assert!(plan.peak_live_bytes() <= plan.arena_bytes());
        // Slot lifetimes must be disjoint: recompute from the summary.
        for slot in 0..s.slot_caps.len() {
            let mut tenants: Vec<&StepSummary> = s
                .steps
                .iter()
                .enumerate()
                .filter(|(_, st)| st.out_slot == slot)
                .map(|(_, st)| st)
                .collect();
            tenants.sort_by_key(|st| st.node);
            for pair in tenants.windows(2) {
                let (prev, next) = (&pair[0], &pair[1]);
                let next_idx = s.steps.iter().position(|st| st.node == next.node).unwrap();
                assert!(
                    prev.last_use < next_idx,
                    "slot {slot}: {} still live when {} claims it",
                    prev.name,
                    next.name
                );
            }
        }
    }

    #[test]
    fn concat_graph_plans_channel_sum() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 20)), x)
            .unwrap();
        let b = g
            .add_layer("b", Box::new(Conv2d::new(3, 6, 3, 1, 1, 21)), x)
            .unwrap();
        let c = g.add_concat("c", vec![a, b]).unwrap();
        g.set_outputs(vec![c]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let plan = ExecutionPlan::compile(&engine, &[2, 3, 8, 8]).unwrap();
        let s = plan.summary_for(&engine);
        let concat = s.steps.iter().find(|st| st.kind == "concat").unwrap();
        assert_eq!(concat.out_len, 2 * 10 * 8 * 8);
        assert_eq!(concat.last_use, usize::MAX, "output slot is retained");
        // `a` and `b` are both live until the concat runs, and the
        // concat's (larger) output is assigned before they die — three
        // distinct slots, no reuse possible.
        assert_eq!(s.slot_caps.len(), 3);
        let out = engine.forward(&Tensor::ones(&[2, 3, 8, 8])).unwrap();
        assert_eq!(out[0].shape(), &[2, 10, 8, 8]);
    }

    #[test]
    fn conv_bn_act_chain_fuses_into_one_step() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("conv", Box::new(Conv2d::new(3, 4, 3, 1, 1, 30)), x)
            .unwrap();
        let bn = g.add_layer("bn", Box::new(BatchNorm2d::new(4)), a).unwrap();
        let act = g
            .add_layer("act", Box::new(Activation::new(ActivationKind::Silu)), bn)
            .unwrap();
        g.set_outputs(vec![act]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let plan = ExecutionPlan::compile(&engine, &[1, 3, 8, 8]).unwrap();
        assert_eq!(
            plan.num_steps(),
            1,
            "chain should collapse to one conv step"
        );
        let s = plan.summary_for(&engine);
        assert_eq!(s.steps[0].fused, "affine+act");
        assert_eq!(s.steps[0].kind, "conv");
        // Fused output is bit-identical to the unfused interpreter.
        let probe = init::uniform(&mut init::rng(31), &[1, 3, 8, 8], -1.0, 1.0);
        let planned = engine.forward(&probe).unwrap();
        let interp = engine
            .forward_interpreted_with(&probe, &ExecConfig::serial())
            .unwrap();
        assert_eq!(planned[0].as_slice(), interp[0].as_slice());
    }

    #[test]
    fn bn_not_after_conv_is_not_fused() {
        // maxpool → bn: the affine has no conv producer to fuse into.
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("conv", Box::new(Conv2d::new(3, 4, 3, 2, 1, 40)), x)
            .unwrap();
        let p = g
            .add_layer(
                "pool",
                Box::new(rtoss_nn::layers::MaxPool2d::new(2, 2, 0)),
                a,
            )
            .unwrap();
        let bn = g.add_layer("bn", Box::new(BatchNorm2d::new(4)), p).unwrap();
        g.set_outputs(vec![bn]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let plan = ExecutionPlan::compile(&engine, &[1, 3, 16, 16]).unwrap();
        let s = plan.summary_for(&engine);
        assert_eq!(plan.num_steps(), 3);
        assert!(s.steps.iter().all(|st| st.fused == "none"));
        let probe = init::uniform(&mut init::rng(41), &[1, 3, 16, 16], -1.0, 1.0);
        let planned = engine.forward(&probe).unwrap();
        let interp = engine
            .forward_interpreted_with(&probe, &ExecConfig::serial())
            .unwrap();
        assert_eq!(planned[0].as_slice(), interp[0].as_slice());
    }

    #[test]
    fn tapped_intermediate_output_is_retained() {
        // `b` is both consumed by `d` and a declared output: its slot
        // must never be recycled, and the tensor must surface intact.
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 50)), x)
            .unwrap();
        let b = g
            .add_layer("b", Box::new(Conv2d::new(4, 4, 3, 1, 1, 51)), a)
            .unwrap();
        let c = g
            .add_layer("c", Box::new(Conv2d::new(4, 4, 3, 1, 1, 52)), b)
            .unwrap();
        let d = g.add_add("d", b, c).unwrap();
        g.set_outputs(vec![b, d]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let probe = init::uniform(&mut init::rng(53), &[1, 3, 8, 8], -1.0, 1.0);
        let planned = engine.forward(&probe).unwrap();
        let interp = engine
            .forward_interpreted_with(&probe, &ExecConfig::serial())
            .unwrap();
        assert_eq!(planned.len(), 2);
        for (p, i) in planned.iter().zip(&interp) {
            assert_eq!(p.as_slice(), i.as_slice());
        }
    }

    #[test]
    fn plan_cache_reuses_compiled_plans_per_shape() {
        let engine = diamond_engine();
        let p1 = engine.plan_for(&[1, 3, 8, 8]).unwrap();
        let p2 = engine.plan_for(&[1, 3, 8, 8]).unwrap();
        assert!(std::sync::Arc::ptr_eq(&p1, &p2), "same shape, same plan");
        let p3 = engine.plan_for(&[2, 3, 8, 8]).unwrap();
        assert!(!std::sync::Arc::ptr_eq(&p1, &p3));
        assert_eq!(
            engine.peak_activation_bytes(),
            Some(p1.arena_bytes().max(p3.arena_bytes()))
        );
    }

    #[test]
    fn plan_rejects_mismatched_input_shape() {
        let engine = diamond_engine();
        let plan = engine.plan_for(&[1, 3, 8, 8]).unwrap();
        let wrong = Tensor::ones(&[1, 3, 16, 16]);
        assert!(plan.run(&engine, &wrong, &ExecConfig::serial()).is_err());
        // Shape errors surface at plan time, not mid-run.
        assert!(engine.plan_for(&[1, 5, 8, 8]).is_err());
    }

    #[test]
    fn planned_twin_beats_interpreter_on_memory() {
        let mut m = yolov5s_twin(4, 2, 60).unwrap();
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap();
        let plan = engine.plan_for(&[1, 3, 32, 32]).unwrap();
        assert!(
            plan.arena_bytes() < plan.retained_bytes(),
            "arena {} vs retained {}",
            plan.arena_bytes(),
            plan.retained_bytes()
        );
        let s = plan.summary_for(&engine);
        assert!(
            s.steps.iter().any(|st| st.fused == "affine+act"),
            "twin should have fusable conv→bn→act chains"
        );
        assert!(s.steps.len() < engine.conv_layers().len() * 3);
    }

    #[test]
    fn interpreter_frees_activations_without_changing_outputs() {
        // Satellite: the interpreter drops each activation after its
        // last consumer; outputs must be unchanged, and repeated calls
        // must agree exactly (no freed buffer is ever read).
        let mut m = yolov5s_twin(4, 2, 61).unwrap();
        RTossPruner::new(EntryPattern::Three)
            .prune_graph(&mut m.graph)
            .unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap().with_planning(false);
        assert!(!engine.planning());
        let probe = init::uniform(&mut init::rng(62), &[1, 3, 32, 32], 0.0, 1.0);
        let one = engine.forward(&probe).unwrap();
        let two = engine.forward(&probe).unwrap();
        assert!(!one.is_empty());
        assert_eq!(one.len(), two.len());
        for (a, b) in one.iter().zip(&two) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn input_passthrough_output_is_cloned() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 70)), x)
            .unwrap();
        g.set_outputs(vec![x, a]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let probe = init::uniform(&mut init::rng(71), &[1, 3, 8, 8], -1.0, 1.0);
        let planned = engine.forward(&probe).unwrap();
        let interp = engine
            .forward_interpreted_with(&probe, &ExecConfig::serial())
            .unwrap();
        assert_eq!(planned[0].as_slice(), probe.as_slice());
        for (p, i) in planned.iter().zip(&interp) {
            assert_eq!(p.as_slice(), i.as_slice());
        }
    }

    #[test]
    fn levels_respect_data_dependencies_and_slot_disjointness() {
        let mut m = yolov5s_twin(4, 2, 80).unwrap();
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap();
        let plan = engine.plan_for(&[1, 3, 32, 32]).unwrap();
        let s = plan.summary_for(&engine);
        // The PANet twin has independent branches: at least one level
        // must hold ≥ 2 steps, or "graph-level parallelism" is vacuous.
        let max_width = s
            .steps
            .iter()
            .map(|st| s.steps.iter().filter(|o| o.level == st.level).count())
            .max()
            .unwrap();
        assert!(max_width >= 2, "no level with independent steps");
        for (i, st) in s.steps.iter().enumerate() {
            // Every operand lives in a strictly earlier level.
            for src in st.inputs.iter().flatten() {
                assert!(
                    s.steps[*src].level < st.level,
                    "step {i} (level {}) reads step {src} (level {})",
                    st.level,
                    s.steps[*src].level
                );
            }
        }
        // Slot tenancy windows, in step order: a later tenant's level
        // must be strictly greater than the deepest consuming level of
        // the previous tenant (so they can never be concurrently live).
        for slot in 0..s.slot_caps.len() {
            let tenants: Vec<usize> = (0..s.steps.len())
                .filter(|&i| s.steps[i].out_slot == slot)
                .collect();
            for pair in tenants.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                assert_ne!(s.steps[a].last_use, usize::MAX, "retained slot reused");
                let mut end_level = s.steps[a].level;
                for st in &s.steps {
                    if st.inputs.iter().flatten().any(|src| *src == a) {
                        end_level = end_level.max(st.level);
                    }
                }
                assert!(
                    end_level < s.steps[b].level,
                    "slot {slot}: step {b} (level {}) claims it while step {a} \
                     is still consumed at level {end_level}",
                    s.steps[b].level
                );
            }
        }
    }

    #[test]
    fn parallel_plan_is_bit_identical_to_serial_plan() {
        // Force a real multi-worker pool so the level-parallel path is
        // exercised even on a single-core host, then require bitwise
        // equality against the serial schedule and the interpreter.
        let pool = WorkerPool::new(3);
        let mut m = yolov5s_twin(4, 2, 81).unwrap();
        RTossPruner::new(EntryPattern::Three)
            .prune_graph(&mut m.graph)
            .unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap();
        let plan = engine.plan_for(&[1, 3, 32, 32]).unwrap();
        let probe = init::uniform(&mut init::rng(82), &[1, 3, 32, 32], -1.0, 1.0);
        let serial = plan
            .run_with_pool(&engine, &probe, &ExecConfig::serial(), &pool)
            .unwrap();
        let interp = engine
            .forward_interpreted_with(&probe, &ExecConfig::serial())
            .unwrap();
        for threads in [2, 4, 8] {
            for _rep in 0..3 {
                let par = plan
                    .run_with_pool(&engine, &probe, &ExecConfig::with_threads(threads), &pool)
                    .unwrap();
                assert_eq!(par.len(), serial.len());
                for ((p, s), i) in par.iter().zip(&serial).zip(&interp) {
                    assert_eq!(p.shape(), s.shape());
                    let pb: Vec<u32> = p.as_slice().iter().map(|v| v.to_bits()).collect();
                    let sb: Vec<u32> = s.as_slice().iter().map(|v| v.to_bits()).collect();
                    let ib: Vec<u32> = i.as_slice().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(pb, sb, "parallel ({threads} threads) != serial plan");
                    assert_eq!(pb, ib, "parallel ({threads} threads) != interpreter");
                }
            }
        }
    }

    #[test]
    fn parallel_plan_handles_tapped_outputs_and_concat() {
        // Branchy graph with a retained intermediate output, executed
        // wide: exercises extern-reading steps on the caller, pooled
        // chunks, and the read-locked shared-output copy path.
        let pool = WorkerPool::new(2);
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 90)), x)
            .unwrap();
        let b = g
            .add_layer("b", Box::new(Conv2d::new(3, 6, 3, 1, 1, 91)), x)
            .unwrap();
        let c = g.add_concat("c", vec![a, b]).unwrap();
        let d = g
            .add_layer("d", Box::new(Conv2d::new(10, 4, 3, 1, 1, 92)), c)
            .unwrap();
        g.set_outputs(vec![a, d, a]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let plan = engine.plan_for(&[1, 3, 8, 8]).unwrap();
        let probe = init::uniform(&mut init::rng(93), &[1, 3, 8, 8], -1.0, 1.0);
        let serial = plan
            .run_with_pool(&engine, &probe, &ExecConfig::serial(), &pool)
            .unwrap();
        let par = plan
            .run_with_pool(&engine, &probe, &ExecConfig::with_threads(4), &pool)
            .unwrap();
        assert_eq!(serial.len(), 3);
        for (p, s) in par.iter().zip(&serial) {
            assert_eq!(p.as_slice(), s.as_slice());
        }
    }

    #[test]
    fn forced_formats_are_bit_identical_to_interpreter() {
        let mut m = yolov5s_twin(4, 2, 95).unwrap();
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap();
        let probe = init::uniform(&mut init::rng(96), &[1, 3, 32, 32], -1.0, 1.0);
        let interp = engine
            .forward_interpreted_with(&probe, &ExecConfig::serial())
            .unwrap();
        for (choice, label) in [
            (FormatChoice::Pattern, "pattern"),
            (FormatChoice::Coo, "coo"),
            (FormatChoice::Dense, "dense"),
        ] {
            let opts = PlanOptions {
                format: choice,
                autotune: AutotuneMode::Heuristic,
            };
            let plan = ExecutionPlan::compile_with(&engine, &[1, 3, 32, 32], &opts).unwrap();
            let s = plan.summary_for(&engine);
            for st in s.steps.iter().filter(|st| st.kind == "conv") {
                assert_eq!(st.format, label, "step {}", st.name);
                assert!(st.autotune_ns.is_empty(), "forced choice must not time");
            }
            let out = plan.run(&engine, &probe, &ExecConfig::serial()).unwrap();
            assert_eq!(out.len(), interp.len());
            for (o, i) in out.iter().zip(&interp) {
                let ob: Vec<u32> = o.as_slice().iter().map(|v| v.to_bits()).collect();
                let ib: Vec<u32> = i.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(ob, ib, "{label} plan != interpreter");
            }
        }
    }

    #[test]
    fn heuristic_splits_on_density() {
        // Unpruned 3x3 conv: density 1.0 > threshold → dense kernel.
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 97)), x)
            .unwrap();
        g.set_outputs(vec![a]).unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let plan =
            ExecutionPlan::compile_with(&engine, &[1, 3, 8, 8], &PlanOptions::default()).unwrap();
        assert_eq!(plan.summary_for(&engine).steps[0].format, "dense");

        // Same layer pruned to 2 taps per kernel: ~2/9 → pattern.
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g
            .add_layer("a", Box::new(Conv2d::new(3, 4, 3, 1, 1, 98)), x)
            .unwrap();
        g.set_outputs(vec![a]).unwrap();
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut g)
            .unwrap();
        let engine = SparseModel::compile(&g).unwrap();
        let plan =
            ExecutionPlan::compile_with(&engine, &[1, 3, 8, 8], &PlanOptions::default()).unwrap();
        assert_eq!(plan.summary_for(&engine).steps[0].format, "pattern");
    }

    #[test]
    fn timed_autotune_records_evidence_and_picks_measured_minimum() {
        let mut m = yolov5s_twin(4, 2, 100).unwrap();
        RTossPruner::new(EntryPattern::Three)
            .prune_graph(&mut m.graph)
            .unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap();
        let opts = PlanOptions {
            format: FormatChoice::Auto,
            autotune: AutotuneMode::Timed { reps: 2 },
        };
        let plan = ExecutionPlan::compile_with(&engine, &[1, 3, 32, 32], &opts).unwrap();
        let s = plan.summary_for(&engine);
        let mut saw_conv = false;
        for st in s.steps.iter().filter(|st| st.kind == "conv") {
            saw_conv = true;
            assert_eq!(
                st.autotune_ns.len(),
                3,
                "step {}: {:?}",
                st.name,
                st.autotune_ns
            );
            // min_by_key keeps the first of equals — same tie-break the
            // chooser uses, so this holds even on degenerate timers.
            let min = st
                .autotune_ns
                .iter()
                .min_by_key(|(_, ns)| *ns)
                .map(|(l, _)| *l)
                .unwrap();
            assert_eq!(st.format, min, "chosen format is not the measured minimum");
        }
        assert!(saw_conv);
        // Whatever the timer picked, outputs stay bit-identical.
        let probe = init::uniform(&mut init::rng(101), &[1, 3, 32, 32], -1.0, 1.0);
        let out = plan.run(&engine, &probe, &ExecConfig::serial()).unwrap();
        let interp = engine
            .forward_interpreted_with(&probe, &ExecConfig::serial())
            .unwrap();
        for (o, i) in out.iter().zip(&interp) {
            assert_eq!(o.as_slice(), i.as_slice());
        }
    }

    #[test]
    fn plan_options_parse_from_env() {
        std::env::set_var("RTOSS_FORMAT", "coo");
        std::env::set_var("RTOSS_AUTOTUNE", "time:5");
        let opts = PlanOptions::from_env();
        std::env::remove_var("RTOSS_FORMAT");
        std::env::remove_var("RTOSS_AUTOTUNE");
        assert_eq!(opts.format, FormatChoice::Coo);
        assert_eq!(opts.autotune, AutotuneMode::Timed { reps: 5 });
        let d = PlanOptions::from_env();
        assert_eq!(d.format, FormatChoice::Auto);
        assert_eq!(d.autotune, AutotuneMode::Heuristic);
    }
}
