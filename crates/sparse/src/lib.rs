//! Pattern-grouped sparse convolution execution.
//!
//! The paper's inference speedups come from two properties of
//! semi-structured pruning (§II.B, §IV.C):
//!
//! 1. pruned weights need never be touched (compute scales with `k/9`),
//! 2. kernels sharing one of the ≤21 patterns can be *grouped*, so the
//!    inner loop runs a fixed, regular set of offsets — unlike
//!    unstructured sparsity, whose irregular gathers defeat caching.
//!
//! [`PatternCompressedConv`] stores a pruned layer grouped by pattern;
//! [`exec::conv2d_pattern_sparse`] executes it; and
//! [`exec::conv2d_unstructured`] executes the same weights through a
//! per-weight COO path, reproducing the paper's argument that equal
//! sparsity does *not* mean equal speed. `rtoss-bench`'s `conv_sparse`
//! bench and the fig6 harness measure all three executors on this CPU.
//!
//! # Example
//!
//! ```
//! use rtoss_sparse::PatternCompressedConv;
//! use rtoss_tensor::{init, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 2-of-9 pruned weight compresses ~4x.
//! let mut w = init::uniform(&mut init::rng(1), &[8, 8, 3, 3], -1.0, 1.0);
//! let set = rtoss_core::pattern::canonical_set(2)?;
//! rtoss_core::prune3x3::prune_3x3_weights(&mut w, &set)?;
//! let pc = PatternCompressedConv::from_dense(&w, 1, 1)?;
//! assert!(pc.compression_ratio() > 2.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod model;

pub mod exec;
pub mod pack;
pub mod plan;
pub mod runtime;

pub use format::{
    FormatViolation, PatternCompressedConv, PatternGroup, SparseFormatError, UnstructuredSparseConv,
};
pub use model::{SparseModel, SparseModelError};
pub use pack::{coo_from_pattern, CooPack, PatternPack};
pub use plan::{
    AutotuneMode, ExecutionPlan, FormatChoice, LevelDeal, LevelSchedule, PlanOptions, PlanSummary,
    StepSummary,
};
pub use rtoss_tensor::exec::ExecConfig;
