//! Wall-clock measurement of dense vs sparse execution — the measured
//! CPU series of the Fig. 6 speedup harness.

use crate::exec::{conv2d_pattern_sparse_with, conv2d_unstructured_with};
use crate::format::{PatternCompressedConv, UnstructuredSparseConv};
use rtoss_tensor::exec::ExecConfig;
use rtoss_tensor::{ops, Tensor, TensorError};
use std::time::Instant;

/// Timing comparison of the three executors on one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerTiming {
    /// Dense im2col conv seconds per run.
    pub dense_s: f64,
    /// Pattern-grouped sparse conv seconds per run.
    pub pattern_s: f64,
    /// Unstructured COO conv seconds per run.
    pub unstructured_s: f64,
}

impl LayerTiming {
    /// Dense-over-pattern speedup.
    pub fn pattern_speedup(&self) -> f64 {
        self.dense_s / self.pattern_s
    }

    /// Dense-over-unstructured speedup.
    pub fn unstructured_speedup(&self) -> f64 {
        self.dense_s / self.unstructured_s
    }
}

fn time<F: FnMut() -> Result<Tensor, TensorError>>(
    reps: usize,
    mut f: F,
) -> Result<f64, TensorError> {
    // Warm-up run (also validates shapes before timing).
    f()?;
    let start = Instant::now();
    for _ in 0..reps {
        let out = f()?;
        std::hint::black_box(out.as_slice()[0]);
    }
    Ok(start.elapsed().as_secs_f64() / reps as f64)
}

/// Times dense, pattern-sparse, and unstructured execution of one
/// pruned layer on one input, averaging over `reps` runs.
///
/// # Errors
///
/// Returns an error if the weight/input geometry is invalid.
pub fn measure_layer(
    x: &Tensor,
    weights: &Tensor,
    stride: usize,
    pad: usize,
    reps: usize,
) -> Result<LayerTiming, TensorError> {
    measure_layer_with(x, weights, stride, pad, reps, &ExecConfig::default())
}

/// [`measure_layer`] with an explicit [`ExecConfig`]: all three
/// executors (dense / pattern / unstructured) are timed at the given
/// thread count, so thread-scaling sweeps compare like with like.
///
/// # Errors
///
/// Returns an error if the weight/input geometry is invalid.
pub fn measure_layer_with(
    x: &Tensor,
    weights: &Tensor,
    stride: usize,
    pad: usize,
    reps: usize,
    exec: &ExecConfig,
) -> Result<LayerTiming, TensorError> {
    let pc = PatternCompressedConv::from_dense(weights, stride, pad).map_err(|e| {
        TensorError::Invalid {
            op: "measure_layer",
            msg: e.to_string(),
        }
    })?;
    let un = UnstructuredSparseConv::from_dense(weights, stride, pad).map_err(|e| {
        TensorError::Invalid {
            op: "measure_layer",
            msg: e.to_string(),
        }
    })?;
    let dense_s = time(reps, || {
        ops::conv2d_with(x, weights, None, stride, pad, exec)
    })?;
    let pattern_s = time(reps, || conv2d_pattern_sparse_with(x, &pc, None, exec))?;
    let unstructured_s = time(reps, || conv2d_unstructured_with(x, &un, None, exec))?;
    Ok(LayerTiming {
        dense_s,
        pattern_s,
        unstructured_s,
    })
}

/// End-to-end model timing: dense graph (eval mode) vs the compiled
/// [`SparseModel`](crate::SparseModel) engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelTiming {
    /// Dense graph forward seconds per frame.
    pub dense_s: f64,
    /// Sparse engine forward seconds per frame.
    pub sparse_s: f64,
}

impl ModelTiming {
    /// Dense-over-sparse speedup.
    pub fn speedup(&self) -> f64 {
        self.dense_s / self.sparse_s
    }
}

/// Times one (pruned) detector graph against its compiled sparse engine
/// on the same input, averaging over `reps` frames.
///
/// # Errors
///
/// Returns an error if the graph cannot be compiled or inference fails.
pub fn measure_model(
    graph: &mut rtoss_nn::Graph,
    x: &Tensor,
    reps: usize,
) -> Result<ModelTiming, Box<dyn std::error::Error>> {
    measure_model_with(graph, x, reps, &ExecConfig::default())
}

/// [`measure_model`] with an explicit [`ExecConfig`] applied to the
/// compiled sparse engine. (The dense graph side runs through the
/// layers' own `ops::conv2d` calls, which use the process default —
/// set `RTOSS_THREADS` to steer both sides together.)
///
/// # Errors
///
/// Returns an error if the graph cannot be compiled or inference fails.
pub fn measure_model_with(
    graph: &mut rtoss_nn::Graph,
    x: &Tensor,
    reps: usize,
    exec: &ExecConfig,
) -> Result<ModelTiming, Box<dyn std::error::Error>> {
    measure_model_planning(graph, x, reps, exec, true)
}

/// [`measure_model_with`] with explicit control over execution
/// planning: `planning = false` times the per-call graph interpreter
/// instead of the compiled [`ExecutionPlan`](crate::ExecutionPlan)
/// path (the `--no-plan` baseline the benchmarks expose).
///
/// # Errors
///
/// Returns an error if the graph cannot be compiled or inference fails.
pub fn measure_model_planning(
    graph: &mut rtoss_nn::Graph,
    x: &Tensor,
    reps: usize,
    exec: &ExecConfig,
    planning: bool,
) -> Result<ModelTiming, Box<dyn std::error::Error>> {
    let engine = crate::SparseModel::compile(graph)?
        .with_exec_config(*exec)
        .with_planning(planning);
    graph.set_training(false);
    graph.forward(x)?; // warm-up
    let start = Instant::now();
    for _ in 0..reps {
        let y = graph.forward(x)?;
        std::hint::black_box(y[0].as_slice()[0]);
    }
    let dense_s = start.elapsed().as_secs_f64() / reps as f64;
    graph.clear_cache();

    engine.forward(x)?; // warm-up
    let start = Instant::now();
    for _ in 0..reps {
        let y = engine.forward(x)?;
        std::hint::black_box(y[0].as_slice()[0]);
    }
    let sparse_s = start.elapsed().as_secs_f64() / reps as f64;
    Ok(ModelTiming { dense_s, sparse_s })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::pattern::canonical_set;
    use rtoss_core::prune3x3::prune_3x3_weights;
    use rtoss_tensor::init;

    #[test]
    fn measures_positive_times() {
        let mut w = init::uniform(&mut init::rng(1), &[8, 8, 3, 3], -1.0, 1.0);
        prune_3x3_weights(&mut w, &canonical_set(2).unwrap()).unwrap();
        let x = init::uniform(&mut init::rng(2), &[1, 8, 16, 16], -1.0, 1.0);
        let t = measure_layer(&x, &w, 1, 1, 2).unwrap();
        assert!(t.dense_s > 0.0 && t.pattern_s > 0.0 && t.unstructured_s > 0.0);
        assert!(t.pattern_speedup() > 0.0);
    }

    #[test]
    fn model_timing_runs_and_is_positive() {
        use rtoss_core::{EntryPattern, Pruner, RTossPruner};
        let mut m = rtoss_models::yolov5s_twin(4, 2, 5).unwrap();
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .unwrap();
        let x = init::uniform(&mut init::rng(6), &[1, 3, 64, 64], 0.0, 1.0);
        let t = measure_model(&mut m.graph, &x, 2).unwrap();
        assert!(t.dense_s > 0.0 && t.sparse_s > 0.0);
        assert!(t.speedup() > 0.1);
    }

    #[test]
    fn sparse_beats_dense_on_heavily_pruned_layer() {
        // 2-of-9 pruning: pattern executor does ~22% of the MACs. Even a
        // modest measured advantage confirms work really is skipped.
        let mut w = init::uniform(&mut init::rng(3), &[32, 32, 3, 3], -1.0, 1.0);
        prune_3x3_weights(&mut w, &canonical_set(2).unwrap()).unwrap();
        let x = init::uniform(&mut init::rng(4), &[1, 32, 32, 32], -1.0, 1.0);
        let t = measure_layer(&x, &w, 1, 1, 3).unwrap();
        assert!(
            t.pattern_speedup() > 1.2,
            "pattern speedup only {:.2} (dense {:.4}s, sparse {:.4}s)",
            t.pattern_speedup(),
            t.dense_s,
            t.pattern_s
        );
    }
}
