//! Kernel-major pack buffers for the sparse conv formats.
//!
//! The pre-pack executors rebuilt a `Vec<Vec<…>>` per-output-channel
//! index on *every* forward call. A pack is that index built once, at
//! layer construction (load/plan time), laid out kernel-major in flat
//! contiguous arrays: per output channel a half-open range of pack
//! entries, each entry naming its input channel, its tap-offset slice,
//! and its value slice. The executors then just walk slices — no
//! per-call allocation, no pointer-chasing through nested `Vec`s.
//!
//! The pack fixes the **canonical accumulation order** every executor
//! (scalar reference, pattern-tiled, COO, dense) follows: per output
//! element the chain is `bias`, then taps in ascending `(ic, ky, kx)`
//! order. Sharing one order is what makes cross-format bit-identity
//! (RV092) achievable at all — f32 addition does not commute in
//! rounding.
//!
//! Packs are *derived* data: bit-exact reconstruction against the
//! owning format's `to_dense()` is checked by RV090, and the builders
//! are total (out-of-range entries from corruption-fixture layers are
//! dropped, never panicked on — the executors additionally clip every
//! tap, so even a corrupt pack cannot index out of bounds).

use crate::format::{PatternGroup, UnstructuredSparseConv};
use rtoss_tensor::Tensor;

/// One pattern-pack entry: a single surviving kernel of one `(oc, ic)`
/// pair, pointing at its shared offset slice and its packed values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackEntry {
    /// Input channel the kernel reads.
    pub ic: u32,
    /// Tap count (length of both slices below).
    pub taps: u32,
    /// Start of the tap offsets in [`PatternPack::offsets`].
    pub off: u32,
    /// Start of the tap values in [`PatternPack::values`].
    pub val: u32,
}

/// Flat kernel-major layout of a pattern-compressed layer.
///
/// Built once by [`crate::format::PatternCompressedConv`]; per output
/// channel the entries are sorted by ascending input channel (the
/// canonical order), each sharing its group's offset slice and owning
/// a contiguous value slice.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternPack {
    /// Per output channel, the half-open `[start, end)` range into
    /// `entries`.
    oc_ranges: Vec<(u32, u32)>,
    entries: Vec<PackEntry>,
    /// Concatenated per-group tap offsets as `(ky, kx)`, stored once
    /// per group and shared by every member kernel.
    offsets: Vec<(u8, u8)>,
    /// Kernel-major concatenated tap values.
    values: Vec<f32>,
    /// `Some(t)` iff every packed kernel has exactly `t` taps — true
    /// for legal R-TOSS layers (RV001: uniform entry count per layer).
    /// Lets the executor hoist the arity dispatch out of the tile walk.
    uniform: Option<u32>,
}

impl PatternPack {
    /// Builds the pack from pattern groups. Total: entries whose
    /// output channel is out of range are dropped (corruption-fixture
    /// layers), and offsets wider than `u8` are saturated — execution
    /// clips every tap anyway, and `validate()`/RV010 reject such
    /// layers before they are ever run.
    pub fn build(out_ch: usize, groups: &[PatternGroup]) -> Self {
        // Pass 1: store each group's offsets once and stage every
        // kernel under its output channel.
        // (ic, taps, offset-table start, borrowed kernel values)
        type Staged<'a> = (u32, u32, u32, &'a [f32]);
        let mut offsets = Vec::new();
        let mut staged: Vec<Vec<Staged>> = vec![Vec::new(); out_ch];
        for g in groups {
            let off = offsets.len() as u32;
            offsets.extend(
                g.offsets
                    .iter()
                    .map(|&(ky, kx)| (ky.min(255) as u8, kx.min(255) as u8)),
            );
            for (oc, ic, values) in &g.kernels {
                if *oc >= out_ch {
                    continue;
                }
                let taps = (g.offsets.len() as u32).min(values.len() as u32);
                staged[*oc].push((*ic as u32, taps, off, values.as_slice()));
            }
        }
        // Pass 2: canonical (ic-ascending, stable) order per oc, then
        // lay values down kernel-major in that final order.
        let mut oc_ranges = Vec::with_capacity(out_ch);
        let mut entries = Vec::new();
        let mut values = Vec::new();
        for ocs in &mut staged {
            ocs.sort_by_key(|&(ic, _, _, _)| ic); // stable: ties keep group order
            let start = entries.len() as u32;
            for &(ic, taps, off, vals) in ocs.iter() {
                let val = values.len() as u32;
                values.extend_from_slice(&vals[..taps as usize]);
                entries.push(PackEntry { ic, taps, off, val });
            }
            oc_ranges.push((start, entries.len() as u32));
        }
        let uniform = entries
            .first()
            .map(|e| e.taps)
            .filter(|&t| entries.iter().all(|e| e.taps == t));
        PatternPack {
            oc_ranges,
            entries,
            offsets,
            values,
            uniform,
        }
    }

    /// `Some(arity)` iff every packed kernel stores exactly `arity`
    /// taps (uniform entry count, the RV001 invariant); `None` for an
    /// empty or mixed-arity pack.
    #[inline]
    pub fn uniform_arity(&self) -> Option<usize> {
        self.uniform.map(|t| t as usize)
    }

    /// Iterates one output channel's kernels in canonical order as
    /// `(ic, taps, vals)` slices. Out-of-range `oc` yields nothing.
    #[inline]
    pub fn oc_kernels(&self, oc: usize) -> impl Iterator<Item = (usize, &[(u8, u8)], &[f32])> + '_ {
        let (start, end) = self.oc_ranges.get(oc).copied().unwrap_or((0, 0));
        self.entries[start as usize..end as usize].iter().map(|e| {
            let taps = e.taps as usize;
            (
                e.ic as usize,
                &self.offsets[e.off as usize..e.off as usize + taps],
                &self.values[e.val as usize..e.val as usize + taps],
            )
        })
    }

    /// Total packed kernel count.
    pub fn kernel_count(&self) -> usize {
        self.entries.len()
    }

    /// Total packed value count.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Reconstructs the dense weight tensor from the pack alone —
    /// RV090 bit-compares this against the owning layer's
    /// `to_dense()`. Out-of-bounds coordinates are skipped (total on
    /// corrupt layers).
    pub fn to_dense(&self, out_ch: usize, in_ch: usize, kernel: usize) -> Tensor {
        let mut w = Tensor::zeros(&[out_ch, in_ch, kernel, kernel]);
        let wd = w.as_mut_slice();
        for oc in 0..out_ch {
            for (ic, taps, vals) in self.oc_kernels(oc) {
                if ic >= in_ch {
                    continue;
                }
                for (&(ky, kx), &v) in taps.iter().zip(vals) {
                    let (ky, kx) = (ky as usize, kx as usize);
                    if ky < kernel && kx < kernel {
                        wd[((oc * in_ch + ic) * kernel + ky) * kernel + kx] = v;
                    }
                }
            }
        }
        w
    }

    /// Mutable access to the packed values. Corruption-fixture hook:
    /// lets `rtoss-verify` seed a pack/dense divergence that RV090 and
    /// RV092 must catch. Never use outside tests/fixtures.
    #[doc(hidden)]
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }
}

/// One COO-pack run: consecutive entries of a single `(oc, ic)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CooRun {
    /// Input channel the run reads.
    pub ic: u32,
    /// Start of the run's taps in the pack's tap/value arrays.
    pub start: u32,
    /// One past the run's last tap.
    pub end: u32,
}

/// Flat layout of an unstructured (COO) layer: per output channel a
/// range of `(oc, ic)` runs, each an arbitrary-arity tap list.
///
/// Unlike [`PatternPack`] the run arity is data-dependent, so the
/// executor dispatches through the arity-generic microkernel — that
/// (plus no shared offset slices) is the irregularity penalty the
/// paper attributes to unstructured sparsity.
#[derive(Debug, Clone, PartialEq)]
pub struct CooPack {
    oc_ranges: Vec<(u32, u32)>,
    runs: Vec<CooRun>,
    taps: Vec<(u8, u8)>,
    vals: Vec<f32>,
}

impl CooPack {
    /// Builds the pack from COO entries in their stored order (the
    /// RV013 invariant makes that the canonical `(oc, ic, ky, kx)`
    /// order for valid layers). Total: out-of-range output channels
    /// are dropped.
    pub fn build(out_ch: usize, entries: &[(usize, usize, usize, usize, f32)]) -> Self {
        let mut per_oc: Vec<Vec<(usize, usize, usize, f32)>> = vec![Vec::new(); out_ch];
        for &(oc, ic, ky, kx, v) in entries {
            if oc < out_ch {
                per_oc[oc].push((ic, ky, kx, v));
            }
        }
        let mut oc_ranges = Vec::with_capacity(out_ch);
        let mut runs: Vec<CooRun> = Vec::new();
        let mut taps = Vec::new();
        let mut vals = Vec::new();
        for ocs in &per_oc {
            let start = runs.len() as u32;
            for &(ic, ky, kx, v) in ocs {
                let tap = (ky.min(255) as u8, kx.min(255) as u8);
                let extend = runs.len() as u32 > start
                    && runs
                        .last()
                        .is_some_and(|r| r.ic as usize == ic && r.end as usize == taps.len());
                if extend {
                    if let Some(run) = runs.last_mut() {
                        run.end += 1;
                    }
                } else {
                    runs.push(CooRun {
                        ic: ic as u32,
                        start: taps.len() as u32,
                        end: taps.len() as u32 + 1,
                    });
                }
                taps.push(tap);
                vals.push(v);
            }
            oc_ranges.push((start, runs.len() as u32));
        }
        CooPack {
            oc_ranges,
            runs,
            taps,
            vals,
        }
    }

    /// Iterates one output channel's runs as `(ic, taps, vals)`.
    #[inline]
    pub fn oc_runs(&self, oc: usize) -> impl Iterator<Item = (usize, &[(u8, u8)], &[f32])> + '_ {
        let (start, end) = self.oc_ranges.get(oc).copied().unwrap_or((0, 0));
        self.runs[start as usize..end as usize].iter().map(|r| {
            (
                r.ic as usize,
                &self.taps[r.start as usize..r.end as usize],
                &self.vals[r.start as usize..r.end as usize],
            )
        })
    }

    /// Total packed tap count.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// Reconstructs the dense weight tensor from the pack alone (the
    /// COO side of RV090). Out-of-bounds coordinates are skipped.
    pub fn to_dense(&self, out_ch: usize, in_ch: usize, kernel: usize) -> Tensor {
        let mut w = Tensor::zeros(&[out_ch, in_ch, kernel, kernel]);
        let wd = w.as_mut_slice();
        for oc in 0..out_ch {
            for (ic, taps, vals) in self.oc_runs(oc) {
                if ic >= in_ch {
                    continue;
                }
                for (&(ky, kx), &v) in taps.iter().zip(vals) {
                    let (ky, kx) = (ky as usize, kx as usize);
                    if ky < kernel && kx < kernel {
                        wd[((oc * in_ch + ic) * kernel + ky) * kernel + kx] = v;
                    }
                }
            }
        }
        w
    }

    /// Mutable access to the packed values — the COO twin of
    /// [`PatternPack::values_mut`]. Never use outside tests/fixtures.
    #[doc(hidden)]
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.vals
    }
}

/// Derives the COO form of a pattern-compressed layer in canonical
/// `(oc, ic, ky, kx)` order — the autotuner's COO candidate.
pub fn coo_from_pattern(layer: &crate::format::PatternCompressedConv) -> UnstructuredSparseConv {
    let mut entries = Vec::with_capacity(layer.stored_weights());
    for g in layer.groups() {
        for (oc, ic, values) in &g.kernels {
            for (&(ky, kx), &v) in g.offsets.iter().zip(values) {
                if v != 0.0 {
                    entries.push((*oc, *ic, ky, kx, v));
                }
            }
        }
    }
    entries.sort_by_key(|&(oc, ic, ky, kx, _)| (oc, ic, ky, kx));
    UnstructuredSparseConv::from_entries(
        layer.out_channels(),
        layer.in_channels(),
        layer.kernel_size(),
        layer.stride(),
        layer.padding(),
        entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::PatternCompressedConv;
    use rtoss_core::pattern::canonical_set;
    use rtoss_core::prune3x3::prune_3x3_weights;
    use rtoss_tensor::init;

    fn pruned(k_entries: usize, seed: u64) -> Tensor {
        let mut w = init::uniform(&mut init::rng(seed), &[8, 4, 3, 3], -1.0, 1.0);
        let set = canonical_set(k_entries).unwrap();
        prune_3x3_weights(&mut w, &set).unwrap();
        w
    }

    #[test]
    fn pattern_pack_reconstructs_dense_bitwise() {
        for k_entries in [2usize, 3, 4] {
            let w = pruned(k_entries, 40 + k_entries as u64);
            let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
            let rebuilt = pc.pack().to_dense(8, 4, 3);
            assert_eq!(rebuilt.as_slice(), w.as_slice(), "{k_entries}EP");
        }
    }

    #[test]
    fn pattern_pack_is_ic_sorted_per_oc() {
        let w = pruned(3, 47);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        for oc in 0..8 {
            let ics: Vec<usize> = pc.pack().oc_kernels(oc).map(|(ic, _, _)| ic).collect();
            let mut sorted = ics.clone();
            sorted.sort_unstable();
            assert_eq!(ics, sorted, "oc {oc}");
        }
    }

    #[test]
    fn coo_pack_reconstructs_dense_bitwise_and_runs_are_grouped() {
        let w = pruned(2, 48);
        let un = crate::format::UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        let pack = CooPack::build(8, un.entries());
        assert_eq!(pack.to_dense(8, 4, 3).as_slice(), w.as_slice());
        assert_eq!(pack.tap_count(), un.entries().len());
        for oc in 0..8 {
            let ics: Vec<usize> = pack.oc_runs(oc).map(|(ic, _, _)| ic).collect();
            // Valid layers are (oc, ic, …)-sorted, so runs merge: each
            // ic appears in at most one run per oc.
            let mut dedup = ics.clone();
            dedup.dedup();
            assert_eq!(ics, dedup, "oc {oc}");
        }
    }

    #[test]
    fn builders_total_on_corrupt_coordinates() {
        let groups = vec![PatternGroup {
            offsets: vec![(9, 0), (300, 300)],
            kernels: vec![(99, 7, vec![1.0, 2.0]), (0, 99, vec![3.0, 4.0])],
        }];
        let pack = PatternPack::build(2, &groups);
        assert_eq!(pack.kernel_count(), 1); // oc 99 dropped
        let _ = pack.to_dense(2, 1, 3); // out-of-range ic/taps skipped
        let coo = CooPack::build(2, &[(5, 0, 0, 0, 1.0), (0, 9, 400, 0, 2.0)]);
        assert_eq!(coo.tap_count(), 1);
        let _ = coo.to_dense(2, 1, 3);
    }

    #[test]
    fn coo_from_pattern_is_valid_and_matches_dense() {
        let w = pruned(3, 49);
        let pc = PatternCompressedConv::from_dense(&w, 2, 1).unwrap();
        let un = coo_from_pattern(&pc);
        assert!(un.validate().is_empty());
        assert_eq!(un.to_dense().as_slice(), w.as_slice());
        assert_eq!(un.stride(), 2);
    }
}
