//! Compressed storage formats for pruned convolution weights.

use crate::pack::{CooPack, PatternPack};
use rtoss_tensor::Tensor;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced when building a sparse format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseFormatError {
    /// The dense weight tensor has the wrong rank or spatial extent.
    BadShape {
        /// Offending shape.
        shape: Vec<usize>,
    },
}

impl fmt::Display for SparseFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseFormatError::BadShape { shape } => {
                write!(
                    f,
                    "expected rank-4 square-kernel conv weights, got {shape:?}"
                )
            }
        }
    }
}

impl Error for SparseFormatError {}

/// One structural-invariant violation found by a format `validate()`.
///
/// `code` is a stable diagnostic identifier from the RV0xx registry
/// (see DESIGN.md §9); the `rtoss-verify` crate wraps these into full
/// [`Diagnostic`]s with location context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatViolation {
    /// Stable diagnostic code (e.g. `"RV010"`).
    pub code: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl FormatViolation {
    fn new(code: &'static str, message: String) -> Self {
        FormatViolation { code, message }
    }
}

impl fmt::Display for FormatViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// One group of kernels sharing the same non-zero pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternGroup {
    /// The shared non-zero cells as `(ky, kx)` offsets, row-major.
    pub offsets: Vec<(usize, usize)>,
    /// Member kernels: `(out_channel, in_channel, values)` where
    /// `values[i]` belongs to `offsets[i]`.
    pub kernels: Vec<(usize, usize, Vec<f32>)>,
}

/// A pruned conv layer stored grouped by kernel pattern.
///
/// Kernels that are entirely zero are dropped (they cost nothing at
/// inference — the "skipping" the paper's §II.B describes).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternCompressedConv {
    out_ch: usize,
    in_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    groups: Vec<PatternGroup>,
    dense_weights: usize,
    stored_weights: usize,
    /// Kernel-major execution layout, derived from `groups` at
    /// construction so no forward call pays the indexing cost.
    pack: PatternPack,
}

impl PatternCompressedConv {
    /// Builds the compressed form from a (masked) dense weight
    /// `(O, I, k, k)`. Zero cells are dropped; kernels are grouped by
    /// their surviving-cell pattern.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::BadShape`] if the weight is not
    /// rank 4 with square kernels.
    pub fn from_dense(w: &Tensor, stride: usize, pad: usize) -> Result<Self, SparseFormatError> {
        let shape = w.shape();
        if shape.len() != 4 || shape[2] != shape[3] {
            return Err(SparseFormatError::BadShape {
                shape: shape.to_vec(),
            });
        }
        let (o, i, k) = (shape[0], shape[1], shape[2]);
        let kk = k * k;
        let wd = w.as_slice();
        // Group kernels by their non-zero bitmask.
        let mut by_pattern: BTreeMap<u64, PatternGroup> = BTreeMap::new();
        let mut stored = 0usize;
        for oc in 0..o {
            for ic in 0..i {
                let base = (oc * i + ic) * kk;
                let cells = &wd[base..base + kk];
                let mut bits = 0u64;
                for (ci, &v) in cells.iter().enumerate() {
                    if v != 0.0 {
                        bits |= 1 << ci;
                    }
                }
                if bits == 0 {
                    continue; // fully pruned kernel: skipped entirely
                }
                let entry = by_pattern.entry(bits).or_insert_with(|| PatternGroup {
                    offsets: (0..kk)
                        .filter(|ci| bits & (1 << ci) != 0)
                        .map(|ci| (ci / k, ci % k))
                        .collect(),
                    kernels: Vec::new(),
                });
                let values: Vec<f32> = entry
                    .offsets
                    .iter()
                    .map(|&(ky, kx)| cells[ky * k + kx])
                    .collect();
                stored += values.len();
                entry.kernels.push((oc, ic, values));
            }
        }
        let groups: Vec<PatternGroup> = by_pattern.into_values().collect();
        let pack = PatternPack::build(o, &groups);
        Ok(PatternCompressedConv {
            out_ch: o,
            in_ch: i,
            kernel: k,
            stride,
            pad,
            groups,
            dense_weights: o * i * kk,
            stored_weights: stored,
            pack,
        })
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Kernel extent.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding.
    pub fn padding(&self) -> usize {
        self.pad
    }

    /// The pattern groups.
    pub fn groups(&self) -> &[PatternGroup] {
        &self.groups
    }

    /// Number of distinct patterns in use.
    pub fn pattern_count(&self) -> usize {
        self.groups.len()
    }

    /// Stored (non-zero) weight count.
    pub fn stored_weights(&self) -> usize {
        self.stored_weights
    }

    /// Dense-to-stored weight ratio (the paper's compression metric).
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_weights == 0 {
            f64::INFINITY
        } else {
            self.dense_weights as f64 / self.stored_weights as f64
        }
    }

    /// Assembles a compressed layer directly from pattern groups
    /// *without* checking any invariant.
    ///
    /// This is the deserialization/testing escape hatch paired with
    /// [`PatternCompressedConv::validate`]: [`from_dense`] is valid by
    /// construction, but artifacts loaded from outside the process (or
    /// corruption fixtures in tests) are not. Always run `validate()`
    /// on a layer built this way before executing it.
    ///
    /// [`from_dense`]: PatternCompressedConv::from_dense
    pub fn from_parts(
        out_ch: usize,
        in_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: Vec<PatternGroup>,
    ) -> Self {
        let stored = groups
            .iter()
            .flat_map(|g| g.kernels.iter())
            .map(|(_, _, v)| v.len())
            .sum();
        let pack = PatternPack::build(out_ch, &groups);
        PatternCompressedConv {
            out_ch,
            in_ch,
            kernel,
            stride,
            pad,
            groups,
            dense_weights: out_ch * in_ch * kernel * kernel,
            stored_weights: stored,
            pack,
        }
    }

    /// The kernel-major execution pack derived from the groups at
    /// construction. RV090 proves it reconstructs `to_dense()`
    /// bit-exactly.
    pub fn pack(&self) -> &PatternPack {
        &self.pack
    }

    /// Mutable pack access — corruption-fixture hook for the RV090/
    /// RV092 seeded fixtures. Never use outside tests/fixtures: a
    /// mutated pack no longer agrees with the groups it was derived
    /// from.
    #[doc(hidden)]
    pub fn pack_mut(&mut self) -> &mut PatternPack {
        &mut self.pack
    }

    /// Checks every structural invariant the sparse executor relies on,
    /// returning one [`FormatViolation`] per breach (empty = valid).
    ///
    /// Invariants, with their RV0xx codes:
    /// - **RV010** — group offsets are non-empty, strictly increasing in
    ///   row-major `(ky, kx)` order, in-bounds for the kernel extent,
    ///   and no two groups share the same pattern;
    /// - **RV011** — kernel coordinates `(oc, ic)` are in-bounds, appear
    ///   at most once across all groups, and each kernel carries exactly
    ///   one value per offset;
    /// - **RV012** — `stored_weights` equals the values actually held
    ///   and no stored value is zero (zeros must be *dropped*, or the
    ///   compression ratio lies).
    pub fn validate(&self) -> Vec<FormatViolation> {
        let mut out = Vec::new();
        let k = self.kernel;
        let mut seen_patterns = std::collections::BTreeSet::new();
        let mut seen_kernels = std::collections::BTreeSet::new();
        let mut stored = 0usize;
        for (gi, g) in self.groups.iter().enumerate() {
            if g.offsets.is_empty() {
                out.push(FormatViolation::new(
                    "RV010",
                    format!("group {gi}: empty offset pattern"),
                ));
            }
            for w in g.offsets.windows(2) {
                let (a, b) = (w[0], w[1]);
                if a.0 * k + a.1 >= b.0 * k + b.1 {
                    out.push(FormatViolation::new(
                        "RV010",
                        format!("group {gi}: offsets not strictly row-major sorted at {a:?},{b:?}"),
                    ));
                }
            }
            for &(ky, kx) in &g.offsets {
                if ky >= k || kx >= k {
                    out.push(FormatViolation::new(
                        "RV010",
                        format!("group {gi}: offset ({ky},{kx}) out of bounds for kernel {k}"),
                    ));
                }
            }
            if !seen_patterns.insert(g.offsets.clone()) {
                out.push(FormatViolation::new(
                    "RV010",
                    format!("group {gi}: duplicate pattern {:?}", g.offsets),
                ));
            }
            for &(oc, ic, ref values) in &g.kernels {
                if oc >= self.out_ch || ic >= self.in_ch {
                    out.push(FormatViolation::new(
                        "RV011",
                        format!(
                            "group {gi}: kernel ({oc},{ic}) out of bounds for {}x{} layer",
                            self.out_ch, self.in_ch
                        ),
                    ));
                }
                if !seen_kernels.insert((oc, ic)) {
                    out.push(FormatViolation::new(
                        "RV011",
                        format!("kernel ({oc},{ic}) stored more than once"),
                    ));
                }
                if values.len() != g.offsets.len() {
                    out.push(FormatViolation::new(
                        "RV011",
                        format!(
                            "group {gi}: kernel ({oc},{ic}) has {} values for {} offsets",
                            values.len(),
                            g.offsets.len()
                        ),
                    ));
                }
                if values.contains(&0.0) {
                    out.push(FormatViolation::new(
                        "RV012",
                        format!("group {gi}: kernel ({oc},{ic}) stores an explicit zero"),
                    ));
                }
                stored += values.len();
            }
        }
        if stored != self.stored_weights {
            out.push(FormatViolation::new(
                "RV012",
                format!(
                    "stored_weights bookkeeping says {} but {} values are held",
                    self.stored_weights, stored
                ),
            ));
        }
        if self.dense_weights != self.out_ch * self.in_ch * k * k {
            out.push(FormatViolation::new(
                "RV012",
                format!(
                    "dense_weights bookkeeping says {} for a {}x{}x{k}x{k} layer",
                    self.dense_weights, self.out_ch, self.in_ch
                ),
            ));
        }
        out
    }

    /// Reconstructs the dense weight tensor (for verification).
    pub fn to_dense(&self) -> Tensor {
        let k = self.kernel;
        let mut w = Tensor::zeros(&[self.out_ch, self.in_ch, k, k]);
        let wd = w.as_mut_slice();
        for g in &self.groups {
            for (oc, ic, values) in &g.kernels {
                let base = (oc * self.in_ch + ic) * k * k;
                for (&(ky, kx), &v) in g.offsets.iter().zip(values.iter()) {
                    wd[base + ky * k + kx] = v;
                }
            }
        }
        w
    }
}

/// A pruned conv layer stored as per-weight COO triples — the
/// *unstructured* layout whose irregular access the paper contrasts
/// against pattern grouping.
#[derive(Debug, Clone, PartialEq)]
pub struct UnstructuredSparseConv {
    out_ch: usize,
    in_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    /// `(oc, ic, ky, kx, value)` for every surviving weight.
    entries: Vec<(usize, usize, usize, usize, f32)>,
    dense_weights: usize,
    /// Per-output-channel run layout, derived from `entries` at
    /// construction (see [`CooPack`]).
    pack: CooPack,
}

impl UnstructuredSparseConv {
    /// Builds the COO form from a (masked) dense weight `(O, I, k, k)`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::BadShape`] if the weight is not
    /// rank 4 with square kernels.
    pub fn from_dense(w: &Tensor, stride: usize, pad: usize) -> Result<Self, SparseFormatError> {
        let shape = w.shape();
        if shape.len() != 4 || shape[2] != shape[3] {
            return Err(SparseFormatError::BadShape {
                shape: shape.to_vec(),
            });
        }
        let (o, i, k) = (shape[0], shape[1], shape[2]);
        let mut entries = Vec::new();
        for oc in 0..o {
            for ic in 0..i {
                for ky in 0..k {
                    for kx in 0..k {
                        let v = w.at(&[oc, ic, ky, kx]);
                        if v != 0.0 {
                            entries.push((oc, ic, ky, kx, v));
                        }
                    }
                }
            }
        }
        let pack = CooPack::build(o, &entries);
        Ok(UnstructuredSparseConv {
            out_ch: o,
            in_ch: i,
            kernel: k,
            stride,
            pad,
            entries,
            dense_weights: o * i * k * k,
            pack,
        })
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Kernel extent.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding.
    pub fn padding(&self) -> usize {
        self.pad
    }

    /// The COO entries.
    pub fn entries(&self) -> &[(usize, usize, usize, usize, f32)] {
        &self.entries
    }

    /// Assembles a COO layer directly from entries *without* checking
    /// any invariant — the deserialization/testing escape hatch paired
    /// with [`UnstructuredSparseConv::validate`].
    pub fn from_entries(
        out_ch: usize,
        in_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        entries: Vec<(usize, usize, usize, usize, f32)>,
    ) -> Self {
        let pack = CooPack::build(out_ch, &entries);
        UnstructuredSparseConv {
            out_ch,
            in_ch,
            kernel,
            stride,
            pad,
            entries,
            dense_weights: out_ch * in_ch * kernel * kernel,
            pack,
        }
    }

    /// The run-layout execution pack derived from the entries at
    /// construction. RV090 proves it reconstructs `to_dense()`
    /// bit-exactly.
    pub fn pack(&self) -> &CooPack {
        &self.pack
    }

    /// Mutable pack access — corruption-fixture hook, the COO twin of
    /// [`PatternCompressedConv::pack_mut`]. Never use outside
    /// tests/fixtures.
    #[doc(hidden)]
    pub fn pack_mut(&mut self) -> &mut CooPack {
        &mut self.pack
    }

    /// Checks the COO invariants the unstructured executor relies on,
    /// returning one [`FormatViolation`] per breach (empty = valid).
    ///
    /// All violations carry code **RV013**: entries must be in-bounds,
    /// strictly sorted in `(oc, ic, ky, kx)` lexicographic order (which
    /// also rules out duplicates), and must not store explicit zeros.
    pub fn validate(&self) -> Vec<FormatViolation> {
        let mut out = Vec::new();
        let k = self.kernel;
        for &(oc, ic, ky, kx, v) in &self.entries {
            if oc >= self.out_ch || ic >= self.in_ch || ky >= k || kx >= k {
                out.push(FormatViolation::new(
                    "RV013",
                    format!(
                        "entry ({oc},{ic},{ky},{kx}) out of bounds for {}x{}x{k}x{k} layer",
                        self.out_ch, self.in_ch
                    ),
                ));
            }
            if v == 0.0 {
                out.push(FormatViolation::new(
                    "RV013",
                    format!("entry ({oc},{ic},{ky},{kx}) stores an explicit zero"),
                ));
            }
        }
        for w in self.entries.windows(2) {
            let a = (w[0].0, w[0].1, w[0].2, w[0].3);
            let b = (w[1].0, w[1].1, w[1].2, w[1].3);
            if a >= b {
                out.push(FormatViolation::new(
                    "RV013",
                    format!("entries not strictly sorted at {a:?},{b:?}"),
                ));
            }
        }
        if self.dense_weights != self.out_ch * self.in_ch * k * k {
            out.push(FormatViolation::new(
                "RV013",
                format!(
                    "dense_weights bookkeeping says {} for a {}x{}x{k}x{k} layer",
                    self.dense_weights, self.out_ch, self.in_ch
                ),
            ));
        }
        out
    }

    /// Reconstructs the dense weight tensor (for verification).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds entries; run
    /// [`UnstructuredSparseConv::validate`] first on untrusted layers.
    pub fn to_dense(&self) -> Tensor {
        let k = self.kernel;
        let mut w = Tensor::zeros(&[self.out_ch, self.in_ch, k, k]);
        let wd = w.as_mut_slice();
        for &(oc, ic, ky, kx, v) in &self.entries {
            wd[((oc * self.in_ch + ic) * k + ky) * k + kx] = v;
        }
        w
    }

    /// Dense-to-stored weight ratio.
    pub fn compression_ratio(&self) -> f64 {
        if self.entries.is_empty() {
            f64::INFINITY
        } else {
            self.dense_weights as f64 / self.entries.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::pattern::canonical_set;
    use rtoss_core::prune3x3::prune_3x3_weights;
    use rtoss_tensor::init;

    fn pruned_weight(k_entries: usize, seed: u64) -> Tensor {
        let mut w = init::uniform(&mut init::rng(seed), &[8, 4, 3, 3], -1.0, 1.0);
        let set = canonical_set(k_entries).unwrap();
        prune_3x3_weights(&mut w, &set).unwrap();
        w
    }

    #[test]
    fn round_trip_to_dense() {
        let w = pruned_weight(3, 1);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        assert_eq!(pc.to_dense(), w);
    }

    #[test]
    fn compression_matches_entry_count() {
        let w = pruned_weight(2, 2);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        assert!((pc.compression_ratio() - 4.5).abs() < 1e-9);
        assert_eq!(pc.stored_weights(), 8 * 4 * 2);
    }

    #[test]
    fn pattern_count_bounded_by_working_set() {
        let w = pruned_weight(2, 3);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        // At most the 12 canonical 2EP patterns can appear.
        assert!(pc.pattern_count() <= 12, "{} patterns", pc.pattern_count());
        assert!(pc.pattern_count() >= 2);
    }

    #[test]
    fn fully_zero_kernels_are_dropped() {
        let mut w = pruned_weight(2, 4);
        // Zero out kernel (0, *) entirely.
        for ic in 0..4 {
            for c in 0..9 {
                let base = ic * 9;
                w.as_mut_slice()[base + c] = 0.0;
            }
        }
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        for g in pc.groups() {
            for k in &g.kernels {
                assert_ne!(k.0, 0, "zeroed kernel (0, {}) still stored", k.1);
            }
        }
        assert_eq!(pc.to_dense(), w);
    }

    #[test]
    fn unstructured_preserves_every_nonzero() {
        let w = pruned_weight(3, 5);
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        assert_eq!(un.entries().len(), w.numel() - w.count_zeros());
        for &(oc, ic, ky, kx, v) in un.entries() {
            assert_eq!(w.at(&[oc, ic, ky, kx]), v);
        }
    }

    #[test]
    fn bad_shapes_rejected() {
        let w = Tensor::zeros(&[2, 2, 3, 5]);
        assert!(PatternCompressedConv::from_dense(&w, 1, 1).is_err());
        assert!(UnstructuredSparseConv::from_dense(&w, 1, 1).is_err());
        let w = Tensor::zeros(&[2, 2, 3]);
        assert!(PatternCompressedConv::from_dense(&w, 1, 1).is_err());
    }

    #[test]
    fn validate_passes_on_from_dense_output() {
        let w = pruned_weight(3, 7);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        assert!(pc.validate().is_empty());
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        assert!(un.validate().is_empty());
    }

    #[test]
    fn validate_catches_seeded_corruption() {
        let codes = |vs: &[FormatViolation]| {
            vs.iter()
                .map(|v| v.code)
                .collect::<std::collections::BTreeSet<_>>()
        };
        // Unsorted + out-of-bounds offsets (RV010), duplicate kernel and
        // value-count mismatch (RV011), stored zero (RV012).
        let bad = PatternCompressedConv::from_parts(
            2,
            1,
            3,
            1,
            1,
            vec![
                PatternGroup {
                    offsets: vec![(1, 1), (0, 0), (3, 0)],
                    kernels: vec![(0, 0, vec![1.0, 2.0, 3.0]), (0, 0, vec![1.0, 0.0, 3.0])],
                },
                PatternGroup {
                    offsets: vec![(0, 1)],
                    kernels: vec![(5, 0, vec![1.0, 2.0])],
                },
            ],
        );
        let vs = bad.validate();
        let cs = codes(&vs);
        assert!(cs.contains("RV010"), "{vs:?}");
        assert!(cs.contains("RV011"), "{vs:?}");
        assert!(cs.contains("RV012"), "{vs:?}");

        // COO: out-of-bounds, unsorted duplicate, explicit zero (RV013).
        let bad = UnstructuredSparseConv::from_entries(
            2,
            2,
            3,
            1,
            1,
            vec![(0, 0, 1, 1, 2.0), (0, 0, 1, 1, 0.0), (9, 0, 0, 0, 1.0)],
        );
        let vs = bad.validate();
        assert!(codes(&vs).contains("RV013"), "{vs:?}");
        assert!(vs.len() >= 3, "{vs:?}");
    }

    #[test]
    fn unstructured_to_dense_round_trips() {
        let w = pruned_weight(2, 8);
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        assert_eq!(un.to_dense(), w);
    }

    #[test]
    fn one_by_one_kernels_supported() {
        let mut w = init::uniform(&mut init::rng(6), &[6, 6, 1, 1], -1.0, 1.0);
        // Manually sparsify.
        for i in (0..36).step_by(3) {
            w.as_mut_slice()[i] = 0.0;
        }
        let pc = PatternCompressedConv::from_dense(&w, 1, 0).unwrap();
        assert_eq!(pc.to_dense(), w);
    }
}
