//! Whole-model sparse inference engine.
//!
//! Compiles a pruned [`Graph`](rtoss_nn::Graph) into a standalone
//! executor whose convolution layers run through the pattern-grouped
//! sparse path ([`exec::conv2d_pattern_sparse`](crate::exec)) with
//! batch-norm folded into per-channel scale/shift. This is the
//! "deployment" artefact of the paper's pipeline: the model a Jetson
//! would actually run after R-TOSS pruning, and the source of the
//! end-to-end measured speedups in the `fig6` harness.

use crate::exec::conv2d_pattern_sparse_with;
use crate::format::{FormatViolation, PatternCompressedConv};
use crate::plan::{ExecutionPlan, PlanSummary};
use rtoss_nn::layers::ActivationKind;
use rtoss_nn::{Graph, NodeOp};
use rtoss_tensor::exec::ExecConfig;
use rtoss_tensor::{ops, Tensor, TensorError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, PoisonError, RwLock};

/// Error produced when compiling or running a [`SparseModel`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SparseModelError {
    /// The graph contains a layer kind the engine cannot compile.
    Unsupported {
        /// Node name.
        node: String,
        /// Description of the unsupported construct.
        msg: String,
    },
    /// A tensor operation failed at inference time.
    Tensor(TensorError),
}

impl fmt::Display for SparseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseModelError::Unsupported { node, msg } => {
                write!(f, "cannot compile node {node:?}: {msg}")
            }
            SparseModelError::Tensor(e) => write!(f, "sparse inference failed: {e}"),
        }
    }
}

impl Error for SparseModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SparseModelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SparseModelError {
    fn from(e: TensorError) -> Self {
        SparseModelError::Tensor(e)
    }
}

/// One compiled operation of the sparse engine.
#[derive(Debug)]
pub(crate) enum SparseOp {
    Input,
    /// Sparse convolution with optional folded per-channel scale/shift
    /// (from a following BatchNorm) — bias is pre-folded too.
    Conv {
        layer: PatternCompressedConv,
        bias: Vec<f32>,
    },
    /// Per-channel affine `y = scale_c * x + shift_c` (unfused BN).
    ChannelAffine {
        scale: Vec<f32>,
        shift: Vec<f32>,
    },
    Activation(ActivationKind),
    MaxPool {
        k: usize,
        stride: usize,
        pad: usize,
    },
    Upsample2x,
    Add,
    Concat,
}

/// A node of the compiled engine.
#[derive(Debug)]
pub(crate) struct SparseNode {
    /// Source graph node name, carried through compilation so per-layer
    /// trace spans and profiles attribute time to recognizable layers.
    pub(crate) name: String,
    pub(crate) op: SparseOp,
    pub(crate) inputs: Vec<usize>,
}

impl SparseNode {
    pub(crate) fn kind(&self) -> &'static str {
        match &self.op {
            SparseOp::Input => "input",
            SparseOp::Conv { .. } => "conv",
            SparseOp::ChannelAffine { .. } => "channel_affine",
            SparseOp::Activation(_) => "activation",
            SparseOp::MaxPool { .. } => "maxpool",
            SparseOp::Upsample2x => "upsample2x",
            SparseOp::Add => "add",
            SparseOp::Concat => "concat",
        }
    }

    /// Opens the `layer:<name>` trace span for executing this node.
    /// Name and args are built lazily — nothing allocates unless the
    /// span is actually recorded.
    fn trace_span(&self, idx: usize, exec: &ExecConfig) -> rtoss_obs::SpanGuard {
        rtoss_obs::span_lazy(|| {
            use rtoss_obs::ArgValue;
            let mut args = vec![
                ("node", ArgValue::U64(idx as u64)),
                ("kind", ArgValue::Static(self.kind())),
                ("threads", ArgValue::U64(exec.threads as u64)),
            ];
            if let SparseOp::Conv { layer, .. } = &self.op {
                args.push(("oc", ArgValue::U64(layer.out_channels() as u64)));
                args.push(("ic", ArgValue::U64(layer.in_channels() as u64)));
                args.push(("k", ArgValue::U64(layer.kernel_size() as u64)));
                args.push(("format", ArgValue::Static("pattern")));
                args.push(("nnz", ArgValue::U64(layer.stored_weights() as u64)));
            }
            (format!("layer:{}", self.name), args)
        })
    }
}

/// A compiled sparse inference engine for a pruned detector graph.
///
/// # Example
///
/// ```
/// use rtoss_sparse::SparseModel;
/// use rtoss_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut model = rtoss_models::yolov5s_twin(4, 2, 1)?;
/// use rtoss_core::{EntryPattern, Pruner, RTossPruner};
/// RTossPruner::new(EntryPattern::Two).prune_graph(&mut model.graph)?;
/// let engine = SparseModel::compile(&model.graph)?;
/// let x = Tensor::zeros(&[1, 3, 64, 64]);
/// let sparse_out = engine.forward(&x)?;
/// let dense_out = model.graph.forward(&x)?;
/// assert_eq!(sparse_out[0].shape(), dense_out[0].shape());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SparseModel {
    /// `Arc`ed (and never mutated after compile) so planned runs can
    /// hand `'static` tasks referencing the nodes to the worker pool.
    pub(crate) nodes: Arc<Vec<SparseNode>>,
    pub(crate) outputs: Vec<usize>,
    /// Per-node consumer count: occurrences in later nodes' input lists
    /// plus occurrences in the output list. Drives last-use activation
    /// dropping in the interpreter and liveness analysis in the plan
    /// compiler.
    pub(crate) uses: Vec<usize>,
    stored_weights: usize,
    dense_weights: usize,
    exec: ExecConfig,
    /// When true (the default), `forward*` compiles the input shape to a
    /// cached [`ExecutionPlan`] and runs that; when false, the retained
    /// per-call interpreter runs instead.
    planning: bool,
    /// Compiled plans keyed by input shape. A batched forward with a new
    /// batch size plans once, then reuses the plan for every later call
    /// with that shape — the serving layer's micro-batch worker never
    /// re-plans on the hot path.
    plans: RwLock<HashMap<Vec<usize>, Arc<ExecutionPlan>>>,
}

impl SparseModel {
    /// Compiles a (pruned or dense) graph into the sparse engine.
    ///
    /// Batch-norm layers are converted to channel affines using their
    /// *running* statistics, so the engine reproduces the graph's
    /// evaluation-mode behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`SparseModelError::Unsupported`] for layer kinds outside
    /// the detector vocabulary (conv/BN/activation/pool/upsample/
    /// add/concat).
    pub fn compile(graph: &Graph) -> Result<Self, SparseModelError> {
        let mut nodes = Vec::with_capacity(graph.len());
        let mut stored = 0usize;
        let mut dense = 0usize;
        for n in graph.nodes() {
            let op = match &n.op {
                NodeOp::Input => SparseOp::Input,
                NodeOp::Add => SparseOp::Add,
                NodeOp::Concat => SparseOp::Concat,
                NodeOp::Layer(l) => {
                    if let Some(conv) = l.as_conv2d() {
                        let w = &conv.weight().value;
                        let layer =
                            PatternCompressedConv::from_dense(w, conv.stride(), conv.padding())
                                .map_err(|e| SparseModelError::Unsupported {
                                    node: n.name.clone(),
                                    msg: e.to_string(),
                                })?;
                        stored += layer.stored_weights();
                        dense += w.numel();
                        SparseOp::Conv {
                            layer,
                            bias: conv.bias().value.as_slice().to_vec(),
                        }
                    } else if let Some(bn) = l.as_batchnorm() {
                        let (mean, var) = bn.running_stats();
                        let gamma = bn.gamma().value.as_slice();
                        let beta = bn.beta().value.as_slice();
                        let mut scale = Vec::with_capacity(gamma.len());
                        let mut shift = Vec::with_capacity(gamma.len());
                        for c in 0..gamma.len() {
                            let inv_std = 1.0 / (var[c] + 1e-5).sqrt();
                            scale.push(gamma[c] * inv_std);
                            shift.push(beta[c] - gamma[c] * mean[c] * inv_std);
                        }
                        SparseOp::ChannelAffine { scale, shift }
                    } else if let Some(act) = activation_kind_of(l.as_ref()) {
                        SparseOp::Activation(act)
                    } else if let Some((k, stride, pad)) = pool_params_of(l.as_ref()) {
                        SparseOp::MaxPool { k, stride, pad }
                    } else if l.as_upsample().is_some() {
                        SparseOp::Upsample2x
                    } else {
                        return Err(SparseModelError::Unsupported {
                            node: n.name.clone(),
                            msg: format!("layer kind {:?}", l.kind()),
                        });
                    }
                }
                // NodeOp is #[non_exhaustive]: future ops are rejected.
                _ => {
                    return Err(SparseModelError::Unsupported {
                        node: n.name.clone(),
                        msg: "unknown graph op".into(),
                    })
                }
            };
            nodes.push(SparseNode {
                name: n.name.clone(),
                op,
                inputs: n.inputs.clone(),
            });
        }
        let outputs = graph.outputs().to_vec();
        let mut uses = vec![0usize; nodes.len()];
        for node in &nodes {
            for &j in &node.inputs {
                if let Some(u) = uses.get_mut(j) {
                    *u += 1;
                }
            }
        }
        for &o in &outputs {
            if let Some(u) = uses.get_mut(o) {
                *u += 1;
            }
        }
        Ok(SparseModel {
            nodes: Arc::new(nodes),
            outputs,
            uses,
            stored_weights: stored,
            dense_weights: dense,
            exec: ExecConfig::default(),
            planning: true,
            plans: RwLock::new(HashMap::new()),
        })
    }

    /// The engine's execution configuration (thread count).
    pub fn exec_config(&self) -> ExecConfig {
        self.exec
    }

    /// Sets the execution configuration used by [`forward`](Self::forward)
    /// and [`forward_batch`](Self::forward_batch).
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// Builder-style [`set_exec_config`](Self::set_exec_config).
    #[must_use]
    pub fn with_exec_config(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Whether `forward*` compiles-and-caches an [`ExecutionPlan`]
    /// (true, the default) or runs the per-call interpreter.
    pub fn planning(&self) -> bool {
        self.planning
    }

    /// Enables or disables plan-compiled execution (`--no-plan` in the
    /// benches sets this to false to A/B against the interpreter).
    pub fn set_planning(&mut self, on: bool) {
        self.planning = on;
    }

    /// Builder-style [`set_planning`](Self::set_planning).
    #[must_use]
    pub fn with_planning(mut self, on: bool) -> Self {
        self.planning = on;
        self
    }

    /// The compiled plan for `input_shape`, compiling and caching it on
    /// first use. Plans are keyed by the full input shape, so distinct
    /// batch sizes get distinct plans and repeat calls are a read-lock
    /// plus a map lookup.
    ///
    /// # Errors
    ///
    /// Returns an error when the shape cannot be planned (rank/channel
    /// mismatches surface here, once, instead of on every forward).
    pub fn plan_for(&self, input_shape: &[usize]) -> Result<Arc<ExecutionPlan>, SparseModelError> {
        {
            let plans = self.plans.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(plan) = plans.get(input_shape) {
                return Ok(Arc::clone(plan));
            }
        }
        let plan = Arc::new(ExecutionPlan::compile(self, input_shape)?);
        let mut plans = self.plans.write().unwrap_or_else(PoisonError::into_inner);
        // A racing caller may have planned the same shape; keep the
        // first so Arc identity is stable for observers.
        Ok(Arc::clone(
            plans
                .entry(input_shape.to_vec())
                .or_insert_with(|| Arc::clone(&plan)),
        ))
    }

    /// Summary of the compiled plan for `input_shape` (schedule, arena
    /// assignment, memory accounting) — the artifact `rtoss-verify`'s
    /// RV05x checks inspect.
    ///
    /// # Errors
    ///
    /// Same conditions as [`plan_for`](Self::plan_for).
    pub fn plan_summary(&self, input_shape: &[usize]) -> Result<PlanSummary, SparseModelError> {
        Ok(self.plan_for(input_shape)?.summary_for(self))
    }

    /// Arena bytes of the largest plan compiled so far, or `None` when
    /// no forward has been planned yet. This is the value exported as
    /// the `peak_activation_bytes` gauge by the serving metrics.
    pub fn peak_activation_bytes(&self) -> Option<u64> {
        let plans = self.plans.read().unwrap_or_else(PoisonError::into_inner);
        plans.values().map(|p| p.arena_bytes()).max()
    }

    /// Conv-weight compression achieved by the compiled engine.
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_weights == 0 {
            1.0
        } else {
            self.dense_weights as f64 / self.stored_weights as f64
        }
    }

    /// Stored (non-zero) conv weights.
    pub fn stored_weights(&self) -> usize {
        self.stored_weights
    }

    /// Per-node `(kind, input node indices)` in node order — the
    /// engine's data-dependency skeleton. Exposed so `rtoss-verify`'s
    /// RV070 happens-before analysis can reconstruct, independently of
    /// the plan compiler, which operand edges a compiled plan *must*
    /// have, and flag any the plan dropped.
    pub fn node_deps(&self) -> Vec<(&'static str, Vec<usize>)> {
        self.nodes
            .iter()
            .map(|n| (n.kind(), n.inputs.clone()))
            .collect()
    }

    /// Declared output node indices, in output order.
    pub fn output_nodes(&self) -> &[usize] {
        &self.outputs
    }

    /// Per-node consumer count (occurrences in later nodes' input lists
    /// plus occurrences in the output list) — what the plan compiler's
    /// sole-consumer fusion test reads, exposed so verification can
    /// re-derive the same fusion decisions.
    pub fn node_uses(&self) -> &[usize] {
        &self.uses
    }

    /// The compiled sparse convolution layers, as `(node_index, layer)`
    /// pairs in topological order. Exposed so `rtoss-verify` can check
    /// the exact artifacts the engine will execute.
    pub fn conv_layers(&self) -> Vec<(usize, &PatternCompressedConv)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match &n.op {
                SparseOp::Conv { layer, .. } => Some((i, layer)),
                _ => None,
            })
            .collect()
    }

    /// Validates every compiled conv layer's storage invariants
    /// (see [`PatternCompressedConv::validate`]), plus the engine's
    /// weight bookkeeping, returning all violations found (empty =
    /// valid). This is the opt-in pre-flight check the serving layer
    /// and benchmark harnesses run before trusting an engine.
    pub fn verify(&self) -> Vec<FormatViolation> {
        let mut out = Vec::new();
        let mut stored = 0usize;
        for (i, layer) in self.conv_layers() {
            for mut v in layer.validate() {
                v.message = format!("node {i}: {}", v.message);
                out.push(v);
            }
            stored += layer.stored_weights();
        }
        if stored != self.stored_weights {
            out.push(FormatViolation {
                code: "RV012",
                message: format!(
                    "engine stored_weights bookkeeping says {} but layers hold {stored}",
                    self.stored_weights
                ),
            });
        }
        out
    }

    /// Runs the engine, returning the declared outputs.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches at any node.
    pub fn forward(&self, input: &Tensor) -> Result<Vec<Tensor>, SparseModelError> {
        self.forward_with(input, &self.exec)
    }

    /// [`forward`](Self::forward) with an explicit [`ExecConfig`],
    /// overriding the engine's stored configuration for this call.
    /// Results are bit-identical for every thread count, and the
    /// plan-compiled path is bit-identical to the interpreter.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches at any node.
    pub fn forward_with(
        &self,
        input: &Tensor,
        exec: &ExecConfig,
    ) -> Result<Vec<Tensor>, SparseModelError> {
        if self.planning {
            self.plan_for(input.shape())?.run(self, input, exec)
        } else {
            self.forward_interpreted_with(input, exec)
        }
    }

    /// The per-call graph interpreter: walks the node list, computing
    /// one freshly allocated tensor per node. Kept as the reference
    /// semantics the compiled plan must match bit-for-bit, and as the
    /// fallback behind `--no-plan`. Activations are dropped as soon as
    /// their last consumer has run, so even the interpreter's peak
    /// memory tracks liveness rather than the whole graph.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches at any node.
    pub fn forward_interpreted_with(
        &self,
        input: &Tensor,
        exec: &ExecConfig,
    ) -> Result<Vec<Tensor>, SparseModelError> {
        let mut remaining = self.uses.clone();
        let mut acts: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node.op, SparseOp::Input) {
                // Input nodes store nothing: consumers read the caller's
                // tensor directly instead of a per-call clone.
                continue;
            }
            let get = |j: usize| -> Result<&Tensor, SparseModelError> {
                if let Some(SparseNode {
                    op: SparseOp::Input,
                    ..
                }) = self.nodes.get(j)
                {
                    return Ok(input);
                }
                acts.get(j)
                    .and_then(Option::as_ref)
                    .ok_or(SparseModelError::Tensor(TensorError::Invalid {
                        op: "sparse_forward",
                        msg: format!("node {j} not yet computed"),
                    }))
            };
            let _span = node.trace_span(i, exec);
            let out = match &node.op {
                // Handled above; nothing is stored for inputs.
                SparseOp::Input => continue,
                SparseOp::Conv { layer, bias } => {
                    conv2d_pattern_sparse_with(get(node.inputs[0])?, layer, Some(bias), exec)?
                }
                SparseOp::ChannelAffine { scale, shift } => {
                    channel_affine(get(node.inputs[0])?, scale, shift)?
                }
                SparseOp::Activation(kind) => {
                    let k = *kind;
                    get(node.inputs[0])?.map(move |v| eval_act(k, v))
                }
                SparseOp::MaxPool { k, stride, pad } => {
                    ops::maxpool2d(get(node.inputs[0])?, *k, *stride, *pad)?.output
                }
                SparseOp::Upsample2x => ops::upsample_nearest2x(get(node.inputs[0])?)?,
                SparseOp::Add => get(node.inputs[0])?.add(get(node.inputs[1])?)?,
                SparseOp::Concat => {
                    let xs: Result<Vec<&Tensor>, _> = node.inputs.iter().map(|&j| get(j)).collect();
                    concat_channels(&xs?)?
                }
            };
            acts[i] = Some(out);
            // Last-use drop: a consumed activation whose remaining uses
            // hit zero is freed now, not at the end of the pass.
            for &j in &node.inputs {
                if let Some(r) = remaining.get_mut(j) {
                    *r = r.saturating_sub(1);
                    if *r == 0 {
                        if let Some(a) = acts.get_mut(j) {
                            *a = None;
                        }
                    }
                }
            }
        }
        self.outputs
            .iter()
            .map(|&o| {
                if let Some(SparseNode {
                    op: SparseOp::Input,
                    ..
                }) = self.nodes.get(o)
                {
                    return Ok(input.clone());
                }
                let last = remaining.get_mut(o).map(|r| {
                    *r = r.saturating_sub(1);
                    *r == 0
                });
                let act = acts.get_mut(o);
                let taken = match (last, act) {
                    // Move the tensor out on its final use; clone only
                    // when another output still needs it.
                    (Some(true), Some(a)) => a.take(),
                    (_, Some(a)) => a.clone(),
                    _ => None,
                };
                taken.ok_or_else(|| {
                    SparseModelError::Tensor(TensorError::Invalid {
                        op: "sparse_forward",
                        msg: format!("output node {o} was not computed"),
                    })
                })
            })
            .collect()
    }

    /// Runs several independent requests in one batched pass.
    ///
    /// Inputs are stacked along the batch dimension, pushed through a
    /// single [`forward`](Self::forward) call, and split back into
    /// per-request outputs. Every executor in the engine loops over
    /// batch samples independently, so results are **bit-identical** to
    /// calling `forward` once per request — the serving layer relies on
    /// this to micro-batch without changing answers.
    ///
    /// # Errors
    ///
    /// Returns an error when `inputs` is empty, when the inputs disagree
    /// in non-batch dimensions, or when the forward pass itself fails.
    pub fn forward_batch(&self, inputs: &[&Tensor]) -> Result<Vec<Vec<Tensor>>, SparseModelError> {
        self.forward_batch_with(inputs, &self.exec)
    }

    /// [`forward_batch`](Self::forward_batch) with an explicit
    /// [`ExecConfig`] for the batched pass.
    ///
    /// # Errors
    ///
    /// Same conditions as [`forward_batch`](Self::forward_batch).
    pub fn forward_batch_with(
        &self,
        inputs: &[&Tensor],
        exec: &ExecConfig,
    ) -> Result<Vec<Vec<Tensor>>, SparseModelError> {
        let stacked = ops::batch_stack(inputs)?;
        let outs = self.forward_with(&stacked, exec)?;
        let sizes: Vec<usize> = inputs.iter().map(|x| x.shape()[0]).collect();
        let mut per_request: Vec<Vec<Tensor>> = (0..inputs.len())
            .map(|_| Vec::with_capacity(outs.len()))
            .collect();
        for out in &outs {
            for (req, part) in ops::batch_split(out, &sizes)?.into_iter().enumerate() {
                per_request[req].push(part);
            }
        }
        Ok(per_request)
    }
}

fn activation_kind_of(l: &dyn rtoss_nn::Layer) -> Option<ActivationKind> {
    l.as_activation().map(|a| a.activation_kind())
}

fn pool_params_of(l: &dyn rtoss_nn::Layer) -> Option<(usize, usize, usize)> {
    l.as_maxpool()
        .map(|p| (p.kernel_size(), p.stride(), p.padding()))
}

pub(crate) fn eval_act(kind: ActivationKind, x: f32) -> f32 {
    match epilogue_act(kind) {
        Some(a) => a.eval(x),
        // ActivationKind is #[non_exhaustive]: treat unknown future
        // activations as identity rather than failing at inference.
        None => x,
    }
}

/// Maps a graph activation onto the executor epilogue's activation —
/// the single definition of the arithmetic both the interpreter and
/// the fused plan evaluate. `None` for future kinds the epilogue does
/// not know (the interpreter treats those as identity, so an absorbed
/// `None` epilogue stays bit-identical).
pub(crate) fn epilogue_act(kind: ActivationKind) -> Option<rtoss_tensor::EpilogueAct> {
    use rtoss_tensor::EpilogueAct;
    match kind {
        ActivationKind::Silu => Some(EpilogueAct::Silu),
        ActivationKind::Relu => Some(EpilogueAct::Relu),
        ActivationKind::LeakyRelu => Some(EpilogueAct::LeakyRelu),
        ActivationKind::Sigmoid => Some(EpilogueAct::Sigmoid),
        _ => None,
    }
}

fn channel_affine(x: &Tensor, scale: &[f32], shift: &[f32]) -> Result<Tensor, TensorError> {
    if x.rank() != 4 || x.shape()[1] != scale.len() {
        return Err(TensorError::Invalid {
            op: "channel_affine",
            msg: format!("input {:?} vs {} channels", x.shape(), scale.len()),
        });
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let plane = h * w;
    let mut out = x.as_slice().to_vec();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * plane;
            let (s, b) = (scale[ci], shift[ci]);
            for v in &mut out[base..base + plane] {
                *v = s * *v + b;
            }
        }
    }
    Tensor::from_vec(out, x.shape())
}

fn concat_channels(xs: &[&Tensor]) -> Result<Tensor, TensorError> {
    let first = xs[0];
    let (n, h, w) = (first.shape()[0], first.shape()[2], first.shape()[3]);
    let total_c: usize = xs.iter().map(|x| x.shape()[1]).sum();
    let plane = h * w;
    let mut out = vec![0.0f32; n * total_c * plane];
    for ni in 0..n {
        let mut c_off = 0;
        for x in xs {
            let c = x.shape()[1];
            let src = &x.as_slice()[ni * c * plane..(ni + 1) * c * plane];
            let dst = (ni * total_c + c_off) * plane;
            out[dst..dst + c * plane].copy_from_slice(src);
            c_off += c;
        }
    }
    Tensor::from_vec(out, &[n, total_c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::{EntryPattern, Pruner, RTossPruner};
    use rtoss_models::{retinanet_twin, yolov5s_twin};
    use rtoss_tensor::init;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (i, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!((x - y).abs() < tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn engine_matches_graph_eval_mode_dense() {
        let mut m = yolov5s_twin(4, 2, 77).unwrap();
        // Push some data through in train mode so BN stats are non-trivial.
        let x = init::uniform(&mut init::rng(1), &[2, 3, 64, 64], 0.0, 1.0);
        m.graph.set_training(true);
        m.graph.forward(&x).unwrap();
        m.graph.set_training(false);
        let probe = init::uniform(&mut init::rng(2), &[1, 3, 64, 64], 0.0, 1.0);
        let want = m.graph.forward(&probe).unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap();
        let got = engine.forward(&probe).unwrap();
        for (g, w) in got.iter().zip(want.iter()) {
            assert_close(g, w, 2e-3);
        }
    }

    #[test]
    fn engine_matches_graph_after_pruning() {
        let mut m = retinanet_twin(4, 2, 78).unwrap();
        let x = init::uniform(&mut init::rng(3), &[2, 3, 64, 64], 0.0, 1.0);
        m.graph.set_training(true);
        m.graph.forward(&x).unwrap();
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .unwrap();
        m.graph.set_training(false);
        let probe = init::uniform(&mut init::rng(4), &[1, 3, 64, 64], 0.0, 1.0);
        let want = m.graph.forward(&probe).unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap();
        assert!(engine.compression_ratio() > 3.0);
        let got = engine.forward(&probe).unwrap();
        for (g, w) in got.iter().zip(want.iter()) {
            assert_close(g, w, 2e-3);
        }
    }

    #[test]
    fn forward_batch_is_bit_identical_to_single_requests() {
        let mut m = yolov5s_twin(4, 2, 80).unwrap();
        RTossPruner::new(EntryPattern::Three)
            .prune_graph(&mut m.graph)
            .unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap();
        let xs: Vec<Tensor> = (0..3)
            .map(|i| init::uniform(&mut init::rng(90 + i), &[1, 3, 32, 32], 0.0, 1.0))
            .collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        let batched = engine.forward_batch(&refs).unwrap();
        assert_eq!(batched.len(), xs.len());
        for (x, got) in xs.iter().zip(&batched) {
            let want = engine.forward(x).unwrap();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.shape(), w.shape());
                // Bit-identical, not merely close: serving depends on it.
                assert_eq!(g.as_slice(), w.as_slice());
            }
        }
    }

    #[test]
    fn verify_clean_on_compiled_engine() {
        let mut m = yolov5s_twin(4, 2, 81).unwrap();
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .unwrap();
        let engine = SparseModel::compile(&m.graph).unwrap();
        assert!(!engine.conv_layers().is_empty());
        assert!(engine.verify().is_empty());
    }

    #[test]
    fn compression_reflects_entry_pattern() {
        let build = |entry| {
            let mut m = yolov5s_twin(4, 2, 79).unwrap();
            RTossPruner::new(entry).prune_graph(&mut m.graph).unwrap();
            SparseModel::compile(&m.graph).unwrap().compression_ratio()
        };
        assert!(build(EntryPattern::Two) > build(EntryPattern::Five));
    }
}
