//! # R-TOSS — Real-Time Object detection via Semi-structured Pruning
//!
//! Facade crate for the R-TOSS (DAC 2023) reproduction workspace. It
//! re-exports every member crate so examples and downstream users need a
//! single dependency:
//!
//! - [`tensor`] — dense f32 tensors, conv2d, pooling, matmul
//! - [`nn`] — layers, computational graph, SGD, detection losses
//! - [`models`] — YOLOv5s / RetinaNet specs and buildable scaled twins
//! - [`data`] — synthetic KITTI scenes, IoU/NMS, mAP evaluation
//! - [`core`] — the R-TOSS pruning framework and all baselines
//! - [`sparse`] — pattern-grouped sparse convolution executor
//! - [`hw`] — RTX 2080 Ti / Jetson TX2 latency & energy models
//! - [`serve`] — deadline-aware, micro-batched inference serving
//! - [`fleet`] — sharded multi-replica serving with tenant SLO classes
//!   and accuracy-tier overload degradation
//! - [`obs`] — span tracing, per-layer profiling, metrics exposition
//! - [`verify`] — static invariant checks over every artifact above
//!
//! # Quickstart
//!
//! ```
//! use rtoss::core::{EntryPattern, Pruner, RTossPruner};
//! use rtoss::models::yolov5s_twin;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut model = yolov5s_twin(8, 3, 42)?;
//! let pruner = RTossPruner::new(EntryPattern::Three);
//! let report = pruner.prune_graph(&mut model.graph)?;
//! assert!(report.overall_sparsity() > 0.3);
//! # Ok(())
//! # }
//! ```

pub mod train;

pub use rtoss_core as core;
pub use rtoss_data as data;
pub use rtoss_fleet as fleet;
pub use rtoss_hw as hw;
pub use rtoss_models as models;
pub use rtoss_nn as nn;
pub use rtoss_obs as obs;
pub use rtoss_serve as serve;
pub use rtoss_sparse as sparse;
pub use rtoss_tensor as tensor;
pub use rtoss_verify as verify;
