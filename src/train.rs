//! Training and evaluation harness for the scaled detector twins — the
//! empirical accuracy tier of DESIGN.md §2.
//!
//! Wires together the synthetic KITTI scenes (`rtoss-data`), the twin
//! graphs (`rtoss-models`), the grid detection loss and mask-aware SGD
//! (`rtoss-nn`), and the mAP evaluator — so a pruned twin can be
//! fine-tuned (masks enforced every step) and scored end-to-end.

use rtoss_data::scene::{batch_images, Scene};
use rtoss_data::{evaluate_map, nms, Detection, MapReport};
use rtoss_models::detect::decode_grid;
use rtoss_models::DetectorModel;
use rtoss_nn::loss::{GridLoss, GtBox};
use rtoss_nn::optim::{LrSchedule, Sgd};
use rtoss_tensor::Tensor;
use std::error::Error;

/// Training hyper-parameters for the twins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the dataset.
    pub epochs: usize,
    /// Scenes per SGD step.
    pub batch_size: usize,
    /// Base learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Per-epoch learning-rate schedule applied to `lr`.
    pub schedule: LrSchedule,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 4,
            lr: 0.02,
            momentum: 0.9,
            schedule: LrSchedule::Constant,
        }
    }
}

fn to_gt_boxes(scene: &Scene) -> Vec<GtBox> {
    scene
        .truths
        .iter()
        .map(|t| GtBox {
            cx: t.bbox.cx,
            cy: t.bbox.cy,
            w: t.bbox.w,
            h: t.bbox.h,
            class: t.class,
        })
        .collect()
}

/// Trains (or fine-tunes) a twin on scenes, enforcing any installed
/// pruning masks after every step. Returns the mean loss per epoch.
///
/// # Errors
///
/// Returns an error if the model heads and scenes are inconsistent.
pub fn train_twin(
    model: &mut DetectorModel,
    scenes: &[Scene],
    cfg: &TrainConfig,
) -> Result<Vec<f32>, Box<dyn Error>> {
    if scenes.is_empty() || cfg.batch_size == 0 || cfg.epochs == 0 {
        return Err("training needs scenes, a batch size, and at least one epoch".into());
    }
    let losses_heads: Vec<GridLoss> = model
        .heads
        .iter()
        .map(|h| GridLoss::new(model.num_classes, h.anchor))
        .collect();
    let mut opt = Sgd::new(cfg.lr).momentum(cfg.momentum);
    model.graph.set_training(true);

    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        opt.set_lr(cfg.schedule.lr_at(cfg.lr, epoch).max(1e-6));
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in scenes.chunks(cfg.batch_size) {
            let x = batch_images(chunk);
            let targets: Vec<Vec<GtBox>> = chunk.iter().map(to_gt_boxes).collect();
            let outputs = model.graph.forward(&x)?;
            let mut grads = Vec::with_capacity(outputs.len());
            let mut loss_sum = 0.0f32;
            for (out, gl) in outputs.iter().zip(losses_heads.iter()) {
                let (l, g) = gl.forward(out, &targets)?;
                loss_sum += l;
                grads.push(g);
            }
            model.graph.backward(&grads)?;
            opt.step(&mut model.graph.params_mut());
            model.graph.clear_cache();
            total += loss_sum as f64;
            batches += 1;
        }
        epoch_losses.push((total / batches as f64) as f32);
    }
    Ok(epoch_losses)
}

/// Runs the twin on every scene and evaluates mAP at the given IoU
/// threshold (the paper uses 0.5).
///
/// # Errors
///
/// Returns an error if inference fails on any scene.
pub fn evaluate_twin(
    model: &mut DetectorModel,
    scenes: &[Scene],
    conf_threshold: f32,
    iou_threshold: f32,
) -> Result<MapReport, Box<dyn Error>> {
    model.graph.set_training(false);
    let mut all_dets = Vec::with_capacity(scenes.len());
    let mut all_truths = Vec::with_capacity(scenes.len());
    for scene in scenes {
        all_dets.push(detect_scene(model, scene, conf_threshold)?);
        all_truths.push(scene.truths.clone());
    }
    model.graph.set_training(true);
    Ok(evaluate_map(
        &all_dets,
        &all_truths,
        model.num_classes,
        iou_threshold,
    ))
}

/// Runs the twin on every scene and evaluates mAP per KITTI-style
/// difficulty tier (Easy / Moderate / Hard).
///
/// # Errors
///
/// Returns an error if inference fails on any scene.
pub fn evaluate_twin_tiered(
    model: &mut DetectorModel,
    scenes: &[Scene],
    conf_threshold: f32,
    iou_threshold: f32,
) -> Result<rtoss_data::TieredMapReport, Box<dyn Error>> {
    model.graph.set_training(false);
    let mut all_dets = Vec::with_capacity(scenes.len());
    let mut all_truths = Vec::with_capacity(scenes.len());
    for scene in scenes {
        all_dets.push(detect_scene(model, scene, conf_threshold)?);
        all_truths.push(scene.tiered_truths());
    }
    model.graph.set_training(true);
    Ok(rtoss_data::evaluate_map_tiered(
        &all_dets,
        &all_truths,
        model.num_classes,
        iou_threshold,
    ))
}

/// Runs the twin on one scene, returning NMS-filtered detections.
///
/// # Errors
///
/// Returns an error if inference fails.
pub fn detect_scene(
    model: &mut DetectorModel,
    scene: &Scene,
    conf_threshold: f32,
) -> Result<Vec<Detection>, Box<dyn Error>> {
    let img = &scene.image;
    let x = Tensor::from_vec(
        img.as_slice().to_vec(),
        &[1, img.shape()[0], img.shape()[1], img.shape()[2]],
    )?;
    let outputs = model.graph.forward(&x)?;
    let mut dets = Vec::new();
    for (out, head) in outputs.iter().zip(model.heads.clone().iter()) {
        for d in decode_grid(out, head, model.num_classes, conf_threshold)? {
            dets.push(Detection {
                bbox: rtoss_data::BBox::new(d.cx, d.cy, d.w, d.h),
                score: d.score,
                class: d.class,
            });
        }
    }
    model.graph.clear_cache();
    Ok(nms(&dets, 0.45))
}

/// A transplantable snapshot of a twin's trained state: parameter
/// values plus batch-norm running statistics.
///
/// Because twin construction is deterministic per seed, saving the state
/// of a trained twin and loading it into a freshly built twin of the
/// same configuration is equivalent to cloning — which is how the
/// figure harnesses prune many methods from one shared trained model.
#[derive(Debug, Clone)]
pub struct TwinState {
    params: Vec<Tensor>,
    bn_stats: Vec<(Vec<f32>, Vec<f32>)>,
}

/// Captures the trained state of a twin.
pub fn save_state(model: &mut DetectorModel) -> TwinState {
    let params = model
        .graph
        .params_mut()
        .iter()
        .map(|p| p.value.clone())
        .collect();
    let mut bn_stats = Vec::new();
    for id in 0..model.graph.len() {
        if let Some(bn) = model.graph.batchnorm(id) {
            let (m, v) = bn.running_stats();
            bn_stats.push((m.to_vec(), v.to_vec()));
        }
    }
    TwinState { params, bn_stats }
}

/// Loads a previously saved state into a freshly built twin of the same
/// configuration. Clears any pruning masks (the state is pre-pruning).
///
/// # Errors
///
/// Returns an error if the parameter count or shapes do not match.
pub fn load_state(model: &mut DetectorModel, state: &TwinState) -> Result<(), Box<dyn Error>> {
    let mut params = model.graph.params_mut();
    if params.len() != state.params.len() {
        return Err(format!(
            "state has {} params, model has {}",
            state.params.len(),
            params.len()
        )
        .into());
    }
    for (p, saved) in params.iter_mut().zip(&state.params) {
        if p.value.shape() != saved.shape() {
            return Err(format!(
                "param shape mismatch: {:?} vs {:?}",
                p.value.shape(),
                saved.shape()
            )
            .into());
        }
        p.clear_mask();
        p.value = saved.clone();
        p.zero_grad();
    }
    let mut bi = 0;
    for id in 0..model.graph.len() {
        if let Some(bn) = model.graph.batchnorm_mut(id) {
            let (m, v) = state
                .bn_stats
                .get(bi)
                .ok_or("state has fewer batch-norm entries than the model")?;
            bn.set_running_stats(m, v);
            bi += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_data::scene::{generate_dataset, SceneConfig};
    use rtoss_models::yolov5s_twin;

    #[test]
    fn loss_decreases_over_epochs() {
        let mut m = yolov5s_twin(4, 3, 100).unwrap();
        let scenes = generate_dataset(&SceneConfig::default(), 8, 100);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 4,
            lr: 0.05,
            momentum: 0.9,
            schedule: rtoss_nn::optim::LrSchedule::Constant,
        };
        let losses = train_twin(&mut m, &scenes, &cfg).unwrap();
        assert_eq!(losses.len(), 4);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "losses {losses:?}"
        );
    }

    #[test]
    fn masks_survive_training() {
        use rtoss_core::{EntryPattern, Pruner, RTossPruner};
        let mut m = yolov5s_twin(4, 3, 101).unwrap();
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .unwrap();
        let before = m.conv_sparsity();
        let scenes = generate_dataset(&SceneConfig::default(), 4, 101);
        train_twin(
            &mut m,
            &scenes,
            &TrainConfig {
                epochs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let after = m.conv_sparsity();
        assert!(
            (after - before).abs() < 1e-9,
            "sparsity drifted {before} -> {after}"
        );
    }

    #[test]
    fn evaluate_returns_bounded_map() {
        let mut m = yolov5s_twin(4, 3, 102).unwrap();
        let scenes = generate_dataset(&SceneConfig::default(), 4, 102);
        let r = evaluate_twin(&mut m, &scenes, 0.2, 0.5).unwrap();
        assert!((0.0..=1.0).contains(&r.map));
    }

    #[test]
    fn state_round_trip_reproduces_outputs() {
        let scenes = generate_dataset(&SceneConfig::default(), 4, 104);
        let mut trained = yolov5s_twin(4, 3, 104).unwrap();
        train_twin(
            &mut trained,
            &scenes,
            &TrainConfig {
                epochs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let state = save_state(&mut trained);
        let mut fresh = yolov5s_twin(4, 3, 104).unwrap();
        load_state(&mut fresh, &state).unwrap();
        let d1 = detect_scene(&mut trained, &scenes[0], 0.05).unwrap();
        let d2 = detect_scene(&mut fresh, &scenes[0], 0.05).unwrap();
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.iter().zip(d2.iter()) {
            assert!((a.score - b.score).abs() < 1e-5);
            assert_eq!(a.class, b.class);
        }
    }

    #[test]
    fn load_state_rejects_mismatched_model() {
        let mut a = yolov5s_twin(4, 3, 105).unwrap();
        let state = save_state(&mut a);
        let mut b = yolov5s_twin(8, 3, 105).unwrap();
        assert!(load_state(&mut b, &state).is_err());
    }

    #[test]
    fn rejects_degenerate_config() {
        let mut m = yolov5s_twin(4, 3, 103).unwrap();
        assert!(train_twin(&mut m, &[], &TrainConfig::default()).is_err());
        let scenes = generate_dataset(&SceneConfig::default(), 2, 103);
        let bad = TrainConfig {
            epochs: 0,
            ..Default::default()
        };
        assert!(train_twin(&mut m, &scenes, &bad).is_err());
    }
}
