//! Failure-injection integration tests: degenerate models, data, and
//! configurations must fail loudly (typed errors) or degrade safely —
//! never panic or silently corrupt state.

use rtoss::core::baselines::all_baselines;
use rtoss::core::dfs::group_layers;
use rtoss::core::{EntryPattern, Pruner, RTossPruner};
use rtoss::data::scene::{generate_dataset, SceneConfig};
use rtoss::data::{evaluate_map, nms, BBox, Detection};
use rtoss::nn::layers::Conv2d;
use rtoss::nn::Graph;
use rtoss::sparse::SparseModel;
use rtoss::tensor::Tensor;
use rtoss::train::{train_twin, TrainConfig};

#[test]
fn pruning_a_convless_graph_is_a_safe_noop() {
    let mut g = Graph::new();
    let x = g.add_input("x");
    g.set_outputs(vec![x]).unwrap();
    for p in all_baselines() {
        let r = p.prune_graph(&mut g).expect("no convs is not an error");
        assert_eq!(r.total_weights(), 0);
        assert_eq!(r.compression_ratio(), 1.0);
    }
    let r = RTossPruner::new(EntryPattern::Two)
        .prune_graph(&mut g)
        .unwrap();
    assert_eq!(r.total_weights(), 0);
    assert!(group_layers(&g).is_empty());
}

#[test]
fn pruning_exotic_kernel_sizes_leaves_them_dense() {
    // 7x7 and 5x5 kernels are outside the paper's 3x3/1x1 scope.
    let mut g = Graph::new();
    let x = g.add_input("x");
    let c7 = g
        .add_layer("stem7", Box::new(Conv2d::new(3, 4, 7, 2, 3, 1)), x)
        .unwrap();
    let c5 = g
        .add_layer("mid5", Box::new(Conv2d::new(4, 4, 5, 1, 2, 2)), c7)
        .unwrap();
    g.set_outputs(vec![c5]).unwrap();
    let r = RTossPruner::new(EntryPattern::Two)
        .prune_graph(&mut g)
        .unwrap();
    assert_eq!(r.total_zeros(), 0, "non-3x3/1x1 layers must stay dense");
}

#[test]
fn zero_weight_layers_survive_every_pruner() {
    let build = || {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let conv = Conv2d::from_weight(Tensor::zeros(&[4, 3, 3, 3]), 1, 1);
        let c = g.add_layer("dead", Box::new(conv), x).unwrap();
        g.set_outputs(vec![c]).unwrap();
        g
    };
    for p in all_baselines() {
        let mut g = build();
        p.prune_graph(&mut g)
            .unwrap_or_else(|e| panic!("{} failed on a zero layer: {e}", p.name()));
    }
    let mut g = build();
    RTossPruner::new(EntryPattern::Three)
        .prune_graph(&mut g)
        .unwrap();
    // A zero layer stays runnable.
    let y = g.forward(&Tensor::zeros(&[1, 3, 4, 4])).unwrap();
    assert!(y[0].as_slice().iter().all(|&v| v == 0.0));
}

#[test]
fn sparse_engine_rejects_unsupported_graphs() {
    // A Linear layer is outside the detector vocabulary.
    let mut g = Graph::new();
    let x = g.add_input("x");
    let l = g
        .add_layer("fc", Box::new(rtoss::nn::layers::Linear::new(4, 2, 1)), x)
        .unwrap();
    g.set_outputs(vec![l]).unwrap();
    let err = SparseModel::compile(&g);
    assert!(err.is_err());
    assert!(err.unwrap_err().to_string().contains("fc"));
}

#[test]
fn training_on_scenes_without_objects_is_stable() {
    let cfg = SceneConfig {
        min_objects: 0,
        max_objects: 0,
        ..SceneConfig::default()
    };
    let scenes = generate_dataset(&cfg, 4, 600);
    assert!(scenes.iter().all(|s| s.truths.is_empty()));
    let mut m = rtoss::models::yolov5s_twin(4, 3, 600).unwrap();
    let losses = train_twin(
        &mut m,
        &scenes,
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
    )
    .expect("objectless scenes only exercise the no-object loss path");
    assert!(losses.iter().all(|l| l.is_finite()));
}

#[test]
fn evaluation_with_no_detections_and_no_truths_is_zero_not_nan() {
    let r = evaluate_map(&[vec![], vec![]], &[vec![], vec![]], 3, 0.5);
    assert_eq!(r.map, 0.0);
    assert!(r.map_percent().is_finite());
}

#[test]
fn nms_survives_pathological_inputs() {
    // All-identical boxes with identical scores.
    let d = Detection {
        bbox: BBox::new(0.5, 0.5, 0.2, 0.2),
        score: 0.5,
        class: 0,
    };
    let kept = nms(&vec![d; 50], 0.5);
    assert_eq!(kept.len(), 1);
    // NaN-free degenerate boxes.
    let degenerate = Detection {
        bbox: BBox::new(0.5, 0.5, 0.0, 0.0),
        score: 0.9,
        class: 0,
    };
    let kept = nms(&[degenerate, d], 0.5);
    assert_eq!(kept.len(), 2, "zero-area box never overlaps");
}

#[test]
fn conv_rejects_impossible_geometry_without_panicking() {
    use rtoss::tensor::ops;
    let x = Tensor::zeros(&[1, 1, 2, 2]);
    let w = Tensor::zeros(&[1, 1, 5, 5]);
    assert!(ops::conv2d(&x, &w, None, 1, 0).is_err());
    // Stride zero is invalid, not a hang.
    let w3 = Tensor::zeros(&[1, 1, 1, 1]);
    assert!(ops::conv2d(&x, &w3, None, 0, 0).is_err());
}

#[test]
fn repruning_an_already_pruned_model_is_stable() {
    let mut m = rtoss::models::yolov5s_twin(4, 2, 601).unwrap();
    let p = RTossPruner::new(EntryPattern::Two);
    let r1 = p.prune_graph(&mut m.graph).unwrap();
    let r2 = p.prune_graph(&mut m.graph).unwrap();
    assert_eq!(
        r1.total_zeros(),
        r2.total_zeros(),
        "idempotent at model scope"
    );
    // And tightening after a looser pass only increases sparsity.
    let mut m2 = rtoss::models::yolov5s_twin(4, 2, 601).unwrap();
    let loose = RTossPruner::new(EntryPattern::Five)
        .prune_graph(&mut m2.graph)
        .unwrap();
    let tight = RTossPruner::new(EntryPattern::Two)
        .prune_graph(&mut m2.graph)
        .unwrap();
    assert!(tight.overall_sparsity() > loose.overall_sparsity());
}
