//! Cross-crate property-based tests (proptest) on the workspace's core
//! invariants.

use proptest::prelude::*;
use rtoss::core::pattern::{canonical_set, generate_adjacent, Pattern};
use rtoss::core::prune1x1::prune_1x1_weights;
use rtoss::core::prune3x3::prune_3x3_weights;
use rtoss::data::{nms, BBox, Detection};
use rtoss::sparse::exec::{
    conv2d_pattern_sparse, conv2d_pattern_sparse_with, conv2d_unstructured,
    conv2d_unstructured_with,
};
use rtoss::sparse::{ExecConfig, PatternCompressedConv, UnstructuredSparseConv};
use rtoss::tensor::{ops, Tensor};

fn tensor_strategy(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    proptest::collection::vec(-1.0f32..1.0, n)
        .prop_map(move |data| Tensor::from_vec(data, &dims).expect("len matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pattern_masks_keep_exactly_k_weights(
        k in 2usize..=5,
        w in (2usize..5, 2usize..5).prop_flat_map(|(o, i)| tensor_strategy(vec![o, i, 3, 3]))
    ) {
        let set = canonical_set(k).expect("valid k");
        let mut w = w;
        let out = prune_3x3_weights(&mut w, &set).expect("3x3 weights");
        let (o, i) = (w.shape()[0], w.shape()[1]);
        for ki in 0..o * i {
            let mask_nz = out.mask.as_slice()[ki * 9..(ki + 1) * 9]
                .iter().filter(|&&v| v != 0.0).count();
            prop_assert_eq!(mask_nz, k);
            let w_nz = w.as_slice()[ki * 9..(ki + 1) * 9]
                .iter().filter(|&&v| v != 0.0).count();
            prop_assert!(w_nz <= k);
        }
    }

    #[test]
    fn pruning_3x3_is_idempotent(
        w in tensor_strategy(vec![3, 3, 3, 3])
    ) {
        let set = canonical_set(3).expect("valid k");
        let mut w1 = w.clone();
        prune_3x3_weights(&mut w1, &set).expect("prunes");
        let mut w2 = w1.clone();
        prune_3x3_weights(&mut w2, &set).expect("prunes");
        prop_assert_eq!(w1, w2);
    }

    #[test]
    fn pruning_never_increases_l2(
        k in 2usize..=5,
        w in tensor_strategy(vec![2, 2, 3, 3])
    ) {
        let set = canonical_set(k).expect("valid k");
        let before = w.l2_norm();
        let mut w = w;
        prune_3x3_weights(&mut w, &set).expect("prunes");
        prop_assert!(w.l2_norm() <= before + 1e-6);
    }

    #[test]
    fn one_by_one_survivors_keep_position_and_value(
        o in 1usize..8, i in 1usize..8
    ) {
        let w = rtoss::tensor::init::uniform(
            &mut rtoss::tensor::init::rng((o * 31 + i) as u64),
            &[o, i, 1, 1], -1.0, 1.0);
        let set = canonical_set(2).expect("valid k");
        let before = w.clone();
        let mut w = w;
        prune_1x1_weights(&mut w, &set).expect("prunes");
        for (idx, (&a, &b)) in before.as_slice().iter().zip(w.as_slice()).enumerate() {
            if b != 0.0 {
                prop_assert_eq!(a, b, "weight {} moved", idx);
            }
        }
        // Tail chunk fully pruned.
        let n = o * i;
        let full = (n / 9) * 9;
        prop_assert!(w.as_slice()[full..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sparse_executors_match_dense(
        seed in 0u64..1000,
        k in 2usize..=4,
        stride in 1usize..=2
    ) {
        let mut rng = rtoss::tensor::init::rng(seed);
        let w0 = rtoss::tensor::init::uniform(&mut rng, &[4, 3, 3, 3], -1.0, 1.0);
        let x = rtoss::tensor::init::uniform(&mut rng, &[1, 3, 8, 8], -1.0, 1.0);
        let set = canonical_set(k).expect("valid k");
        let mut w = w0;
        prune_3x3_weights(&mut w, &set).expect("prunes");
        let dense = ops::conv2d(&x, &w, None, stride, 1).expect("conv");
        let pc = PatternCompressedConv::from_dense(&w, stride, 1).expect("compress");
        let un = UnstructuredSparseConv::from_dense(&w, stride, 1).expect("compress");
        let a = conv2d_pattern_sparse(&x, &pc, None).expect("sparse conv");
        let b = conv2d_unstructured(&x, &un, None).expect("coo conv");
        for ((&d, &pa), &ub) in dense.as_slice().iter()
            .zip(a.as_slice()).zip(b.as_slice()) {
            prop_assert!((d - pa).abs() < 1e-4, "pattern exec mismatch {} vs {}", d, pa);
            prop_assert!((d - ub).abs() < 1e-4, "coo exec mismatch {} vs {}", d, ub);
        }
    }

    #[test]
    fn compressed_round_trip_is_lossless(
        seed in 0u64..1000
    ) {
        let mut rng = rtoss::tensor::init::rng(seed);
        let w0 = rtoss::tensor::init::uniform(&mut rng, &[5, 4, 3, 3], -1.0, 1.0);
        let set = canonical_set(2).expect("valid k");
        let mut w = w0;
        prune_3x3_weights(&mut w, &set).expect("prunes");
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).expect("compress");
        prop_assert_eq!(pc.to_dense(), w);
    }

    #[test]
    fn adjacent_patterns_are_connected_and_complete(
        k in 1usize..=8
    ) {
        let all = generate_adjacent(k).expect("valid k");
        for p in &all {
            prop_assert_eq!(p.weight_count(), k);
            prop_assert!(p.is_connected());
        }
        // Completeness: every connected k-pattern appears.
        for bits in 0u16..(1 << 9) {
            if bits.count_ones() as usize == k {
                let p = Pattern::from_bits(bits).expect("valid bits");
                prop_assert_eq!(all.contains(&p), p.is_connected());
            }
        }
    }

    #[test]
    fn iou_is_symmetric_and_bounded(
        ax in 0.0f32..1.0, ay in 0.0f32..1.0, aw in 0.01f32..0.5, ah in 0.01f32..0.5,
        bx in 0.0f32..1.0, by in 0.0f32..1.0, bw in 0.01f32..0.5, bh in 0.01f32..0.5,
    ) {
        let a = BBox::new(ax, ay, aw, ah);
        let b = BBox::new(bx, by, bw, bh);
        let iou = a.iou(&b);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&iou));
        prop_assert!((iou - b.iou(&a)).abs() < 1e-6);
        // Self-IoU is 1 up to f32 rounding of corner arithmetic (tiny
        // boxes lose relative precision in area subtraction).
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn nms_output_is_conflict_free(
        boxes in proptest::collection::vec(
            (0.05f32..0.95, 0.05f32..0.95, 0.05f32..0.3, 0.05f32..0.3, 0.0f32..1.0, 0usize..3),
            0..20
        )
    ) {
        let dets: Vec<Detection> = boxes.into_iter()
            .map(|(cx, cy, w, h, score, class)| Detection {
                bbox: BBox::new(cx, cy, w, h), score, class,
            })
            .collect();
        let kept = nms(&dets, 0.5);
        prop_assert!(kept.len() <= dets.len());
        for (i, a) in kept.iter().enumerate() {
            for b in kept.iter().skip(i + 1) {
                if a.class == b.class {
                    prop_assert!(a.bbox.iou(&b.bbox) <= 0.5 + 1e-6);
                }
            }
        }
    }

    #[test]
    fn conv2d_is_linear_in_the_input(
        seed in 0u64..500
    ) {
        let mut rng = rtoss::tensor::init::rng(seed);
        let w = rtoss::tensor::init::uniform(&mut rng, &[2, 2, 3, 3], -1.0, 1.0);
        let x1 = rtoss::tensor::init::uniform(&mut rng, &[1, 2, 6, 6], -1.0, 1.0);
        let x2 = rtoss::tensor::init::uniform(&mut rng, &[1, 2, 6, 6], -1.0, 1.0);
        let y1 = ops::conv2d(&x1, &w, None, 1, 1).expect("conv");
        let y2 = ops::conv2d(&x2, &w, None, 1, 1).expect("conv");
        let sum = x1.add(&x2).expect("add");
        let ysum = ops::conv2d(&sum, &w, None, 1, 1).expect("conv");
        let expect = y1.add(&y2).expect("add");
        for (&a, &b) in ysum.as_slice().iter().zip(expect.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }
}

// Executor equivalence across *random geometry* — shapes, strides,
// pads, and batch sizes all drawn per case — plus the batched entry
// points the serving layer depends on.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sparse_executors_match_dense_across_geometry(
        seed in 0u64..1000,
        k in 2usize..=4,
        o in 1usize..5,
        c in 1usize..4,
        h in 4usize..10,
        wid in 4usize..10,
        stride in 1usize..=3,
        pad in 0usize..=2,
        batch in 1usize..=3,
    ) {
        let mut rng = rtoss::tensor::init::rng(seed);
        let mut w = rtoss::tensor::init::uniform(&mut rng, &[o, c, 3, 3], -1.0, 1.0);
        let x = rtoss::tensor::init::uniform(&mut rng, &[batch, c, h, wid], -1.0, 1.0);
        let set = canonical_set(k).expect("valid k");
        prune_3x3_weights(&mut w, &set).expect("prunes");
        let dense = ops::conv2d(&x, &w, None, stride, pad).expect("conv");
        let pc = PatternCompressedConv::from_dense(&w, stride, pad).expect("compress");
        let un = UnstructuredSparseConv::from_dense(&w, stride, pad).expect("compress");
        let a = conv2d_pattern_sparse(&x, &pc, None).expect("sparse conv");
        let b = conv2d_unstructured(&x, &un, None).expect("coo conv");
        prop_assert_eq!(a.shape(), dense.shape());
        prop_assert_eq!(b.shape(), dense.shape());
        for ((&d, &pa), &ub) in dense.as_slice().iter()
            .zip(a.as_slice()).zip(b.as_slice()) {
            prop_assert!((d - pa).abs() < 1e-4, "pattern exec mismatch {} vs {}", d, pa);
            prop_assert!((d - ub).abs() < 1e-4, "coo exec mismatch {} vs {}", d, ub);
        }
    }

    #[test]
    fn batch_stack_split_round_trips(
        seed in 0u64..1000,
        sizes in proptest::collection::vec(1usize..=3, 1..=4),
        c in 1usize..4,
        h in 2usize..6,
    ) {
        let mut rng = rtoss::tensor::init::rng(seed);
        let xs: Vec<Tensor> = sizes.iter()
            .map(|&n| rtoss::tensor::init::uniform(&mut rng, &[n, c, h, h], -1.0, 1.0))
            .collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        let stacked = ops::batch_stack(&refs).expect("stacks");
        prop_assert_eq!(stacked.shape()[0], sizes.iter().sum::<usize>());
        let parts = ops::batch_split(&stacked, &sizes).expect("splits");
        for (orig, part) in xs.iter().zip(&parts) {
            prop_assert_eq!(orig, part);
        }
    }

    #[test]
    fn parallel_executors_bit_identical_to_serial_across_geometry(
        seed in 0u64..1000,
        k in 2usize..=4,
        o in 1usize..6,
        c in 1usize..4,
        h in 4usize..10,
        wid in 4usize..10,
        stride in 1usize..=3,
        pad in 0usize..=2,
        batch in 1usize..=3,
        threads in 1usize..=8,
    ) {
        let mut rng = rtoss::tensor::init::rng(seed);
        let mut w = rtoss::tensor::init::uniform(&mut rng, &[o, c, 3, 3], -1.0, 1.0);
        let x = rtoss::tensor::init::uniform(&mut rng, &[batch, c, h, wid], -1.0, 1.0);
        let bias_t = rtoss::tensor::init::uniform(&mut rng, &[o], -1.0, 1.0);
        let bias = bias_t.as_slice();
        let set = canonical_set(k).expect("valid k");
        prune_3x3_weights(&mut w, &set).expect("prunes");
        let serial = ExecConfig::serial();
        let par = ExecConfig::with_threads(threads);

        // Dense tiled path: threads=1 is the exact legacy loop, so the
        // parallel result must be bit-identical to it, not just close.
        let d1 = ops::conv2d_with(&x, &w, Some(bias), stride, pad, &serial).expect("conv");
        let d2 = ops::conv2d_with(&x, &w, Some(bias), stride, pad, &par).expect("conv");
        prop_assert_eq!(d1.as_slice(), d2.as_slice());

        let pc = PatternCompressedConv::from_dense(&w, stride, pad).expect("compress");
        let p1 = conv2d_pattern_sparse_with(&x, &pc, Some(bias), &serial).expect("conv");
        let p2 = conv2d_pattern_sparse_with(&x, &pc, Some(bias), &par).expect("conv");
        prop_assert_eq!(p1.as_slice(), p2.as_slice());

        let un = UnstructuredSparseConv::from_dense(&w, stride, pad).expect("compress");
        let u1 = conv2d_unstructured_with(&x, &un, Some(bias), &serial).expect("conv");
        let u2 = conv2d_unstructured_with(&x, &un, Some(bias), &par).expect("conv");
        prop_assert_eq!(u1.as_slice(), u2.as_slice());
    }

    #[test]
    fn batched_sparse_conv_is_bit_identical_to_per_sample(
        seed in 0u64..1000,
        k in 2usize..=4,
        stride in 1usize..=2,
        pad in 0usize..=1,
        sizes in proptest::collection::vec(1usize..=2, 2..=4),
    ) {
        let mut rng = rtoss::tensor::init::rng(seed);
        let mut w = rtoss::tensor::init::uniform(&mut rng, &[3, 2, 3, 3], -1.0, 1.0);
        let set = canonical_set(k).expect("valid k");
        prune_3x3_weights(&mut w, &set).expect("prunes");
        let pc = PatternCompressedConv::from_dense(&w, stride, pad).expect("compress");
        let xs: Vec<Tensor> = sizes.iter()
            .map(|&n| rtoss::tensor::init::uniform(&mut rng, &[n, 2, 7, 7], -1.0, 1.0))
            .collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        let stacked = ops::batch_stack(&refs).expect("stacks");
        let batched = conv2d_pattern_sparse(&stacked, &pc, None).expect("batched conv");
        let parts = ops::batch_split(&batched, &sizes).expect("splits");
        for (x, part) in xs.iter().zip(&parts) {
            let single = conv2d_pattern_sparse(x, &pc, None).expect("single conv");
            // Bit-identical — the serving layer's micro-batching
            // correctness rests on this, not on approximate equality.
            prop_assert_eq!(single.as_slice(), part.as_slice());
        }
    }
}
