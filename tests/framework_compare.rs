//! Integration tests asserting the paper's cross-framework orderings on
//! the twins (the full-scale equivalents run in the bench harnesses).

use rtoss::core::accuracy::{prune_stats, snapshot_weights, AccuracyModel};
use rtoss::core::baselines::{
    all_baselines, MagnitudePruner, NetworkSlimming, PatDnn, PruningFilters,
};
use rtoss::core::{snapshot_report, EntryPattern, Pruner, RTossPruner};
use rtoss::models::{retinanet_twin, yolov5s_twin, DetectorModel};

fn compression(p: &dyn Pruner, mut m: DetectorModel) -> f64 {
    p.prune_graph(&mut m.graph)
        .expect("pruning succeeds")
        .compression_ratio()
}

#[test]
fn rtoss_2ep_compresses_hardest_on_both_models() {
    for build in [
        (|| yolov5s_twin(8, 3, 7).unwrap()) as fn() -> DetectorModel,
        || retinanet_twin(8, 3, 7).unwrap(),
    ] {
        let rtoss = compression(&RTossPruner::new(EntryPattern::Two), build());
        for b in all_baselines() {
            let ratio = compression(b.as_ref(), build());
            assert!(
                rtoss > ratio,
                "{} ({ratio:.2}x) should not beat R-TOSS 2EP ({rtoss:.2}x)",
                b.name()
            );
        }
    }
}

#[test]
fn entry_pattern_sparsity_ordering_matches_table3() {
    let mut ratios = Vec::new();
    for entry in EntryPattern::all() {
        let mut m = yolov5s_twin(8, 3, 8).unwrap();
        ratios.push(
            RTossPruner::new(entry)
                .prune_graph(&mut m.graph)
                .unwrap()
                .compression_ratio(),
        );
    }
    // Table 3: 5EP < 4EP < 3EP < 2EP.
    assert!(ratios.windows(2).all(|w| w[1] > w[0]), "{ratios:?}");
    // And the 2EP/5EP spread is large (paper: 1.79x → 4.4x).
    assert!(ratios[3] / ratios[0] > 2.0, "{ratios:?}");
}

#[test]
fn rtoss_exploits_1x1_layers_where_patdnn_cannot() {
    // §III's motivation: PD leaves 1×1 kernels (most of the model)
    // nearly dense; R-TOSS prunes them like everything else.
    let mut m1 = yolov5s_twin(8, 3, 9).unwrap();
    let rtoss = RTossPruner::new(EntryPattern::Two)
        .prune_graph(&mut m1.graph)
        .unwrap();
    let mut m2 = yolov5s_twin(8, 3, 9).unwrap();
    let pd = PatDnn::default().prune_graph(&mut m2.graph).unwrap();
    assert!(rtoss.sparsity_for_kernel(1) > 0.75);
    assert!(pd.sparsity_for_kernel(1) < 0.35);
    // On 3×3 they are comparable (pattern pruning either way).
    assert!(pd.sparsity_for_kernel(3) > 0.5);
}

#[test]
fn accuracy_ordering_matches_fig5() {
    let build = || yolov5s_twin(8, 3, 10).unwrap();
    let acc = AccuracyModel::yolov5s_kitti();
    let score = |p: &dyn Pruner| {
        let mut m = build();
        let snap = snapshot_weights(&m.graph);
        p.prune_graph(&mut m.graph).unwrap();
        acc.estimate(&prune_stats(&snap, &m.graph))
    };
    let bm = {
        let m = build();
        let snap = snapshot_weights(&m.graph);
        let _ = snapshot_report(&m.graph, "BM");
        acc.estimate(&prune_stats(&snap, &m.graph))
    };
    let rtoss3 = score(&RTossPruner::new(EntryPattern::Three));
    let rtoss2 = score(&RTossPruner::new(EntryPattern::Two));
    let ns = score(&NetworkSlimming::default());
    let pf = score(&PruningFilters::default());
    let nms = score(&MagnitudePruner::default());

    // Paper Fig. 5 shape: R-TOSS ≥ BM; structured pruning clearly below
    // BM; R-TOSS above every structured baseline.
    assert!(rtoss3 > bm, "3EP {rtoss3} vs BM {bm}");
    assert!(rtoss2 > bm, "2EP {rtoss2} vs BM {bm}");
    assert!(ns < bm && pf < bm, "NS {ns} / PF {pf} vs BM {bm}");
    assert!(rtoss3 > ns + 3.0 && rtoss3 > pf + 3.0);
    assert!(rtoss2 > nms, "2EP {rtoss2} vs NMS {nms}");
}

#[test]
fn masks_are_preserved_across_all_methods() {
    // Every pruner must install sticky masks: weights stay zero after a
    // simulated optimizer write.
    for b in all_baselines() {
        let mut m = yolov5s_twin(4, 2, 11).unwrap();
        b.prune_graph(&mut m.graph).expect("pruning succeeds");
        let before = m.conv_sparsity();
        assert!(before > 0.05, "{}", b.name());
        for id in m.graph.conv_ids() {
            let conv = m.graph.conv_mut(id).unwrap();
            let p = conv.weight_mut();
            p.value.map_in_place(|v| v + 1.0); // optimizer-style write
            p.apply_mask();
        }
        let after = m.conv_sparsity();
        assert!(
            (after - before).abs() < 1e-9,
            "{}: sparsity {before} -> {after}",
            b.name()
        );
    }
}
