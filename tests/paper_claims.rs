//! Integration tests pinning the paper's quantitative claims that our
//! reproduction measures directly (full-scale models — run in release
//! for speed, but small enough for debug CI).

use rtoss::core::pattern::{canonical_pattern_count, canonical_set, generate_adjacent};
use rtoss::core::{EntryPattern, Pruner, RTossPruner};
use rtoss::hw::{DeviceModel, SparsityStructure, Workload};
use rtoss::models::others::{comparison_profiles, detr_census_spec};
use rtoss::models::{retinanet, yolov5s};

#[test]
fn pattern_working_set_is_21() {
    // §IV.C: "we reduced the total number of patterns required to 21".
    assert_eq!(canonical_pattern_count(), 21);
    assert_eq!(
        canonical_set(2).unwrap().len() + canonical_set(3).unwrap().len(),
        21
    );
}

#[test]
fn eq1_candidate_space_is_complete() {
    // Eq. 1 for k = 1..=8 sums to 2^9 - 2 (all non-trivial masks).
    let total: usize = (1..=8).map(rtoss::core::pattern::candidate_count).sum();
    assert_eq!(total, (1 << 9) - 2);
    // Adjacency filter is strictly narrowing for the interesting sizes.
    for k in 2..=5 {
        assert!(generate_adjacent(k).unwrap().len() < rtoss::core::pattern::candidate_count(k));
    }
}

#[test]
fn yolov5s_matches_paper_size_and_census() {
    let m = yolov5s(80, 1).expect("builds");
    // Table 2: 7.02 M params.
    let p = m.spec.params_millions();
    assert!((p - 7.02).abs() / 7.02 < 0.10, "params {p}M");
    // §III: 68.42% 1×1 kernels.
    let f = m.spec.census().layer_fraction_1x1() * 100.0;
    assert!((f - 68.42).abs() < 6.0, "census {f}%");
}

#[test]
fn retinanet_matches_paper_size_and_census() {
    let m = retinanet(80, 1).expect("builds");
    let p = m.spec.params_millions();
    assert!((p - 36.49).abs() / 36.49 < 0.10, "params {p}M");
    let f = m.spec.census().layer_fraction_1x1() * 100.0;
    assert!((f - 56.14).abs() < 6.0, "census {f}%");
}

#[test]
fn detr_census_majority_1x1() {
    // §III qualitative claim for DETR (our mapping counts transformer
    // linears as 1×1, landing above the paper's 63.46%).
    let f = detr_census_spec().census().layer_fraction_1x1();
    assert!(f > 0.6, "DETR 1x1 fraction {f}");
}

#[test]
fn yolov5s_2ep_compression_matches_table3() {
    let mut m = yolov5s(80, 42).expect("builds");
    let r = RTossPruner::new(EntryPattern::Two)
        .prune_graph(&mut m.graph)
        .expect("prunes");
    // Table 3: 4.4×. Ours: conv-weight accounting → ~4.49×.
    let c = r.compression_ratio();
    assert!((c - 4.4).abs() < 0.3, "compression {c}");
}

#[test]
fn yolov5s_3ep_compression_matches_table3() {
    let mut m = yolov5s(80, 42).expect("builds");
    let r = RTossPruner::new(EntryPattern::Three)
        .prune_graph(&mut m.graph)
        .expect("prunes");
    // Table 3: 2.9×.
    let c = r.compression_ratio();
    assert!((c - 2.9).abs() < 0.3, "compression {c}");
}

#[test]
fn tx2_latency_model_matches_table2_retinanet_row() {
    let tx2 = DeviceModel::jetson_tx2();
    let p = comparison_profiles()
        .into_iter()
        .find(|p| p.name == "RetinaNet")
        .expect("profile exists");
    let w = Workload {
        dense_macs: (p.gmacs * 1e9) as u64,
        effective_macs: (p.gmacs * 1e9) as u64,
        weight_bytes: (p.params_m * 1e6 * 4.0) as u64,
        structure: SparsityStructure::Dense,
    };
    let t = tx2.latency_s(&w);
    let paper = p.paper_tx2_seconds.expect("table 2 row");
    assert!((t - paper).abs() / paper < 0.10, "{t} vs {paper}");
}

#[test]
fn speedup_and_energy_shape_on_tx2() {
    // Abstract: 2.15× speedup and 57% energy reduction for YOLOv5s 2EP
    // on the TX2. Our device model realises the compression more fully
    // (no framework overhead), so we assert the shape: speedup well
    // above 1.5×, energy reduction above 40%.
    let tx2 = DeviceModel::jetson_tx2();
    let mut m = yolov5s(80, 42).expect("builds");
    let report = RTossPruner::new(EntryPattern::Two)
        .prune_graph(&mut m.graph)
        .expect("prunes");
    let dense = Workload {
        dense_macs: m.spec.total_macs(),
        effective_macs: m.spec.total_macs(),
        weight_bytes: m.spec.total_weight_bytes(),
        structure: SparsityStructure::Dense,
    };
    let surviving = (report.total_weights() - report.total_zeros()) as u64;
    let pruned = Workload {
        dense_macs: m.spec.total_macs(),
        effective_macs: m.effective_macs(),
        weight_bytes: surviving * 4,
        structure: SparsityStructure::SemiStructured,
    };
    let speedup = tx2.latency_s(&dense) / tx2.latency_s(&pruned);
    assert!(speedup > 1.5, "speedup {speedup}");
    let reduction = 1.0 - tx2.energy_j(&pruned) / tx2.energy_j(&dense);
    assert!(reduction > 0.40, "energy reduction {reduction}");
}
