//! Integration tests for the rtoss-verify static-analysis layer.
//!
//! Two directions: seed artifacts (pruned twins, compiled engines,
//! executors) must verify *clean*, and property-based mutations of
//! valid artifacts — flipped indices, broken adjacency, desynchronised
//! DFS groups — must make the matching diagnostic fire. Together they
//! pin both the false-positive and false-negative rate of every check
//! family at zero on the cases covered.

use proptest::prelude::*;
use rtoss::core::dfs::group_layers;
use rtoss::core::pattern::{canonical_set, Pattern};
use rtoss::core::prune3x3::prune_3x3_weights;
use rtoss::core::{EntryPattern, Pruner, RTossPruner};
use rtoss::models::{retinanet_twin, yolov5s_twin, DetectorModel};
use rtoss::sparse::{PatternCompressedConv, SparseModel, UnstructuredSparseConv};
use rtoss::tensor::Tensor;
use rtoss::verify::{
    check_model, check_pattern_layer, check_sparse_model, check_unstructured_layer, fixtures,
};

const INPUT: [usize; 4] = [1, 3, 64, 64];

fn pruned(mut m: DetectorModel, entry: EntryPattern) -> DetectorModel {
    RTossPruner::new(entry)
        .prune_graph(&mut m.graph)
        .expect("pruning succeeds");
    m
}

// ---------------------------------------------------------------------
// Clean-artifact direction: seed models produce zero diagnostics.
// ---------------------------------------------------------------------

#[test]
fn seed_yolov5s_configs_verify_clean() {
    for entry in [EntryPattern::Two, EntryPattern::Three, EntryPattern::Four] {
        let m = pruned(yolov5s_twin(8, 2, 42).expect("twin builds"), entry);
        let report = check_model(&m.graph, &INPUT);
        assert!(
            report.diagnostics.is_empty(),
            "yolov5s twin {entry:?}:\n{}",
            report.render()
        );
        let engine = SparseModel::compile(&m.graph).expect("compiles");
        let report = check_sparse_model(&engine);
        assert!(
            report.diagnostics.is_empty(),
            "yolov5s engine {entry:?}:\n{}",
            report.render()
        );
    }
}

#[test]
fn seed_retinanet_configs_verify_clean() {
    for entry in [EntryPattern::Two, EntryPattern::Three] {
        let m = pruned(retinanet_twin(8, 2, 42).expect("twin builds"), entry);
        let report = check_model(&m.graph, &INPUT);
        assert!(
            report.diagnostics.is_empty(),
            "retinanet twin {entry:?}:\n{}",
            report.render()
        );
        let engine = SparseModel::compile(&m.graph).expect("compiles");
        let report = check_sparse_model(&engine);
        assert!(
            report.diagnostics.is_empty(),
            "retinanet engine {entry:?}:\n{}",
            report.render()
        );
    }
}

#[test]
fn executor_invariants_hold() {
    for n_tiles in [0, 1, 2, 9, 31, 100] {
        let report = rtoss::verify::check_tile_partition(n_tiles, 8);
        assert!(!report.has_errors(), "{}", report.render());
    }
    let report = rtoss::verify::check_histogram_buckets();
    assert!(!report.has_errors(), "{}", report.render());
}

#[test]
fn every_corruption_fixture_fires_its_code() {
    for &name in fixtures::NAMES {
        let report = fixtures::run(name).expect("known fixture");
        let code = fixtures::expected_code(name).expect("known fixture");
        assert!(
            report.has_code(code),
            "fixture {name}: expected {code}\n{}",
            report.render()
        );
    }
}

// ---------------------------------------------------------------------
// Mutation direction: property-based corruption of valid artifacts.
// ---------------------------------------------------------------------

fn pruned_weight(o: usize, i: usize, k_entries: usize, seed: u64) -> Tensor {
    let mut w = rtoss::tensor::init::uniform(
        &mut rtoss::tensor::init::rng(seed),
        &[o, i, 3, 3],
        -1.0,
        1.0,
    );
    prune_3x3_weights(&mut w, &canonical_set(k_entries).expect("set")).expect("prunes");
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flipping one pattern offset out of sorted order (or out of
    /// bounds) in a compressed layer fires RV010.
    #[test]
    fn flipped_offset_fires_rv010(
        seed in 0u64..1000,
        k in 2usize..=4,
        bump in 3usize..10,
    ) {
        let w = pruned_weight(4, 3, k, seed);
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).expect("compresses");
        prop_assert!(check_pattern_layer("clean", &pc).is_empty());
        // Rebuild with the first group's first offset pushed out of
        // bounds: (ky, kx) -> (ky + bump, kx) with bump >= 3.
        let mut groups = pc.groups().to_vec();
        if groups.is_empty() || groups[0].offsets.is_empty() {
            continue; // vendored proptest: skip-case in place of prop_assume
        }
        groups[0].offsets[0].0 += bump;
        let bad = PatternCompressedConv::from_parts(
            pc.out_channels(),
            pc.in_channels(),
            pc.kernel_size(),
            pc.stride(),
            pc.padding(),
            groups,
        );
        let ds = check_pattern_layer("mutated", &bad);
        prop_assert!(ds.iter().any(|d| d.code == "RV010"), "{ds:?}");
    }

    /// Flipping a COO entry's kernel coordinate out of bounds (or out
    /// of sort order) fires RV013.
    #[test]
    fn flipped_coo_index_fires_rv013(
        seed in 0u64..1000,
        k in 2usize..=4,
        which in 0usize..64,
    ) {
        let w = pruned_weight(4, 3, k, seed);
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).expect("builds");
        prop_assert!(check_unstructured_layer("clean", &un).is_empty());
        let mut entries = un.entries().to_vec();
        if entries.is_empty() {
            continue;
        }
        let idx = which % entries.len();
        entries[idx].2 += 3; // ky out of the 3x3 kernel
        let bad = UnstructuredSparseConv::from_entries(
            un.out_channels(),
            un.in_channels(),
            un.kernel_size(),
            un.stride(),
            un.padding(),
            entries,
        );
        let ds = check_unstructured_layer("mutated", &bad);
        prop_assert!(ds.iter().any(|d| d.code == "RV013"), "{ds:?}");
    }

    /// Breaking a kernel mask's 4-adjacency (teleporting one kept cell
    /// to a non-adjacent corner) fires RV002.
    #[test]
    fn broken_adjacency_fires_rv002(
        seed in 0u64..1000,
        kernel_pick in 0usize..64,
    ) {
        let mut m = pruned(yolov5s_twin(4, 2, seed).expect("twin builds"), EntryPattern::Two);
        // Pick a masked 3x3 conv and a kernel inside it.
        let ids: Vec<_> = m.graph.conv_ids().into_iter().filter(|&id| {
            m.graph.conv(id).is_some_and(|c| c.kernel_size() == 3 && c.weight().mask().is_some())
        }).collect();
        if ids.is_empty() {
            continue;
        }
        let id = ids[seed as usize % ids.len()];
        let param = m.graph.conv_mut(id).expect("conv").weight_mut();
        let mut mask = param.mask().expect("masked").clone();
        let n_kernels = mask.numel() / 9;
        let base = (kernel_pick % n_kernels) * 9;
        let chunk = &mut mask.as_mut_slice()[base..base + 9];
        // 2EP masks keep two 4-adjacent cells; rewrite to two opposite
        // corners, which is never 4-connected.
        chunk.fill(0.0);
        chunk[0] = 1.0;
        chunk[8] = 1.0;
        let wchunk = &mut param.value.as_mut_slice()[base..base + 9];
        wchunk.fill(0.0);
        wchunk[0] = 0.5;
        wchunk[8] = 0.5;
        param.set_mask(mask).expect("same shape");
        let report = check_model(&m.graph, &INPUT);
        prop_assert!(report.has_code("RV002"), "{}", report.render());
    }

    /// Re-masking a grouped child with a legal pattern its parent never
    /// selected desynchronises the DFS group and fires RV004.
    #[test]
    fn desynced_group_fires_rv004(seed in 0u64..1000) {
        let mut m = pruned(yolov5s_twin(8, 2, seed).expect("twin builds"), EntryPattern::Three);
        let groups = group_layers(&m.graph);
        // Find a masked 3x3 child whose parent has a non-empty set.
        let mut target = None;
        'outer: for group in groups.groups() {
            let Some(pc) = m.graph.conv(group.parent) else { continue };
            if pc.kernel_size() != 3 { continue }
            let Some(pmask) = pc.weight().mask() else { continue };
            let parent_bits: std::collections::BTreeSet<u16> = pmask
                .as_slice()
                .chunks_exact(9)
                .map(|c| c.iter().enumerate().fold(0u16, |b, (i, &v)| {
                    if v != 0.0 { b | (1 << i) } else { b }
                }))
                .collect();
            if parent_bits.is_empty() { continue }
            for &child in &group.children {
                let masked = m.graph.conv(child)
                    .is_some_and(|cc| cc.weight().mask().is_some());
                if masked {
                    target = Some((parent_bits, child));
                    break 'outer;
                }
            }
        }
        let Some((parent_bits, child)) = target else {
            continue;
        };
        let rogue = (0u16..512).find(|&b| {
            b.count_ones() == 3
                && Pattern::from_bits(b).map(|p| p.is_connected()).unwrap_or(false)
                && !parent_bits.contains(&b)
        });
        let Some(rogue) = rogue else {
            continue;
        };
        let param = m.graph.conv_mut(child).expect("conv").weight_mut();
        let mut mask = param.mask().expect("masked").clone();
        for (i, slot) in mask.as_mut_slice()[..9].iter_mut().enumerate() {
            *slot = if rogue & (1 << i) != 0 { 1.0 } else { 0.0 };
        }
        for (i, wv) in param.value.as_mut_slice()[..9].iter_mut().enumerate() {
            *wv = if rogue & (1 << i) != 0 { 0.25 } else { 0.0 };
        }
        param.set_mask(mask).expect("same shape");
        let report = check_model(&m.graph, &INPUT);
        prop_assert!(report.has_code("RV004"), "{}", report.render());
    }
}
