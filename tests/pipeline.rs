//! Cross-crate integration test: the full prune → fine-tune → evaluate
//! pipeline on a tiny twin (debug-build friendly sizes).

use rtoss::core::{EntryPattern, Pruner, RTossPruner};
use rtoss::data::scene::{generate_dataset, SceneConfig};
use rtoss::models::yolov5s_twin;
use rtoss::train::{detect_scene, evaluate_twin, load_state, save_state, train_twin, TrainConfig};

#[test]
fn prune_finetune_evaluate_round_trip() {
    let scenes = generate_dataset(&SceneConfig::default(), 8, 500);
    let mut model = yolov5s_twin(4, 3, 500).expect("twin builds");

    // Train a little, snapshot state.
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 4,
        lr: 0.02,
        momentum: 0.9,
        schedule: rtoss_nn::optim::LrSchedule::Constant,
    };
    let losses = train_twin(&mut model, &scenes, &cfg).expect("training runs");
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "training diverged: {losses:?}"
    );
    let state = save_state(&mut model);

    // Prune, verify sparsity, fine-tune, verify sparsity preserved.
    let report = RTossPruner::new(EntryPattern::Two)
        .prune_graph(&mut model.graph)
        .expect("pruning succeeds");
    assert!(report.overall_sparsity() > 0.7);
    let sparsity_after_prune = model.conv_sparsity();
    train_twin(&mut model, &scenes, &cfg).expect("fine-tune runs");
    assert!(
        (model.conv_sparsity() - sparsity_after_prune).abs() < 1e-9,
        "fine-tuning reintroduced pruned weights"
    );

    // Evaluation produces a bounded mAP and inference works per-scene.
    let map = evaluate_twin(&mut model, &scenes, 0.2, 0.5).expect("evaluation runs");
    assert!((0.0..=1.0).contains(&map.map));
    let dets = detect_scene(&mut model, &scenes[0], 0.2).expect("detection runs");
    for d in &dets {
        assert!(d.score >= 0.2 && d.class < 3);
    }

    // State transplant into a fresh twin restores the unpruned model.
    let mut fresh = yolov5s_twin(4, 3, 500).expect("twin builds");
    load_state(&mut fresh, &state).expect("state loads");
    assert!(fresh.conv_sparsity() < 0.01, "restored model must be dense");
}

#[test]
fn every_entry_pattern_survives_the_pipeline() {
    let scenes = generate_dataset(&SceneConfig::default(), 4, 501);
    for entry in [EntryPattern::Five, EntryPattern::Two] {
        let mut model = yolov5s_twin(4, 3, 501).expect("twin builds");
        RTossPruner::new(entry)
            .prune_graph(&mut model.graph)
            .expect("pruning succeeds");
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 4,
            lr: 0.02,
            momentum: 0.9,
            schedule: rtoss_nn::optim::LrSchedule::Constant,
        };
        train_twin(&mut model, &scenes, &cfg).expect("fine-tune runs");
        let out = model
            .graph
            .forward(&rtoss::tensor::Tensor::zeros(&[1, 3, 64, 64]))
            .expect("forward runs");
        assert!(out[0].as_slice().iter().all(|v| v.is_finite()));
    }
}
