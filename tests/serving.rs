//! Integration tests for the serving subsystem: batched-vs-direct
//! equivalence on a real pruned engine, load shedding under synthetic
//! overload, and panic isolation.

use rtoss::core::{EntryPattern, Pruner, RTossPruner};
use rtoss::serve::{
    BackpressurePolicy, ExecConfig, RequestError, ServeConfig, ServeModel, Server, Ticket,
};
use rtoss::sparse::SparseModel;
use rtoss::tensor::{init, Tensor};
use std::sync::Arc;
use std::time::Duration;

fn pruned_engine(entry: EntryPattern, seed: u64) -> SparseModel {
    let mut model = rtoss::models::yolov5s_twin(4, 2, seed).expect("model builds");
    RTossPruner::new(entry)
        .prune_graph(&mut model.graph)
        .expect("prunes");
    SparseModel::compile(&model.graph).expect("compiles")
}

fn probe(seed: u64) -> Tensor {
    init::uniform(&mut init::rng(seed), &[1, 3, 32, 32], 0.0, 1.0)
}

/// (a) A request served through the queue/micro-batch/worker path gets
/// outputs bit-identical to calling the engine directly — and requests
/// really do ride in shared batches.
#[test]
fn served_outputs_are_bit_identical_to_direct_execution() {
    let reference = pruned_engine(EntryPattern::Two, 5);
    let server = Server::start(
        Arc::new(pruned_engine(EntryPattern::Two, 5)),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            batch_timeout: Duration::from_millis(50),
            policy: BackpressurePolicy::Block,
            ..ServeConfig::default()
        },
    );
    let inputs: Vec<Tensor> = (0..8).map(|i| probe(200 + i)).collect();
    let tickets: Vec<Ticket> = inputs
        .iter()
        .map(|x| server.submit(x.clone(), None).expect("submit"))
        .collect();
    let mut max_batch = 0;
    for (x, t) in inputs.iter().zip(tickets) {
        let resp = t.wait().expect("served");
        max_batch = max_batch.max(resp.batch_size);
        let direct = reference.forward(x).expect("direct forward");
        assert_eq!(resp.outputs.len(), direct.len());
        for (served, want) in resp.outputs.iter().zip(&direct) {
            assert_eq!(served.shape(), want.shape());
            assert_eq!(
                served.as_slice(),
                want.as_slice(),
                "served output differs from direct execution"
            );
        }
    }
    assert!(max_batch >= 2, "no micro-batching observed");
    let m = server.metrics();
    server.shutdown();
    let snap = m.snapshot();
    assert_eq!(snap.completed, 8);
    assert!(
        snap.mean_batch_size > 1.0,
        "mean batch {}",
        snap.mean_batch_size
    );
}

/// A model with a controllable service time (and optional poison input).
struct SlowEcho {
    delay: Duration,
    panic_on_value: Option<f32>,
}

impl ServeModel for SlowEcho {
    fn run_batch(&self, batch: &Tensor, _exec: &ExecConfig) -> Result<Vec<Tensor>, String> {
        if let Some(v) = self.panic_on_value {
            if batch.as_slice().contains(&v) {
                panic!("poison value {v}");
            }
        }
        std::thread::sleep(self.delay);
        Ok(vec![batch.clone()])
    }
}

/// (b) Under overload with `ShedExpired`, late requests are shed while
/// the requests that *do* complete keep a bounded p99 — instead of the
/// unbounded queueing delay a policy-free queue would produce.
#[test]
fn overload_sheds_expired_requests_and_bounds_completed_p99() {
    let service_time = Duration::from_millis(10);
    let deadline = Duration::from_millis(60);
    let server = Server::start(
        Arc::new(SlowEcho {
            delay: service_time,
            panic_on_value: None,
        }),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            batch_timeout: Duration::ZERO,
            queue_capacity: 128,
            policy: BackpressurePolicy::ShedExpired,
            ..ServeConfig::default()
        },
    );
    // Offered load: 100 requests at once into a 100 req/s server —
    // draining the backlog alone would take ~1 s, far past the 60 ms
    // deadline for most of the queue.
    let total = 100;
    let tickets: Vec<Ticket> = (0..total)
        .map(|i| {
            server
                .submit(Tensor::full(&[1, 1, 2, 2], i as f32), Some(deadline))
                .expect("queue has room")
        })
        .collect();
    let mut completed_e2e_ms: Vec<f64> = Vec::new();
    let mut shed = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(resp) => completed_e2e_ms.push(resp.timing.total().as_secs_f64() * 1e3),
            Err(RequestError::Shed) => shed += 1,
            Err(e) => panic!("unexpected outcome: {e}"),
        }
    }
    let m = server.metrics();
    server.shutdown();
    let snap = m.snapshot();

    assert!(shed > 0, "overload produced no shedding");
    assert_eq!(snap.shed, shed);
    assert!(!completed_e2e_ms.is_empty(), "nothing completed");
    assert_eq!(snap.completed as usize, completed_e2e_ms.len());

    completed_e2e_ms.sort_by(|a, b| a.total_cmp(b));
    let p99 = completed_e2e_ms[(completed_e2e_ms.len() * 99 / 100).min(completed_e2e_ms.len() - 1)];
    // Completed requests stopped being popped once past the deadline, so
    // their end-to-end time is bounded by deadline + one service time
    // (generous slack for scheduler jitter). Without shedding the tail
    // would reach ~total * service_time = 1000 ms.
    let bound_ms = (deadline + 4 * service_time).as_secs_f64() * 1e3;
    assert!(
        p99 < bound_ms,
        "completed p99 {p99:.1} ms exceeds shedding bound {bound_ms:.1} ms"
    );
}

/// The timing split: `execute` is pure model time while `batch_assembly`
/// absorbs straggler-waiting *and* input stacking. A model that sleeps
/// 25 ms must show all of that sleep in `execute` and none of it in
/// `batch_assembly`.
#[test]
fn execute_timing_excludes_batch_assembly() {
    let delay = Duration::from_millis(25);
    let server = Server::start(
        Arc::new(SlowEcho {
            delay,
            panic_on_value: None,
        }),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            batch_timeout: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let resp = server
        .submit(Tensor::full(&[1, 1, 2, 2], 1.0), None)
        .expect("submit")
        .wait()
        .expect("served");
    server.shutdown();
    assert!(
        resp.timing.execute >= delay,
        "execute {:?} lost model time (model slept {delay:?})",
        resp.timing.execute
    );
    assert!(
        resp.timing.batch_assembly < delay,
        "batch_assembly {:?} absorbed model time",
        resp.timing.batch_assembly
    );
}

/// Under concurrent producers and every backpressure policy, the
/// terminal counters partition the submission attempts exactly:
/// `submitted == completed + rejected + shed + failed` once every
/// ticket has resolved.
#[test]
fn concurrent_stress_counters_partition_all_submissions() {
    for policy in [
        BackpressurePolicy::Block,
        BackpressurePolicy::RejectWhenFull,
        BackpressurePolicy::ShedExpired,
    ] {
        let server = Server::start(
            Arc::new(SlowEcho {
                delay: Duration::from_micros(500),
                panic_on_value: None,
            }),
            ServeConfig {
                workers: 2,
                queue_capacity: 4,
                policy,
                max_batch: 4,
                batch_timeout: Duration::ZERO,
                ..ServeConfig::default()
            },
        );
        let producers = 4usize;
        let per_producer = 30usize;
        let deadline = match policy {
            // Tight enough that the slow model sheds part of the queue.
            BackpressurePolicy::ShedExpired => Some(Duration::from_millis(2)),
            _ => None,
        };
        std::thread::scope(|s| {
            for p in 0..producers {
                let server = &server;
                s.spawn(move || {
                    for i in 0..per_producer {
                        let x = Tensor::full(&[1, 1, 2, 2], (p * per_producer + i) as f32);
                        match server.submit(x, deadline) {
                            Ok(ticket) => match ticket.wait() {
                                Ok(_) | Err(RequestError::Shed) => {}
                                Err(e) => panic!("unexpected ticket outcome: {e}"),
                            },
                            Err(RequestError::Rejected) | Err(RequestError::Shed) => {}
                            Err(e) => panic!("unexpected submit outcome: {e}"),
                        }
                    }
                });
            }
        });
        // Every ticket has resolved, so the partition must be exact.
        let snap = server.metrics().snapshot();
        server.shutdown();
        assert_eq!(
            snap.submitted,
            (producers * per_producer) as u64,
            "{policy:?}: every open-queue attempt counts as submitted"
        );
        assert_eq!(
            snap.submitted,
            snap.completed + snap.rejected + snap.shed + snap.failed,
            "{policy:?}: counters do not partition submissions: {snap:?}"
        );
    }
}

/// (c) A poisoned batch panics the model; the batch fails, the panic is
/// counted, and the server keeps serving afterwards.
#[test]
fn panicking_model_leaves_server_healthy() {
    let server = Server::start(
        Arc::new(SlowEcho {
            delay: Duration::ZERO,
            panic_on_value: Some(-99.0),
        }),
        ServeConfig {
            workers: 2,
            max_batch: 2,
            batch_timeout: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    let poisoned = server
        .submit(Tensor::full(&[1, 1, 2, 2], -99.0), None)
        .expect("submit");
    match poisoned.wait() {
        Err(RequestError::Failed(msg)) => assert!(msg.contains("panic"), "msg: {msg}"),
        other => panic!("poisoned request should fail, got {other:?}"),
    }
    // The server still serves correctly after the panic.
    for i in 0..10 {
        let x = Tensor::full(&[1, 1, 2, 2], i as f32);
        let resp = server
            .submit(x.clone(), None)
            .expect("submit")
            .wait()
            .expect("healthy after panic");
        assert_eq!(resp.outputs[0].as_slice(), x.as_slice());
    }
    let m = server.metrics();
    server.shutdown();
    let snap = m.snapshot();
    assert!(snap.worker_panics >= 1, "panic not counted");
    assert!(snap.failed >= 1);
    assert_eq!(snap.completed, 10);
}

/// (f) Prewarming compiles execution plans for every micro-batch size
/// up front: workers never plan on the request path, the
/// peak-activation gauge is live before the first request, and served
/// outputs still match direct execution exactly.
#[test]
fn prewarm_compiles_plans_and_exports_arena_gauge() {
    let engine = Arc::new(pruned_engine(EntryPattern::Three, 6));
    let server = Server::start(
        engine.clone(),
        ServeConfig {
            workers: 1,
            max_batch: 3,
            batch_timeout: Duration::from_millis(5),
            prewarm: Some(vec![1, 3, 32, 32]),
            ..ServeConfig::default()
        },
    );
    // Prewarm already compiled plans for batches 1..=3 and published
    // the arena high-water mark — before any request was submitted.
    let warm = server.metrics().snapshot().peak_activation_bytes;
    assert!(warm > 0, "prewarm should publish the arena gauge");
    assert_eq!(ServeModel::peak_activation_bytes(&*engine), Some(warm));

    let x = probe(900);
    let resp = server
        .submit(x.clone(), None)
        .expect("submit")
        .wait()
        .expect("served");
    let direct = engine.forward(&x).expect("direct");
    for (served, want) in resp.outputs.iter().zip(&direct) {
        assert_eq!(served.as_slice(), want.as_slice());
    }
    let snap = server.metrics().snapshot();
    assert_eq!(
        snap.peak_activation_bytes, warm,
        "serving at prewarmed shapes must not grow the arena"
    );
    assert!(snap.to_prometheus().contains("rtoss_peak_activation_bytes"));
    server.shutdown();
}
