//! Integration tests for the serving subsystem: batched-vs-direct
//! equivalence on a real pruned engine, load shedding under synthetic
//! overload, and panic isolation.

use rtoss::core::{EntryPattern, Pruner, RTossPruner};
use rtoss::serve::{BackpressurePolicy, RequestError, ServeConfig, ServeModel, Server, Ticket};
use rtoss::sparse::SparseModel;
use rtoss::tensor::{init, Tensor};
use std::sync::Arc;
use std::time::Duration;

fn pruned_engine(entry: EntryPattern, seed: u64) -> SparseModel {
    let mut model = rtoss::models::yolov5s_twin(4, 2, seed).expect("model builds");
    RTossPruner::new(entry)
        .prune_graph(&mut model.graph)
        .expect("prunes");
    SparseModel::compile(&model.graph).expect("compiles")
}

fn probe(seed: u64) -> Tensor {
    init::uniform(&mut init::rng(seed), &[1, 3, 32, 32], 0.0, 1.0)
}

/// (a) A request served through the queue/micro-batch/worker path gets
/// outputs bit-identical to calling the engine directly — and requests
/// really do ride in shared batches.
#[test]
fn served_outputs_are_bit_identical_to_direct_execution() {
    let reference = pruned_engine(EntryPattern::Two, 5);
    let server = Server::start(
        Arc::new(pruned_engine(EntryPattern::Two, 5)),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            batch_timeout: Duration::from_millis(50),
            policy: BackpressurePolicy::Block,
            ..ServeConfig::default()
        },
    );
    let inputs: Vec<Tensor> = (0..8).map(|i| probe(200 + i)).collect();
    let tickets: Vec<Ticket> = inputs
        .iter()
        .map(|x| server.submit(x.clone(), None).expect("submit"))
        .collect();
    let mut max_batch = 0;
    for (x, t) in inputs.iter().zip(tickets) {
        let resp = t.wait().expect("served");
        max_batch = max_batch.max(resp.batch_size);
        let direct = reference.forward(x).expect("direct forward");
        assert_eq!(resp.outputs.len(), direct.len());
        for (served, want) in resp.outputs.iter().zip(&direct) {
            assert_eq!(served.shape(), want.shape());
            assert_eq!(
                served.as_slice(),
                want.as_slice(),
                "served output differs from direct execution"
            );
        }
    }
    assert!(max_batch >= 2, "no micro-batching observed");
    let m = server.metrics();
    server.shutdown();
    let snap = m.snapshot();
    assert_eq!(snap.completed, 8);
    assert!(
        snap.mean_batch_size > 1.0,
        "mean batch {}",
        snap.mean_batch_size
    );
}

/// A model with a controllable service time (and optional poison input).
struct SlowEcho {
    delay: Duration,
    panic_on_value: Option<f32>,
}

impl ServeModel for SlowEcho {
    fn run_batch(&self, batch: &Tensor) -> Result<Vec<Tensor>, String> {
        if let Some(v) = self.panic_on_value {
            if batch.as_slice().contains(&v) {
                panic!("poison value {v}");
            }
        }
        std::thread::sleep(self.delay);
        Ok(vec![batch.clone()])
    }
}

/// (b) Under overload with `ShedExpired`, late requests are shed while
/// the requests that *do* complete keep a bounded p99 — instead of the
/// unbounded queueing delay a policy-free queue would produce.
#[test]
fn overload_sheds_expired_requests_and_bounds_completed_p99() {
    let service_time = Duration::from_millis(10);
    let deadline = Duration::from_millis(60);
    let server = Server::start(
        Arc::new(SlowEcho {
            delay: service_time,
            panic_on_value: None,
        }),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            batch_timeout: Duration::ZERO,
            queue_capacity: 128,
            policy: BackpressurePolicy::ShedExpired,
            ..ServeConfig::default()
        },
    );
    // Offered load: 100 requests at once into a 100 req/s server —
    // draining the backlog alone would take ~1 s, far past the 60 ms
    // deadline for most of the queue.
    let total = 100;
    let tickets: Vec<Ticket> = (0..total)
        .map(|i| {
            server
                .submit(Tensor::full(&[1, 1, 2, 2], i as f32), Some(deadline))
                .expect("queue has room")
        })
        .collect();
    let mut completed_e2e_ms: Vec<f64> = Vec::new();
    let mut shed = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(resp) => completed_e2e_ms.push(resp.timing.total().as_secs_f64() * 1e3),
            Err(RequestError::Shed) => shed += 1,
            Err(e) => panic!("unexpected outcome: {e}"),
        }
    }
    let m = server.metrics();
    server.shutdown();
    let snap = m.snapshot();

    assert!(shed > 0, "overload produced no shedding");
    assert_eq!(snap.shed, shed);
    assert!(!completed_e2e_ms.is_empty(), "nothing completed");
    assert_eq!(snap.completed as usize, completed_e2e_ms.len());

    completed_e2e_ms.sort_by(|a, b| a.total_cmp(b));
    let p99 = completed_e2e_ms[(completed_e2e_ms.len() * 99 / 100).min(completed_e2e_ms.len() - 1)];
    // Completed requests stopped being popped once past the deadline, so
    // their end-to-end time is bounded by deadline + one service time
    // (generous slack for scheduler jitter). Without shedding the tail
    // would reach ~total * service_time = 1000 ms.
    let bound_ms = (deadline + 4 * service_time).as_secs_f64() * 1e3;
    assert!(
        p99 < bound_ms,
        "completed p99 {p99:.1} ms exceeds shedding bound {bound_ms:.1} ms"
    );
}

/// (c) A poisoned batch panics the model; the batch fails, the panic is
/// counted, and the server keeps serving afterwards.
#[test]
fn panicking_model_leaves_server_healthy() {
    let server = Server::start(
        Arc::new(SlowEcho {
            delay: Duration::ZERO,
            panic_on_value: Some(-99.0),
        }),
        ServeConfig {
            workers: 2,
            max_batch: 2,
            batch_timeout: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    let poisoned = server
        .submit(Tensor::full(&[1, 1, 2, 2], -99.0), None)
        .expect("submit");
    match poisoned.wait() {
        Err(RequestError::Failed(msg)) => assert!(msg.contains("panic"), "msg: {msg}"),
        other => panic!("poisoned request should fail, got {other:?}"),
    }
    // The server still serves correctly after the panic.
    for i in 0..10 {
        let x = Tensor::full(&[1, 1, 2, 2], i as f32);
        let resp = server
            .submit(x.clone(), None)
            .expect("submit")
            .wait()
            .expect("healthy after panic");
        assert_eq!(resp.outputs[0].as_slice(), x.as_slice());
    }
    let m = server.metrics();
    server.shutdown();
    let snap = m.snapshot();
    assert!(snap.worker_panics >= 1, "panic not counted");
    assert!(snap.failed >= 1);
    assert_eq!(snap.completed, 10);
}
